//! Continuous-batching serving: submit requests to a running scheduler,
//! stream their bytes as they decode, and watch late arrivals join the
//! batch mid-flight. Grammar compilation happens on admission workers (off
//! the decode hot path, behind the shared compiled-grammar cache), so a
//! late request whose grammar is already cached starts decoding after
//! little more than its own prefill.
//!
//! ```text
//! cargo run --release --example continuous_serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_engine::{
    EngineRequest, ExecutionMode, LaneConstraint, ModelProfile, SchedulerConfig, ServingEngine,
    StreamEvent,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(16_000));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    let profile = ModelProfile::llama31_8b_h100().scaled(0.1);
    let engine = ServingEngine::new(backend, profile, ExecutionMode::Overlapped);

    // The scheduler owns its worker threads: admission workers compile
    // grammars off the hot path, mask workers overlap bitmask generation
    // with the simulated GPU, and one decode loop steps every live lane.
    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: 4,
        queue_capacity: 16,
        admission_workers: 2,
        mask_workers: 0, // auto-size from the host
    });

    // A first wave of schema-constrained requests joins the batch.
    let tasks = xg_datasets::json_mode_eval_like(4, 42);
    let mut handles = Vec::new();
    for (i, task) in tasks.iter().enumerate() {
        let handle = scheduler.submit(EngineRequest {
            constraint: LaneConstraint::Grammar(xgrammar::json_schema_to_grammar(&task.schema)?),
            prompt_tokens: 139,
            reference: task.reference.clone(),
            max_tokens: 200,
            seed: i as u64,
        })?;
        println!("submitted request {}", handle.id());
        handles.push(handle);
    }

    // A late arrival with an already-seen schema: its compile is a cache
    // hit and it joins the running batch without restarting anyone.
    std::thread::sleep(Duration::from_millis(20));
    let late = scheduler.submit(EngineRequest {
        constraint: LaneConstraint::Grammar(xgrammar::json_schema_to_grammar(&tasks[0].schema)?),
        prompt_tokens: 139,
        reference: tasks[0].reference.clone(),
        max_tokens: 200,
        seed: 0xFEED,
    })?;
    println!("submitted late request {}", late.id());
    handles.push(late);

    // Stream every request: admission notice, byte chunks, final timing.
    for handle in handles {
        let id = handle.id();
        let mut streamed = 0usize;
        loop {
            match handle.next_event().expect("scheduler is running") {
                StreamEvent::Admitted {
                    queue_time,
                    compile_time,
                    cache_hit,
                } => println!(
                    "  [{id}] admitted after {:.2} ms (compile {:.2} ms, cache hit: {cache_hit})",
                    queue_time.as_secs_f64() * 1e3,
                    compile_time.as_secs_f64() * 1e3,
                ),
                StreamEvent::Bytes(chunk) => streamed += chunk.len(),
                StreamEvent::Finished { result, timing } => {
                    println!(
                        "  [{id}] finished: {} bytes streamed, TTFT {:.2} ms, TPOT {:.3} ms, \
                         {} sampled + {} forced tokens",
                        streamed,
                        timing.ttft.as_secs_f64() * 1e3,
                        timing.tpot.as_secs_f64() * 1e3,
                        result.tokens,
                        result.jump_forward_tokens,
                    );
                    break;
                }
                StreamEvent::Failed(err) => {
                    println!("  [{id}] failed: {err}");
                    break;
                }
            }
        }
    }

    let metrics = scheduler.metrics();
    scheduler.shutdown();
    println!(
        "served {} requests over {} decode steps: peak {} concurrent lanes, \
         {} admission cache hits, {:.0} tok/s steady-state",
        metrics.completed,
        metrics.decode_steps,
        metrics.max_concurrent_lanes,
        metrics.cache_hit_admissions,
        metrics.throughput(),
    );
    Ok(())
}
