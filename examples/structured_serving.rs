//! Batched structured serving: compare serial vs overlapped execution and
//! XGrammar vs the naive full-scan baseline on the simulated engine (the
//! paper's §4.2 scenario in miniature).
//!
//! ```text
//! cargo run --release --example structured_serving
//! ```

use std::sync::Arc;

use xg_baselines::{ConstrainedBackend, NaivePdaBackend, XGrammarBackend};
use xg_engine::{EngineRequest, ExecutionMode, ModelProfile, ServingEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(16_000));
    let profile = ModelProfile::llama31_8b_h100().scaled(0.1);

    let requests: Vec<EngineRequest> = xg_datasets::json_mode_eval_like(8, 7)
        .into_iter()
        .map(|task| EngineRequest {
            grammar: Some(xgrammar::json_schema_to_grammar(&task.schema).expect("schema converts")),
            prompt_tokens: 139,
            reference: task.reference,
            max_tokens: 96,
        })
        .collect();

    println!("batch of {} function-calling requests", requests.len());
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "engine", "TPOT (ms)", "mask (ms)", "GPU (ms)"
    );
    let configurations: Vec<(&str, Arc<dyn ConstrainedBackend>, ExecutionMode)> = vec![
        (
            "naive PDA scan, serial",
            Arc::new(NaivePdaBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Serial,
        ),
        (
            "XGrammar, serial",
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Serial,
        ),
        (
            "XGrammar, overlapped (co-design)",
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Overlapped,
        ),
    ];
    for (name, backend, mode) in configurations {
        let engine = ServingEngine::new(backend, profile.clone(), mode);
        let (_, metrics) = engine.run_batch(&requests)?;
        println!(
            "{:<34} {:>12.2} {:>12.2} {:>12.2}",
            name,
            metrics.tpot.as_secs_f64() * 1e3,
            metrics.mask_time.as_secs_f64() * 1e3,
            metrics.gpu_time.as_secs_f64() * 1e3
        );
    }
    println!();
    println!("The overlapped XGrammar engine hides grammar work under the simulated GPU step,");
    println!("reproducing the paper's near-zero-overhead structured generation result.");
    Ok(())
}
