//! Batched structured serving: compare serial vs overlapped execution and
//! XGrammar vs the naive full-scan baseline on the simulated engine (the
//! paper's §4.2 scenario in miniature), then show the serving concurrency
//! layer — a shared compiled-grammar cache plus parallel per-lane mask
//! generation — across repeated batches.
//!
//! ```text
//! cargo run --release --example structured_serving
//! ```

use std::sync::Arc;

use xg_baselines::{ConstrainedBackend, NaivePdaBackend, XGrammarBackend};
use xg_engine::{
    EngineRequest, ExecutionMode, JumpForwardPolicy, LaneConstraint, ModelProfile, ServingEngine,
};
use xgrammar::{CompilerConfig, GrammarCache, GrammarCacheConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(16_000));
    let profile = ModelProfile::llama31_8b_h100().scaled(0.1);

    let requests: Vec<EngineRequest> = xg_datasets::json_mode_eval_like(8, 7)
        .into_iter()
        .enumerate()
        .map(|(i, task)| EngineRequest {
            constraint: LaneConstraint::Grammar(
                xgrammar::json_schema_to_grammar(&task.schema).expect("schema converts"),
            ),
            prompt_tokens: 139,
            reference: task.reference,
            max_tokens: 96,
            seed: i as u64,
        })
        .collect();

    println!("batch of {} function-calling requests", requests.len());
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "engine", "TPOT (ms)", "mask (ms)", "GPU (ms)"
    );
    let configurations: Vec<(&str, Arc<dyn ConstrainedBackend>, ExecutionMode)> = vec![
        (
            "naive PDA scan, serial",
            Arc::new(NaivePdaBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Serial,
        ),
        (
            "XGrammar, serial",
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Serial,
        ),
        (
            "XGrammar, overlapped (co-design)",
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab))),
            ExecutionMode::Overlapped,
        ),
    ];
    for (name, backend, mode) in configurations {
        let engine = ServingEngine::new(backend, profile.clone(), mode);
        let (_, metrics) = engine.run_batch(&requests)?;
        println!(
            "{:<34} {:>12.2} {:>12.2} {:>12.2}",
            name,
            metrics.tpot.as_secs_f64() * 1e3,
            metrics.mask_time.as_secs_f64() * 1e3,
            metrics.gpu_time.as_secs_f64() * 1e3
        );
    }
    println!();
    println!("The overlapped XGrammar engine hides grammar work under the simulated GPU step,");
    println!("reproducing the paper's near-zero-overhead structured generation result.");

    // ---- The serving concurrency layer: shared cache + parallel lanes. ----
    println!();
    println!("serving concurrency layer (shared grammar cache, parallel mask lanes):");
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::with_cache(
        Arc::clone(&vocab),
        CompilerConfig::default(),
        Arc::clone(&cache),
    ));
    // Jump-forward now defaults to `Engine`; this engine opts out so the
    // comparison below still contrasts Off vs Engine.
    let engine = ServingEngine::new(Arc::clone(&backend), profile, ExecutionMode::Overlapped)
        .with_jump_forward(JumpForwardPolicy::Off);
    for batch_round in ["first batch (cold cache)", "second batch (warm cache)"] {
        let (_, metrics) = engine.run_batch(&requests)?;
        println!(
            "  {batch_round:<26} hit rate {:>3.0}% ({} hits / {} misses), \
             mask wall {:.2} ms on {} thread(s), parallel speedup {:.2}x",
            100.0 * metrics.cache.hit_rate(),
            metrics.cache.hits,
            metrics.cache.misses,
            metrics.mask_time.as_secs_f64() * 1e3,
            metrics.mask_threads,
            metrics.parallel_speedup(),
        );
    }
    println!(
        "  cache holds {} compiled grammar(s), {:.2} MB of mask-cache data",
        cache.stats().entries,
        cache.stats().current_bytes as f64 / 1e6
    );

    // ---- Engine-level jump-forward: forced text skips the GPU step. ----
    println!();
    println!("engine-level jump-forward (forced tokens injected without sampling):");
    let (off_results, off_metrics) = engine.run_batch(&requests)?;
    let jf_engine = ServingEngine::new(
        Arc::clone(&backend),
        ModelProfile::llama31_8b_h100().scaled(0.1),
        ExecutionMode::Overlapped,
    )
    .with_jump_forward(JumpForwardPolicy::Engine);
    let (jf_results, jf_metrics) = jf_engine.run_batch(&requests)?;
    // The differential guarantee: jump-forward changes nothing but speed.
    for (off, jf) in off_results.iter().zip(&jf_results) {
        assert_eq!(off.output, jf.output, "outputs must be byte-identical");
    }
    println!(
        "  off   : {:>4} sampled tokens, TPOT {:.2} ms",
        off_metrics.total_tokens,
        off_metrics.tpot.as_secs_f64() * 1e3,
    );
    println!(
        "  engine: {:>4} sampled + {} forced tokens ({} chars of forced text), TPOT {:.2} ms",
        jf_metrics.total_tokens,
        jf_metrics.jump_forward_tokens,
        jf_metrics.jump_forward_chars,
        jf_metrics.tpot.as_secs_f64() * 1e3,
    );
    let saved = off_metrics
        .total_tokens
        .saturating_sub(jf_metrics.total_tokens);
    println!(
        "  byte-identical outputs, {saved} fewer GPU decoding steps ({:.0}% of the batch)",
        100.0 * saved as f64 / off_metrics.total_tokens.max(1) as f64
    );
    Ok(())
}
