//! Grammar playground: parse an EBNF grammar (from a file or the built-in
//! JSON grammar), print its automaton statistics, and check candidate strings
//! against it.
//!
//! ```text
//! cargo run --example grammar_playground -- path/to/grammar.ebnf "input to check"
//! cargo run --example grammar_playground            # built-in JSON grammar demo
//! ```

use xgrammar::automata::{build_pda_default, SimpleMatcher};
use xgrammar::builtin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (grammar, inputs): (xgrammar::Grammar, Vec<String>) = match args.split_first() {
        Some((path, rest)) if std::path::Path::new(path).exists() => {
            let text = std::fs::read_to_string(path)?;
            (xgrammar::parse_ebnf(&text, "root")?, rest.to_vec())
        }
        Some((first, rest)) => {
            // No file: treat every argument as an input against the JSON grammar.
            let mut inputs = vec![first.clone()];
            inputs.extend(rest.iter().cloned());
            (builtin::json_grammar(), inputs)
        }
        None => (
            builtin::json_grammar(),
            vec![
                r#"{"name": "ada", "tags": ["math", "code"], "age": 36}"#.to_string(),
                r#"{"name": ada}"#.to_string(),
                "[1, 2, 3,]".to_string(),
            ],
        ),
    };

    println!("grammar ({} rules):", grammar.rules().len());
    println!("{grammar}");
    let pda = build_pda_default(&grammar);
    let stats = pda.stats();
    println!(
        "pushdown automaton: {} nodes, {} byte edges, {} rule edges, {} rules after inlining",
        stats.nodes, stats.byte_edges, stats.rule_edges, stats.rules
    );
    println!();
    for input in inputs {
        let accepted = SimpleMatcher::new(&pda).accepts(input.as_bytes());
        println!(
            "  {}  {}",
            if accepted { "ACCEPT" } else { "REJECT" },
            input
        );
    }
    Ok(())
}
