//! Structural tags: an agentic tool-calling transcript where free prose
//! passes through unconstrained and `<function=NAME>{json}</function>`
//! segments are grammar-constrained, with rollback across the tag boundary.
//!
//! ```text
//! cargo run --release --example tool_call_tags
//! ```

use std::sync::Arc;

use xgrammar::{
    DispatchMode, GrammarCompiler, StructuralTag, StructuralTagMatcher, TagContent, TagSpec,
    TokenBitmask,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(8000));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));

    // Two registered tools behind one shared trigger: once the model writes
    // `<function=`, decoding is constrained to a registered name, its
    // argument schema, and the closing tag.
    let weather = serde_json::json!({
        "type": "object",
        "properties": {"city": {"type": "string"}, "days": {"type": "integer"}},
        "required": ["city", "days"],
        "additionalProperties": false
    });
    let search = serde_json::json!({
        "type": "object",
        "properties": {"query": {"type": "string"}},
        "required": ["query"],
        "additionalProperties": false
    });
    let tag = StructuralTag::with_triggers(
        vec![
            TagSpec {
                begin: "<function=get_weather>".into(),
                content: TagContent::JsonSchema(weather),
                end: "</function>".into(),
            },
            TagSpec {
                begin: "<function=search>".into(),
                content: TagContent::JsonSchema(search),
                end: "</function>".into(),
            },
        ],
        vec!["<function=".into()],
    );
    let compiled = compiler.compile_tag_dispatch(&tag)?;
    let mut matcher = StructuralTagMatcher::new(compiled);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());

    // Free prose costs no mask work: the mask is all-allowed.
    matcher.fill_next_token_bitmask(&mut mask);
    println!(
        "free text      : {} of {} tokens allowed",
        mask.count_allowed(),
        vocab.len()
    );
    matcher.accept_bytes(b"Let me check the forecast. ")?;

    // The trigger fires and the tagged segment is constrained.
    matcher.accept_bytes(b"<function=")?;
    matcher.fill_next_token_bitmask(&mut mask);
    println!(
        "after trigger  : {} tokens allowed (mode {:?})",
        mask.count_allowed(),
        matcher.mode()
    );
    // Inside the segment, forced bytes are jumpable: once "get" rules out
    // the other registered tool, the rest of the name needs no sampled
    // tokens (or GPU steps) at all.
    matcher.accept_bytes(b"get")?;
    let forced = matcher.find_jump_forward_str();
    println!("jump-forward   : {forced:?} is forced, skipping the GPU for it");
    assert_eq!(forced, "_weather>");
    matcher.accept_bytes(forced.as_bytes())?;
    matcher.accept_bytes(br#"{"city": "oslo", "days": 3}</function>"#)?;
    println!("after end tag  : mode {:?}", matcher.mode());

    // Invalid tool output is impossible: a wrong byte inside the tag fails.
    matcher.accept_bytes(b" And one more: <function=")?;
    assert!(matcher.accept_bytes(b"delete_everything>").is_err());
    println!("unregistered fn: rejected inside the tag (as it should be)");

    // Rollback across the tag boundary: undo the half-open call entirely.
    matcher.rollback(1)?;
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    matcher.accept_bytes(b" Never mind, done.")?;
    assert!(matcher.can_terminate());
    println!("stats          : {:?}", matcher.stats());
    Ok(())
}
