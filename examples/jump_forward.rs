//! Jump-forward decoding (paper Appendix B): whenever the grammar forces a
//! unique continuation, append it directly instead of sampling it token by
//! token, and roll back across it when needed.
//!
//! ```text
//! cargo run --example jump_forward
//! ```

use std::sync::Arc;

use xgrammar::{GrammarCompiler, GrammarMatcher, TokenBitmask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(8000));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));

    // A schema with long forced key names: ideal for jump-forward decoding.
    let schema = serde_json::json!({
        "type": "object",
        "properties": {
            "transaction_identifier": {"type": "integer"},
            "customer_full_name": {"type": "string"},
            "approved": {"type": "boolean"}
        },
        "required": ["transaction_identifier", "customer_full_name", "approved"],
        "additionalProperties": false
    });
    let compiled = compiler.compile_json_schema(&schema)?;
    let mut matcher = GrammarMatcher::new(compiled);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());

    let mut sampled_tokens = 0usize;
    let mut jumped_bytes = 0usize;
    let mut output = Vec::new();
    // The "model" wants to produce this document.
    let reference = br#"{"transaction_identifier": 98127, "customer_full_name": "ada lovelace", "approved": true}"#;
    let mut cursor = 0usize;

    loop {
        // 1. Jump over any forced text without touching the model.
        let jump = matcher.find_jump_forward_string();
        if !jump.is_empty() {
            matcher.accept_bytes(&jump)?;
            output.extend_from_slice(&jump);
            jumped_bytes += jump.len();
            // Keep the reference cursor in sync with the forced text.
            if reference[cursor..].starts_with(&jump[..]) {
                cursor += jump.len();
            }
            println!("jump-forward: {:?}", String::from_utf8_lossy(&jump));
            continue;
        }
        // 2. Otherwise sample one token (greedy against the reference).
        if cursor >= reference.len() {
            break;
        }
        matcher.fill_next_token_bitmask(&mut mask);
        let mut choice = None;
        let mut choice_len = 0;
        for token in mask.allowed_tokens() {
            let bytes = vocab.token_bytes(token);
            if reference[cursor..].starts_with(bytes) && bytes.len() > choice_len {
                choice = Some(token);
                choice_len = bytes.len();
            }
        }
        let Some(token) = choice else { break };
        matcher.accept_token(token)?;
        output.extend_from_slice(vocab.token_bytes(token));
        cursor += choice_len;
        sampled_tokens += 1;
    }

    println!();
    println!("final output: {}", String::from_utf8_lossy(&output));
    println!(
        "sampled {} tokens, jumped over {} bytes of forced text ({}% of the output)",
        sampled_tokens,
        jumped_bytes,
        100 * jumped_bytes / output.len().max(1)
    );

    // 3. Rollback demo: undo the last two steps (token or jump) and verify
    //    the matcher can regenerate.
    matcher.rollback(2)?;
    println!(
        "rolled back 2 steps; matcher alive: {}",
        !matcher.is_terminated()
    );
    Ok(())
}
