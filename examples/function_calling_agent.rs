//! Function-calling agent: run the json-mode-eval-like workload end to end
//! through the simulated serving engine, with and without grammar
//! constraints, and report syntactic validity (the paper's §4.4 scenario).
//!
//! ```text
//! cargo run --release --example function_calling_agent
//! ```

use std::sync::Arc;

use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_engine::{
    EngineRequest, ExecutionMode, LaneConstraint, LlmBehavior, ModelProfile, ServingEngine,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(8000));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    // A fast time scale keeps the example snappy; set 1.0 for realistic
    // wall-clock times.
    let profile = ModelProfile::llama31_8b_h100().scaled(0.02);
    let engine = ServingEngine::with_llm_behavior(
        Arc::clone(&backend),
        profile,
        ExecutionMode::Overlapped,
        LlmBehavior::default(),
    );

    let tasks = xg_datasets::json_mode_eval_like(6, 2025);
    let mut valid_constrained = 0;
    let mut valid_unconstrained = 0;
    for task in &tasks {
        println!("function: {}", task.function_name);
        let constrained = EngineRequest {
            constraint: LaneConstraint::Grammar(xgrammar::json_schema_to_grammar(&task.schema)?),
            prompt_tokens: 139,
            reference: task.reference.clone(),
            max_tokens: 256,
            seed: 0,
        };
        let unconstrained = EngineRequest {
            constraint: LaneConstraint::Unconstrained,
            ..constrained.clone()
        };
        let (with, _) = engine.run_batch(std::slice::from_ref(&constrained))?;
        let (without, _) = engine.run_batch(std::slice::from_ref(&unconstrained))?;
        let with_ok = serde_json::from_slice::<serde_json::Value>(&with[0].output).is_ok();
        let without_ok = serde_json::from_slice::<serde_json::Value>(&without[0].output).is_ok();
        valid_constrained += usize::from(with_ok);
        valid_unconstrained += usize::from(without_ok);
        println!(
            "  constrained   ({}): {}",
            if with_ok {
                "valid JSON  "
            } else {
                "INVALID JSON"
            },
            String::from_utf8_lossy(&with[0].output)
        );
        println!(
            "  unconstrained ({}): {}",
            if without_ok {
                "valid JSON  "
            } else {
                "INVALID JSON"
            },
            truncate(&String::from_utf8_lossy(&without[0].output), 90)
        );
    }
    println!();
    println!(
        "syntactic validity: constrained {}/{}  unconstrained {}/{}",
        valid_constrained,
        tasks.len(),
        valid_unconstrained,
        tasks.len()
    );
    Ok(())
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}
