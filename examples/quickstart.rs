//! Quickstart: compile a JSON-Schema grammar, then alternate mask generation
//! and token acceptance exactly the way an LLM serving engine would.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use xgrammar::{GrammarCompiler, GrammarMatcher, TokenBitmask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tokenizer vocabulary. Real integrations read the serving engine's
    //    tokenizer; here we use the synthetic Llama-3.1-like one.
    let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(8000));
    println!("vocabulary: {} tokens", vocab.len());

    // 2. Compile a JSON Schema into a grammar + adaptive token mask cache.
    let schema = serde_json::json!({
        "type": "object",
        "properties": {
            "city": {"type": "string"},
            "unit": {"enum": ["celsius", "fahrenheit"]},
            "days": {"type": "integer"}
        },
        "required": ["city", "unit", "days"],
        "additionalProperties": false
    });
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler.compile_json_schema(&schema)?;
    let stats = compiled.stats();
    println!(
        "compiled: {} automaton nodes, mask cache {:.1} KiB (dense would be {:.1} KiB), worst node has {} context-dependent tokens",
        stats.nodes,
        stats.memory_bytes as f64 / 1024.0,
        stats.dense_memory_bytes as f64 / 1024.0,
        stats.max_context_dependent_per_node,
    );

    // 3. Drive a generation. We stand in for the LLM by always proposing the
    //    next fragment of a known-good answer.
    let reference = br#"{"city": "paris", "unit": "celsius", "days": 3}"#;
    let mut matcher = GrammarMatcher::new(compiled);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut output = Vec::new();
    let mut position = 0;
    while position < reference.len() {
        matcher.fill_next_token_bitmask(&mut mask);
        // Greedy "model": longest vocabulary token continuing the reference
        // that the mask allows.
        let mut choice = None;
        let mut choice_len = 0;
        for token in mask.allowed_tokens() {
            let bytes = vocab.token_bytes(token);
            if reference[position..].starts_with(bytes) && bytes.len() > choice_len {
                choice = Some(token);
                choice_len = bytes.len();
            }
        }
        let token = choice.expect("the reference conforms to the schema");
        matcher.accept_token(token)?;
        output.extend_from_slice(vocab.token_bytes(token));
        position += choice_len;
    }
    matcher.fill_next_token_bitmask(&mut mask);
    let eos = vocab.eos().expect("vocabulary has EOS");
    assert!(
        mask.is_allowed(eos),
        "the structure is complete, EOS must be allowed"
    );
    matcher.accept_token(eos)?;

    println!("constrained output: {}", String::from_utf8_lossy(&output));
    println!(
        "matcher stats: {} masks, {} context-dependent runtime checks",
        matcher.stats().masks_generated,
        matcher.stats().context_dependent_checked
    );
    Ok(())
}
