//! Concurrency stress tests for the compiled-grammar cache: many threads
//! racing on the same grammar must trigger exactly one compilation and share
//! one `Arc<CompiledGrammar>`, with the engine stack staying correct on top.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use xg_core::{
    CompiledGrammar, CompilerConfig, GrammarCache, GrammarCacheConfig, GrammarCacheKey,
    GrammarCompiler, GrammarMatcher, TokenBitmask,
};
use xg_tokenizer::test_vocabulary;

const THREADS: usize = 8;

#[test]
fn stress_same_grammar_compiles_exactly_once() {
    let vocab = Arc::new(test_vocabulary(800));
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
    let grammar =
        Arc::new(xg_grammar::parse_ebnf(r#"root ::= "{" [a-z]+ ":" [0-9]+ "}""#, "root").unwrap());
    let config = CompilerConfig::default();
    let key = GrammarCacheKey::new(&grammar, vocab.fingerprint(), &config);
    let compilations = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let results: Vec<Arc<CompiledGrammar>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let grammar = Arc::clone(&grammar);
                let vocab = Arc::clone(&vocab);
                let compilations = Arc::clone(&compilations);
                let barrier = Arc::clone(&barrier);
                let config = config.clone();
                scope.spawn(move || {
                    barrier.wait();
                    // The injected hook counts how many threads actually ran
                    // the compiler.
                    cache.get_or_insert_with(key, || {
                        compilations.fetch_add(1, Ordering::SeqCst);
                        CompiledGrammar::compile(&grammar, Arc::clone(&vocab), &config)
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        compilations.load(Ordering::SeqCst),
        1,
        "all {THREADS} threads must share one compilation"
    );
    for other in &results[1..] {
        assert!(
            Arc::ptr_eq(&results[0], other),
            "every thread must receive the identical Arc<CompiledGrammar>"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, THREADS as u64 - 1);
    assert_eq!(stats.entries, 1);

    // The shared compiled grammar is immediately usable by every thread.
    std::thread::scope(|scope| {
        for compiled in &results {
            scope.spawn(move || {
                let mut matcher = GrammarMatcher::new(Arc::clone(compiled));
                matcher.accept_bytes(b"{abc:42}").unwrap();
                assert!(matcher.can_terminate());
            });
        }
    });
}

#[test]
fn stress_distinct_grammars_do_not_serialize_each_other() {
    // Threads compiling *different* grammars proceed concurrently (the map
    // lock is not held during compilation) and each compiles exactly once.
    let vocab = Arc::new(test_vocabulary(800));
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
    let compilations = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let vocab = Arc::clone(&vocab);
            let compilations = Arc::clone(&compilations);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                // Two distinct grammars, each raced by half the threads.
                let source = if t % 2 == 0 {
                    r#"root ::= "[" [0-9]+ "]""#
                } else {
                    r#"root ::= "<" [a-z]+ ">""#
                };
                let grammar = xg_grammar::parse_ebnf(source, "root").unwrap();
                let config = CompilerConfig::default();
                let key = GrammarCacheKey::new(&grammar, vocab.fingerprint(), &config);
                barrier.wait();
                let compiled = cache.get_or_insert_with(key, || {
                    compilations.fetch_add(1, Ordering::SeqCst);
                    CompiledGrammar::compile(&grammar, Arc::clone(&vocab), &config)
                });
                // Every thread can match with its grammar right away.
                let mut matcher = GrammarMatcher::new(compiled);
                let input: &[u8] = if t % 2 == 0 { b"[12]" } else { b"<ab>" };
                matcher.accept_bytes(input).unwrap();
            });
        }
    });

    assert_eq!(compilations.load(Ordering::SeqCst), 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn stress_shared_compiler_masks_stay_correct_under_threads() {
    // End-to-end: one GrammarCompiler (hence one cache) shared by 8 threads
    // that compile the same schema grammar and immediately generate masks.
    // The masks must be identical across threads.
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = Arc::new(GrammarCompiler::new(Arc::clone(&vocab)));
    let grammar = Arc::new(xg_grammar::builtin::json_grammar());
    let barrier = Arc::new(Barrier::new(THREADS));

    let masks: Vec<TokenBitmask> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let compiler = Arc::clone(&compiler);
                let grammar = Arc::clone(&grammar);
                let vocab = Arc::clone(&vocab);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let compiled = compiler.compile_grammar(&grammar);
                    let mut matcher = GrammarMatcher::new(compiled);
                    matcher.accept_bytes(br#"{"k": "#).unwrap();
                    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
                    matcher.fill_next_token_bitmask(&mut mask);
                    mask
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(compiler.cached_count(), 1);
    assert_eq!(compiler.cache().stats().misses, 1);
    for mask in &masks[1..] {
        assert_eq!(
            &masks[0], mask,
            "masks must not depend on the compiling thread"
        );
    }
    assert!(masks[0].count_allowed() > 0);
}

#[test]
fn near_identical_schemas_get_distinct_cache_keys() {
    // Schemas differing only in a numeric bound, a string format, a pattern
    // quantifier, or the whitespace configuration must land on distinct
    // cache keys — a collision would silently serve the wrong grammar.
    let vocab = Arc::new(test_vocabulary(800));
    let config = CompilerConfig::default();
    let schemas = [
        r#"{"type":"integer","minimum":0,"maximum":100}"#,
        r#"{"type":"integer","minimum":0,"maximum":101}"#,
        r#"{"type":"integer","minimum":1,"maximum":100}"#,
        r#"{"type":"integer","multipleOf":5}"#,
        r#"{"type":"integer","multipleOf":7}"#,
        r#"{"type":"number","minimum":0,"maximum":100}"#,
        r#"{"type":"string","format":"ipv4"}"#,
        r#"{"type":"string","format":"ipv6"}"#,
        r#"{"type":"string","pattern":"^a{1,3}$"}"#,
        r#"{"type":"string","pattern":"^a{1,4}$"}"#,
    ];
    let grammars: Vec<xg_grammar::Grammar> = schemas
        .iter()
        .map(|source| {
            let schema: serde_json::Value = serde_json::from_str(source).unwrap();
            xg_grammar::json_schema_to_grammar(&schema).expect("schema converts")
        })
        .collect();
    let keys: Vec<GrammarCacheKey> = grammars
        .iter()
        .map(|grammar| GrammarCacheKey::new(grammar, vocab.fingerprint(), &config))
        .collect();
    for (i, a) in keys.iter().enumerate() {
        for (j, b) in keys.iter().enumerate().skip(i + 1) {
            assert_ne!(
                a, b,
                "cache-key collision between schemas {i} and {j}:\n  {}\n  {}",
                schemas[i], schemas[j]
            );
        }
    }

    // Whitespace configuration is part of the grammar, hence of the key.
    let schema: serde_json::Value = serde_json::from_str(
        r#"{"type":"object","properties":{"a":{"type":"integer"}},"required":["a"]}"#,
    )
    .unwrap();
    let compact = xg_grammar::json_schema_to_grammar_with_options(
        &schema,
        &xg_grammar::JsonSchemaOptions {
            whitespace: xg_grammar::WhitespaceConfig::Compact,
            ..Default::default()
        },
    )
    .unwrap();
    let flexible = xg_grammar::json_schema_to_grammar(&schema).unwrap();
    assert_ne!(
        GrammarCacheKey::new(&compact, vocab.fingerprint(), &config),
        GrammarCacheKey::new(&flexible, vocab.fingerprint(), &config),
        "compact and flexible whitespace grammars must not share a cache entry"
    );

    // End to end: one shared compiler caches each variant separately.
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    for grammar in &grammars {
        let _ = compiler.compile_grammar(grammar);
    }
    assert_eq!(compiler.cached_count(), grammars.len());
    assert_eq!(compiler.cache().stats().misses, grammars.len() as u64);
}
