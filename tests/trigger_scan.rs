//! Differential tests of the Aho–Corasick trigger scanner against the naive
//! multi-pattern prefix scan it replaced: on any (validation-shaped) pattern
//! set and any transcript, both must report byte-for-byte identical matches.

use proptest::prelude::*;
use xg_automata::{AhoCorasick, NaiveMultiPattern};

/// Keeps only patterns that do not occur inside (and do not contain) an
/// already kept pattern — the same no-pattern-inside-another invariant
/// `StructuralTag::trigger_assignments` validates before triggers reach the
/// scanner.
fn infix_free(patterns: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let mut kept: Vec<Vec<u8>> = Vec::new();
    for p in patterns {
        if p.is_empty() {
            continue;
        }
        let overlaps = kept.iter().any(|k| {
            k.windows(p.len()).any(|w| w == p.as_slice())
                || p.windows(k.len()).any(|w| w == k.as_slice())
        });
        if !overlaps {
            kept.push(p);
        }
    }
    kept
}

/// A transcript over a small alphabet with the patterns spliced in, so
/// matches (including near-miss prefixes) actually occur.
fn build_transcript(noise: &[u8], patterns: &[Vec<u8>], splice_at: &[usize]) -> Vec<u8> {
    let mut out = noise.to_vec();
    if patterns.is_empty() {
        return out;
    }
    for (i, &pos) in splice_at.iter().enumerate() {
        let pattern = &patterns[i % patterns.len()];
        let at = pos % (out.len() + 1);
        // Insert full patterns and, every other time, a truncated prefix
        // (a near-miss the scanner must recover from).
        let take = if i % 2 == 0 {
            pattern.len()
        } else {
            pattern.len().div_ceil(2)
        };
        let splice: Vec<u8> = pattern[..take].to_vec();
        out.splice(at..at, splice);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Aho–Corasick and the naive prefix scan agree byte-for-byte: same
    /// match positions, same pattern indices, on random transcripts over
    /// random (infix-free) pattern catalogs.
    #[test]
    fn aho_corasick_matches_naive_scan(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(vec![b'<', b'>', b'=', b'a', b'b', b'f']),
                1..6,
            ),
            1..10,
        ),
        noise in proptest::collection::vec(
            proptest::sample::select(vec![b'<', b'>', b'=', b'a', b'b', b'f', b' ', b'x']),
            0..120,
        ),
        splice_at in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let patterns = infix_free(raw_patterns);
        let transcript = build_transcript(&noise, &patterns, &splice_at);
        let ac = AhoCorasick::new(&patterns);
        let naive = NaiveMultiPattern::new(&patterns);
        let ac_matches = ac.find_all(&transcript);
        let naive_matches = naive.find_all(&transcript);
        prop_assert_eq!(
            ac_matches,
            naive_matches,
            "scanners diverge on patterns {:?} over {:?}",
            patterns,
            transcript
        );
    }

    /// Independent oracle: every match either scanner reports really is a
    /// full occurrence of the reported pattern ending at that position.
    #[test]
    fn reported_matches_are_real_occurrences(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(vec![b'<', b'f', b'n', b'=', b'>']),
                1..5,
            ),
            1..6,
        ),
        noise in proptest::collection::vec(
            proptest::sample::select(vec![b'<', b'f', b'n', b'=', b'>', b' ', b'a']),
            0..80,
        ),
    ) {
        let patterns = infix_free(raw_patterns);
        let ac = AhoCorasick::new(&patterns);
        for (end, idx) in ac.find_all(&noise) {
            prop_assert!(
                noise[..end].ends_with(&patterns[idx]),
                "reported pattern {:?} does not end at {}",
                patterns[idx],
                end
            );
        }
    }
}

/// A 120-trigger tool catalog: the structural-tag matcher (which scans with
/// the Aho–Corasick automaton) dispatches at exactly the positions the naive
/// reference scan reports over the free text.
#[test]
fn large_catalog_dispatch_agrees_with_naive_scan() {
    use std::sync::Arc;
    use xg_core::{DispatchMode, GrammarCompiler, StructuralTagMatcher};
    use xg_grammar::{StructuralTag, TagContent, TagSpec};
    use xg_tokenizer::test_vocabulary;

    let tags: Vec<TagSpec> = (0..120)
        .map(|i| TagSpec {
            begin: format!("<fn{i:03}>"),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</e>".into(),
        })
        .collect();
    let triggers: Vec<Vec<u8>> = tags.iter().map(|t| t.begin.clone().into_bytes()).collect();
    let tag = StructuralTag::new(tags);
    let vocab = Arc::new(test_vocabulary(600));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
    assert_eq!(compiled.triggers().len(), 120);
    assert_eq!(compiled.scanner().patterns().len(), 120);

    let mut matcher = StructuralTagMatcher::new(Arc::clone(&compiled));
    // Prose with near-miss prefixes, then dispatches into three different
    // catalog entries.
    let transcript: &[u8] = b"noise <fn <fn9 <fn007>42</e> mid <fn119>7</e> <fn042>1</e> done";
    let naive = NaiveMultiPattern::new(&triggers);

    // The naive scan over the same transcript (skipping tagged segments,
    // which the matcher does not scan) must fire at the same places.
    let mut expected_triggers = Vec::new();
    let mut i = 0;
    let mut pending = Vec::new();
    while i < transcript.len() {
        if let Some(t) = naive.step(&mut pending, transcript[i]) {
            expected_triggers.push(t);
            // Skip the tagged segment body the matcher consumes constrained
            // (it does not trigger-scan there): everything through "</e>".
            let close = transcript[i..]
                .windows(4)
                .position(|w| w == b"</e>")
                .expect("every spliced segment closes");
            i += close + 4;
            pending.clear();
            continue;
        }
        i += 1;
    }
    assert_eq!(expected_triggers, vec![7, 119, 42]);

    let mut fired = Vec::new();
    for &b in transcript {
        let before = matcher.stats().tags_opened;
        matcher.accept_bytes(&[b]).unwrap();
        if matcher.stats().tags_opened > before {
            if let DispatchMode::Tagged { trigger } = matcher.mode() {
                fired.push(trigger);
            }
        }
    }
    assert_eq!(fired, expected_triggers);
    assert_eq!(matcher.stats().tags_opened, 3);
    assert_eq!(matcher.stats().tags_closed, 3);
    assert!(matcher.can_terminate());
}
