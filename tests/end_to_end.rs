//! Cross-crate integration tests: grammar front end → automata → core engine
//! → baselines → datasets, exercised together the way the benchmark harness
//! and the serving engine use them.

use std::sync::Arc;

use xg_baselines::{ConstrainedBackend, NaivePdaBackend, XGrammarBackend};
use xg_core::{CompilerConfig, GrammarCompiler, GrammarMatcher, TokenBitmask};
use xg_tokenizer::{test_vocabulary, Vocabulary};

fn vocab() -> Arc<Vocabulary> {
    Arc::new(test_vocabulary(1500))
}

/// Greedily drives a matcher along a reference output, asserting that every
/// chosen token was allowed by the freshly generated mask.
fn drive_reference(vocab: &Vocabulary, matcher: &mut GrammarMatcher, reference: &[u8]) -> Vec<u8> {
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut output = Vec::new();
    let mut cursor = 0;
    while cursor < reference.len() {
        matcher.fill_next_token_bitmask(&mut mask);
        let mut best = None;
        let mut best_len = 0;
        for token in mask.allowed_tokens() {
            let bytes = vocab.token_bytes(token);
            if reference[cursor..].starts_with(bytes) && bytes.len() > best_len {
                best = Some(token);
                best_len = bytes.len();
            }
        }
        let token = best.unwrap_or_else(|| {
            panic!(
                "no allowed token continues the reference at byte {cursor} of {:?}",
                String::from_utf8_lossy(reference)
            )
        });
        matcher
            .accept_token(token)
            .expect("token was allowed by the mask");
        output.extend_from_slice(vocab.token_bytes(token));
        cursor += best_len;
    }
    output
}

#[test]
fn schema_constrained_generation_reproduces_every_dataset_reference() {
    let vocab = vocab();
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    for task in xg_datasets::json_mode_eval_like(15, 0xE2E) {
        let compiled = compiler
            .compile_json_schema(&task.schema)
            .expect("dataset schemas convert");
        let mut matcher = GrammarMatcher::new(compiled);
        let output = drive_reference(&vocab, &mut matcher, &task.reference);
        assert_eq!(output, task.reference);
        assert!(
            matcher.can_terminate(),
            "reference must complete the schema"
        );
        let eos = vocab.eos().unwrap();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(eos));
    }
}

#[test]
fn builtin_grammars_accept_their_dataset_outputs_through_the_matcher() {
    let vocab = vocab();
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let cases = [
        (
            xg_grammar::builtin::json_grammar(),
            xg_datasets::json_documents(5, 1)
                .into_iter()
                .map(|t| t.reference)
                .collect::<Vec<_>>(),
        ),
        (
            xg_grammar::builtin::xml_grammar(),
            xg_datasets::xml_tasks(5, 1)
                .into_iter()
                .map(|t| t.reference)
                .collect(),
        ),
        (
            xg_grammar::builtin::python_dsl_grammar(),
            xg_datasets::python_dsl_tasks(5, 1)
                .into_iter()
                .map(|t| t.reference)
                .collect(),
        ),
    ];
    for (grammar, references) in cases {
        let compiled = compiler.compile_grammar(&grammar);
        for reference in references {
            let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
            let out = drive_reference(&vocab, &mut matcher, &reference);
            assert_eq!(out, reference);
            assert!(matcher.can_terminate());
        }
    }
}

#[test]
fn cached_engine_and_naive_baseline_agree_on_masks_along_a_generation() {
    let vocab = vocab();
    let grammar = xg_grammar::builtin::json_grammar();
    let xg = XGrammarBackend::new(Arc::clone(&vocab));
    let naive = NaivePdaBackend::new(Arc::clone(&vocab));
    let mut xg_session = xg.compile(&grammar).unwrap().new_session();
    let mut naive_session = naive.compile(&grammar).unwrap().new_session();

    let reference = br#"{"items": [1, {"name": "x"}], "ok": true}"#;
    let mut xg_mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut naive_mask = TokenBitmask::new_all_rejected(vocab.len());
    // Step the two engines with the single-byte tokens of the reference and
    // compare the full masks at every position.
    for (i, &b) in reference.iter().enumerate() {
        xg_session.fill_mask(&mut xg_mask);
        naive_session.fill_mask(&mut naive_mask);
        assert_eq!(
            xg_mask, naive_mask,
            "mask divergence at byte {i} of the reference"
        );
        let token = vocab.iter().find(|(_, t)| *t == [b]).unwrap().0;
        assert!(xg_mask.is_allowed(token));
        assert!(xg_session.accept_token(token));
        assert!(naive_session.accept_token(token));
    }
    assert!(xg_session.can_terminate());
    assert!(naive_session.can_terminate());
}

#[test]
fn ablation_configurations_all_produce_correct_masks() {
    let vocab = vocab();
    let grammar = xg_grammar::parse_ebnf(
        r#"
        root ::= "[" value ("," value)* "]"
        value ::= [0-9]+ | "\"" [a-z]* "\""
        "#,
        "root",
    )
    .unwrap();
    let reference = br#"[12,"ab",7]"#;
    let mut outputs = Vec::new();
    for config in [
        CompilerConfig::baseline(),
        CompilerConfig {
            enable_mask_cache: true,
            ..CompilerConfig::baseline()
        },
        CompilerConfig::default(),
    ] {
        let compiler = GrammarCompiler::with_config(Arc::clone(&vocab), config);
        let compiled = compiler.compile_grammar(&grammar);
        let mut matcher = GrammarMatcher::new(compiled);
        outputs.push(drive_reference(&vocab, &mut matcher, reference));
    }
    assert!(outputs.iter().all(|o| o == reference));
}

#[test]
fn rollback_supports_tree_structured_exploration() {
    // Tree-of-thought style usage (§3.3): branch the generation, explore one
    // branch, roll back, explore another.
    let vocab = vocab();
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler
        .compile_ebnf(r#"root ::= "[" [0-9]{1,3} "]""#, "root")
        .unwrap();
    let mut matcher = GrammarMatcher::new(compiled);
    let token = |bytes: &[u8]| vocab.iter().find(|(_, t)| *t == bytes).unwrap().0;

    matcher.accept_token(token(b"[")).unwrap();
    matcher.accept_token(token(b"1")).unwrap();
    matcher.accept_token(token(b"]")).unwrap();
    assert!(matcher.can_terminate());
    // Roll the closing bracket and the digit back, try a longer number.
    matcher.rollback(2).unwrap();
    matcher.accept_token(token(b"4")).unwrap();
    matcher.accept_token(token(b"2")).unwrap();
    matcher.accept_token(token(b"]")).unwrap();
    assert!(matcher.can_terminate());
}

#[test]
fn tokenizer_bpe_vocabulary_works_with_the_core_engine() {
    // Train a small BPE vocabulary on the synthetic corpus and run the whole
    // pipeline on top of it (tokenizer substrate → core engine).
    let corpus = xg_datasets::training_corpus(60_000, 3);
    let model = xg_tokenizer::BpeModel::train(
        &corpus,
        &xg_tokenizer::BpeTrainConfig {
            vocab_size: 1200,
            min_pair_frequency: 2,
        },
    );
    let vocab = Arc::new(model.vocabulary());
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler.compile_builtin_json();
    let mut matcher = GrammarMatcher::new(compiled);
    let reference = br#"{"name": "alice", "age": 30}"#;
    let out = drive_reference(&vocab, &mut matcher, reference);
    assert_eq!(out, reference);
}
