//! Differential harness for engine-level jump-forward decoding: the headline
//! guarantee is that [`JumpForwardPolicy`] changes *nothing but speed*. A
//! mixed batch (unconstrained prose + JSON-schema lanes + structural-tag
//! tool-call lanes) decoded under a seeded mock sampler must produce
//! byte-identical per-lane outputs with `Off`, `Matcher` and `Engine`
//! policies — with fewer (or equal) sampled tokens and strictly positive
//! forced-token counts on the schema-heavy lanes when jump-forward is on.
//!
//! The property test at the bottom extends the rollback-across-jump-forward
//! coverage of `tests/structural_tag.rs` to the engine layer: on random
//! grammars, injecting a forced-token run through a [`BackendSession`] and
//! rolling it back restores the matcher state exactly.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_core::TokenBitmask;
use xg_engine::{
    EngineRequest, ExecutionMode, JumpForwardPolicy, LaneConstraint, LlmBehavior, ModelProfile,
    RequestResult, ServingEngine,
};
use xg_tokenizer::{test_vocabulary, SortedVocabulary, Vocabulary};

/// A mixed batch: one prose lane, three schema-constrained lanes, one
/// structural-tag tool-call lane — the lane mix of an agentic serving batch.
/// Returns the requests plus the indices of the schema-heavy lanes.
fn mixed_requests() -> (Vec<EngineRequest>, Vec<usize>) {
    let mut requests = vec![EngineRequest {
        constraint: LaneConstraint::Unconstrained,
        prompt_tokens: 24,
        reference: b"Plain prose lane: no structure at all, sampled token by token.".to_vec(),
        max_tokens: 200,
        seed: 0,
    }];
    let mut schema_lanes = Vec::new();
    for task in xg_datasets::json_mode_eval_like(3, 0x1F2) {
        schema_lanes.push(requests.len());
        requests.push(EngineRequest {
            constraint: LaneConstraint::Grammar(
                xg_grammar::json_schema_to_grammar(&task.schema).expect("schema converts"),
            ),
            prompt_tokens: 139,
            reference: task.reference,
            max_tokens: 200,
            seed: requests.len() as u64,
        });
    }
    let tool_task = &xg_datasets::tool_call_tasks(1, 0x7A9)[0];
    requests.push(EngineRequest {
        constraint: LaneConstraint::StructuralTag(tool_task.structural_tag()),
        prompt_tokens: 139,
        reference: tool_task.reference.clone(),
        max_tokens: 400,
        seed: requests.len() as u64,
    });
    (requests, schema_lanes)
}

fn run_policy(
    backend: &Arc<dyn ConstrainedBackend>,
    requests: &[EngineRequest],
    policy: JumpForwardPolicy,
) -> (Vec<RequestResult>, xg_engine::BatchMetrics) {
    ServingEngine::with_llm_behavior(
        Arc::clone(backend),
        ModelProfile::llama31_8b_h100().scaled(0.02),
        ExecutionMode::Serial,
        LlmBehavior::default(),
    )
    .with_mask_parallelism(1)
    .with_jump_forward(policy)
    .run_batch(requests)
    .expect("mixed batch runs")
}

/// The headline differential: identical mixed batches under `Off` vs
/// `Matcher` vs `Engine` produce byte-identical per-lane outputs, the engine
/// policy samples fewer (or equal) tokens on every lane, and the
/// schema-heavy lanes actually exercise forced-token injection.
#[test]
fn jump_forward_changes_nothing_but_speed() {
    let vocab = Arc::new(test_vocabulary(2000));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    let (requests, schema_lanes) = mixed_requests();

    let (off, off_metrics) = run_policy(&backend, &requests, JumpForwardPolicy::Off);
    let (matcher, matcher_metrics) = run_policy(&backend, &requests, JumpForwardPolicy::Matcher);
    let (engine, engine_metrics) = run_policy(&backend, &requests, JumpForwardPolicy::Engine);

    for (lane, ((o, m), e)) in off.iter().zip(&matcher).zip(&engine).enumerate() {
        assert_eq!(
            String::from_utf8_lossy(&o.output),
            String::from_utf8_lossy(&m.output),
            "lane {lane}: matcher-policy output diverged"
        );
        assert_eq!(
            String::from_utf8_lossy(&o.output),
            String::from_utf8_lossy(&e.output),
            "lane {lane}: engine-policy output diverged"
        );
        assert_eq!(o.completed, e.completed, "lane {lane}: completion diverged");
        assert!(
            e.tokens <= o.tokens,
            "lane {lane}: engine policy sampled {} > {} tokens",
            e.tokens,
            o.tokens
        );
        // Every injected token shows up in the output bytes.
        assert!(e.jump_forward_chars <= e.output.len());
    }

    // The schema-heavy lanes force long key names: injection must fire.
    for &lane in &schema_lanes {
        assert!(
            engine[lane].jump_forward_tokens > 0,
            "schema lane {lane} never jump-forwarded"
        );
        assert!(
            engine[lane].tokens < off[lane].tokens,
            "schema lane {lane} saved no sampled tokens"
        );
    }
    // The prose lane is untouched by the grammar machinery.
    assert_eq!(engine[0].jump_forward_tokens, 0);
    assert_eq!(engine[0].jump_forward_chars, 0);
    assert_eq!(engine[0].tokens, off[0].tokens);

    // Batch accounting: the off path reports no forced work; the engine path
    // separates forced tokens/chars/time from the sampled TPOT.
    assert_eq!(off_metrics.jump_forward_tokens, 0);
    assert_eq!(off_metrics.jump_forward_chars, 0);
    assert_eq!(off_metrics.forced_time, Duration::ZERO);
    assert_eq!(matcher_metrics.jump_forward_tokens, 0);
    assert!(matcher_metrics.jump_forward_chars > 0);
    assert!(engine_metrics.jump_forward_tokens > 0);
    assert!(engine_metrics.jump_forward_chars > 0);
    assert!(engine_metrics.forced_time > Duration::ZERO);
    assert!(engine_metrics.total_tokens < off_metrics.total_tokens);
    // Honest TPOT: the carve-out never exceeds the total wall clock, and the
    // per-sampled-token figure stays meaningful.
    assert!(engine_metrics.forced_time < engine_metrics.total_time);
    assert!(engine_metrics.tpot > Duration::ZERO);
}

/// Running the same batch twice under the engine policy is deterministic —
/// the differential above is a stable guarantee, not a lucky sample.
#[test]
fn engine_policy_is_deterministic_across_runs() {
    let vocab = Arc::new(test_vocabulary(2000));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    let (requests, _) = mixed_requests();
    let (first, _) = run_policy(&backend, &requests, JumpForwardPolicy::Engine);
    let (second, _) = run_policy(&backend, &requests, JumpForwardPolicy::Engine);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.output, b.output);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.jump_forward_tokens, b.jump_forward_tokens);
        assert_eq!(a.jump_forward_chars, b.jump_forward_chars);
    }
}

// ---------------------------------------------------------------------------
// Property test: forced-token injection + rollback across the forced run
// restores the session state exactly, on random grammars.
// ---------------------------------------------------------------------------

/// Characters safe inside EBNF literals that also exist as single-byte
/// tokens of the synthetic vocabulary.
const LITERAL_CHARS: &[u8] = b"abcxyz019,;:=()[]{}<>";

/// Generates a small random EBNF expression of bounded depth. Literals are
/// biased long so jump-forward actually has something to force.
fn random_expr(rng: &mut SmallRng, depth: usize) -> String {
    let variants = if depth == 0 { 2 } else { 5 };
    match rng.gen_range(0..variants) {
        0 => {
            let len = rng.gen_range(2..=6);
            let lit: Vec<u8> = (0..len)
                .map(|_| LITERAL_CHARS[rng.gen_range(0..LITERAL_CHARS.len())])
                .collect();
            format!("\"{}\"", String::from_utf8(lit).unwrap())
        }
        1 => ["[a-c]", "[0-9]", "[xyz]"][rng.gen_range(0..3usize)].to_string(),
        2 => {
            let n = rng.gen_range(2..=3);
            let items: Vec<String> = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
            items.join(" ")
        }
        3 => {
            let n = rng.gen_range(2..=3);
            let items: Vec<String> = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
            format!("({})", items.join(" | "))
        }
        _ => {
            let inner = random_expr(rng, depth - 1);
            let op = ["*", "+", "?", "{1,3}"][rng.gen_range(0..4usize)];
            format!("({inner}){op}")
        }
    }
}

/// Picks any mask-allowed non-special token, preferring single-byte tokens so
/// the walk stays inside the grammar's alphabet.
fn pick_allowed(vocab: &Vocabulary, mask: &TokenBitmask) -> Option<xg_tokenizer::TokenId> {
    mask.allowed_tokens()
        .filter(|t| !vocab.is_special(*t))
        .min_by_key(|t| vocab.token_bytes(*t).len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Engine-layer mirror of the matcher-level rollback-across-jump-forward
    /// test: inject the forced-token run the serving engine would inject
    /// (longest-prefix cover, one `accept_token` per cover token), roll the
    /// whole run back through `BackendSession::rollback`, and demand the
    /// exact pre-injection state — same mask, same forced string, same
    /// rollback window.
    #[test]
    fn forced_token_injection_rolls_back_exactly(seed in 0u64..5_000) {
        let vocab = Arc::new(test_vocabulary(600));
        let sorted = SortedVocabulary::new(&vocab);
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let mut rng = SmallRng::seed_from_u64(seed);
        let source = format!("root ::= {}\n", random_expr(&mut rng, 2));
        let grammar = xg_grammar::parse_ebnf(&source, "root")
            .unwrap_or_else(|e| panic!("generated grammar must parse: {e}\n{source}"));
        let compiled = backend.compile(&grammar).expect("xgrammar compiles CFGs");
        let mut session = compiled.new_session();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut pre_mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut injections = 0usize;

        for _ in 0..12 {
            let forced = session.find_jump_forward();
            if !forced.is_empty() {
                let (cover, covered) = sorted.longest_prefix_cover(&vocab, &forced);
                prop_assert_eq!(covered, forced.len(), "byte fallback covers everything");
                session.fill_mask(&mut pre_mask);
                let pre_window = session.rollback_window();

                // Inject the run exactly like the serving engine does.
                let mut accepted = 0usize;
                for &token in &cover {
                    prop_assert!(
                        session.accept_token(token),
                        "forced cover token {:?} rejected (grammar {})",
                        String::from_utf8_lossy(vocab.token_bytes(token)),
                        source.trim()
                    );
                    accepted += 1;
                }
                if session.rollback_window() >= pre_window + accepted {
                    // Roll the whole forced run back: the pre-injection state
                    // must be restored exactly.
                    prop_assert!(session.rollback(accepted), "rollback refused");
                    session.fill_mask(&mut mask);
                    prop_assert_eq!(
                        &mask, &pre_mask,
                        "mask diverged after rollback (grammar {})", source.trim()
                    );
                    prop_assert_eq!(
                        session.find_jump_forward(), forced.clone(),
                        "forced string diverged after rollback"
                    );
                    prop_assert_eq!(session.rollback_window(), pre_window);
                    // Replay the run so the walk continues past it.
                    for &token in &cover {
                        prop_assert!(session.accept_token(token));
                    }
                }
                injections += 1;
                continue;
            }
            // No forced text: advance one sampled token along the mask.
            session.fill_mask(&mut mask);
            let Some(token) = pick_allowed(&vocab, &mask) else { break };
            prop_assert!(session.accept_token(token), "mask promised the token");
        }
        // Most random grammars force something; the property is vacuous only
        // for the rare all-choice grammars.
        let _ = injections;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Differential for speculative draft verification (the constraint-side
    /// half of speculative decoding): on random grammars,
    /// `accept_tokens_speculative` accepts exactly the longest prefix a
    /// token-by-token `accept_token` loop would, leaves the session in the
    /// bit-identical post-prefix state, and — because every accepted token is
    /// an individual rollback unit — rolling the accepted run back restores
    /// the pre-draft state exactly.
    #[test]
    fn speculative_draft_matches_serial_loop(seed in 0u64..5_000) {
        let vocab = Arc::new(test_vocabulary(600));
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let mut rng = SmallRng::seed_from_u64(seed);
        let source = format!("root ::= {}\n", random_expr(&mut rng, 2));
        let grammar = xg_grammar::parse_ebnf(&source, "root")
            .unwrap_or_else(|e| panic!("generated grammar must parse: {e}\n{source}"));
        let compiled = backend.compile(&grammar).expect("xgrammar compiles CFGs");

        // Build a draft the way a draft model would: a grammar-valid prefix
        // (walked on a probe session) followed by junk tokens the grammar
        // rejects at that point, when such a token exists.
        let mut probe = compiled.new_session();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut draft = Vec::new();
        for _ in 0..rng.gen_range(0..=8usize) {
            probe.fill_mask(&mut mask);
            let Some(token) = pick_allowed(&vocab, &mask) else { break };
            if !probe.accept_token(token) {
                break;
            }
            draft.push(token);
        }
        let valid_len = draft.len();
        probe.fill_mask(&mut mask);
        let junk = (0..vocab.len() as u32)
            .map(xg_tokenizer::TokenId)
            .find(|&t| !vocab.is_special(t) && !mask.is_allowed(t));
        if let Some(junk) = junk {
            draft.push(junk);
            draft.push(junk);
        }

        // Token-by-token reference loop.
        let mut serial = compiled.new_session();
        let mut serial_accepted = 0usize;
        for &token in &draft {
            if !serial.accept_token(token) {
                break;
            }
            serial_accepted += 1;
        }

        // Speculative path on a fresh session.
        let mut spec = compiled.new_session();
        let mut pre_mask = TokenBitmask::new_all_rejected(vocab.len());
        spec.fill_mask(&mut pre_mask);
        let pre_window = spec.rollback_window();
        let accepted = spec.accept_tokens_speculative(&draft);
        prop_assert_eq!(
            accepted, serial_accepted,
            "speculative prefix length diverged from serial loop (grammar {})",
            source.trim()
        );
        if junk.is_some() {
            prop_assert_eq!(accepted, valid_len, "junk tail must be rejected");
        }

        // Post-prefix state parity: both sessions produce the same mask.
        let mut spec_mask = TokenBitmask::new_all_rejected(vocab.len());
        spec.fill_mask(&mut spec_mask);
        serial.fill_mask(&mut mask);
        prop_assert_eq!(
            &spec_mask, &mask,
            "post-draft mask diverged from serial loop (grammar {})",
            source.trim()
        );

        // Every accepted token is an individual rollback unit.
        prop_assert!(
            spec.rollback_window() >= pre_window + accepted,
            "accepted run not individually rollbackable"
        );
        if accepted > 0 {
            prop_assert!(spec.rollback(accepted), "rollback refused");
            spec.fill_mask(&mut spec_mask);
            prop_assert_eq!(
                &spec_mask, &pre_mask,
                "mask diverged after rolling back the draft (grammar {})",
                source.trim()
            );
            prop_assert_eq!(spec.rollback_window(), pre_window);
        }
    }
}
