//! Golden schema→EBNF tests for the JSON-Schema converter keywords added
//! for llguidance parity: each schema pins the exact display form of the
//! rules its keyword produces, re-parses the printed grammar, and checks the
//! round trip preserves both the text (printing is a fixed point) and the
//! language (probe strings accept/reject identically).

use xg_automata::{build_pda_default, SimpleMatcher};
use xg_grammar::{JsonSchemaOptions, WhitespaceConfig};

struct Golden {
    name: &'static str,
    schema: &'static str,
    compact: bool,
    /// Exact lines that must appear in the grammar's display output.
    expected_lines: &'static [&'static str],
    accepts: &'static [&'static str],
    rejects: &'static [&'static str],
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "integer-bounds",
        schema: r#"{"type":"integer","minimum":0,"maximum":9}"#,
        compact: false,
        expected_lines: &[r#"root ::= json_ws ("0" | [1-8] | "9") json_ws"#],
        accepts: &["0", "9", " 5 "],
        rejects: &["10", "-1", "00"],
    },
    Golden {
        name: "exclusive-bounds",
        schema: r#"{"type":"integer","exclusiveMinimum":0,"exclusiveMaximum":10}"#,
        compact: false,
        expected_lines: &[r#"root ::= json_ws ("1" | [2-8] | "9") json_ws"#],
        accepts: &["1", "9"],
        rejects: &["0", "10"],
    },
    Golden {
        name: "pattern",
        schema: r#"{"type":"string","pattern":"^[a-c]{2}$"}"#,
        compact: false,
        expected_lines: &[r#"root ::= json_ws "\"" [a-c]{2} "\"" json_ws"#],
        accepts: &[r#""ab""#, r#""cc""#],
        rejects: &[r#""a""#, r#""abc""#, r#""xy""#],
    },
    Golden {
        name: "format",
        schema: r#"{"type":"string","format":"uuid"}"#,
        compact: false,
        expected_lines: &[
            r##"format_uuid ::= "\"" [0-9A-Fa-f]{8} "-" [0-9A-Fa-f]{4} "-" [0-9A-Fa-f]{4} "-" [0-9A-Fa-f]{4} "-" [0-9A-Fa-f]{12} "\"""##,
            r#"root ::= json_ws format_uuid json_ws"#,
        ],
        accepts: &[r#""123e4567-e89b-12d3-a456-426614174000""#],
        rejects: &[r#""123e4567-e89b-12d3-a456-42661417400g""#, r#""plain""#],
    },
    Golden {
        name: "string-length",
        schema: r#"{"type":"string","minLength":1,"maxLength":3}"#,
        compact: false,
        expected_lines: &[r#"root ::= json_ws "\"" json_char{1,3} "\"" json_ws"#],
        accepts: &[r#""a""#, r#""abc""#],
        rejects: &[r#""""#, r#""abcd""#],
    },
    Golden {
        name: "multiple-of",
        schema: r#"{"type":"integer","multipleOf":3}"#,
        compact: false,
        expected_lines: &[
            r#"multiple_of_1_m0 ::= "" | [0369] multiple_of_1_m0 | [147] multiple_of_1_m1 | [258] multiple_of_1_m2"#,
            r#"multiple_of_1_m1 ::= [258] multiple_of_1_m0 | [0369] multiple_of_1_m1 | [147] multiple_of_1_m2"#,
            r#"multiple_of_1_m2 ::= [147] multiple_of_1_m0 | [258] multiple_of_1_m1 | [0369] multiple_of_1_m2"#,
            r#"root ::= json_ws ("0" | "-"? ([369] multiple_of_1_m0 | [147] multiple_of_1_m1 | [258] multiple_of_1_m2)) json_ws"#,
        ],
        accepts: &["0", "3", "27", "-12"],
        rejects: &["1", "25", "03"],
    },
    Golden {
        name: "number-bounds",
        schema: r#"{"type":"number","minimum":0,"maximum":2}"#,
        compact: false,
        expected_lines: &[
            r#"root ::= json_ws (("0" | "1") ("." [0-9]+)? | "2" ("." [0]+)?) json_ws"#,
        ],
        accepts: &["0", "1.75", "2.0"],
        rejects: &["2.5", "-1", "3"],
    },
    Golden {
        name: "all-of",
        schema: r#"{"allOf":[{"type":"object","properties":{"a":{"type":"integer"}},"required":["a"]},{"properties":{"b":{"type":"boolean"}},"required":["b"]}]}"#,
        compact: false,
        expected_lines: &[
            r#"object_members_3 ::= "\"a\"" json_ws ":" json_ws json_integer props_2_rest"#,
            r#"props_2_rest ::= json_ws "," json_ws "\"b\"" json_ws ":" json_ws json_boolean props_1_rest"#,
            r#"root ::= json_ws "{" json_ws object_members_3 json_ws "}" json_ws"#,
        ],
        accepts: &[r#"{"a": 1, "b": true}"#],
        rejects: &[r#"{"a": 1}"#, r#"{"b": true}"#, r#"{"a": "x", "b": true}"#],
    },
    Golden {
        name: "ref-recursive",
        schema: r##"{"$defs":{"node":{"type":"object","properties":{"next":{"anyOf":[{"$ref":"#/$defs/node"},{"type":"null"}]}},"required":["next"]}},"$ref":"#/$defs/node"}"##,
        compact: false,
        expected_lines: &[
            r#"ref_node_1 ::= "{" json_ws object_members_3 json_ws "}""#,
            r#"object_members_3 ::= "\"next\"" json_ws ":" json_ws (ref_node_1 | json_null) props_2_rest"#,
            r#"root ::= json_ws ref_node_1 json_ws"#,
        ],
        accepts: &[r#"{"next": null}"#, r#"{"next": {"next": {"next": null}}}"#],
        rejects: &[r#"{"next": 3}"#, r#"{"next": {"next": 1}}"#],
    },
    Golden {
        name: "compact-whitespace",
        schema: r#"{"type":"object","properties":{"a":{"type":"integer"}},"required":["a"]}"#,
        compact: true,
        expected_lines: &[
            r#"object_members_2 ::= "\"a\"" ":" json_integer props_1_rest"#,
            r#"root ::= "{" object_members_2 "}""#,
        ],
        accepts: &[r#"{"a":7}"#],
        rejects: &[r#"{"a": 7}"#, r#"{ "a":7}"#],
    },
];

#[test]
fn golden_rules_and_display_round_trip() {
    for golden in GOLDENS {
        let schema: serde_json::Value =
            serde_json::from_str(golden.schema).expect("golden schemas are valid JSON");
        let grammar = if golden.compact {
            let options = JsonSchemaOptions {
                whitespace: WhitespaceConfig::Compact,
                ..Default::default()
            };
            xg_grammar::json_schema_to_grammar_with_options(&schema, &options)
        } else {
            xg_grammar::json_schema_to_grammar(&schema)
        }
        .unwrap_or_else(|e| panic!("{}: golden schema converts: {e}", golden.name));

        // The keyword's footprint in the display output is pinned exactly.
        let printed = grammar.to_string();
        let lines: Vec<&str> = printed.lines().collect();
        for expected in golden.expected_lines {
            assert!(
                lines.contains(expected),
                "{}: missing golden line\n  {expected}\nin grammar:\n{printed}",
                golden.name
            );
        }
        // Compact mode removes the whitespace rule entirely.
        if golden.compact {
            assert!(
                !printed.contains("json_ws"),
                "{}: compact grammar must not reference json_ws:\n{printed}",
                golden.name
            );
        }

        // Round trip: the printed grammar re-parses, printing is a fixed
        // point, and the language is unchanged on the probe strings.
        let reparsed = xg_grammar::parse_ebnf(&printed, "root").unwrap_or_else(|e| {
            panic!(
                "{}: printed grammar must reparse: {e}\n{printed}",
                golden.name
            )
        });
        // Re-parsing may reorder forward-referenced (e.g. recursive) rules,
        // but the rule set itself must survive the round trip byte for byte.
        let reprinted = reparsed.to_string();
        let mut original_lines: Vec<&str> = printed.lines().collect();
        let mut reprinted_lines: Vec<&str> = reprinted.lines().collect();
        original_lines.sort_unstable();
        reprinted_lines.sort_unstable();
        assert_eq!(
            original_lines, reprinted_lines,
            "{}: round trip changed the rule set",
            golden.name
        );
        let pda = build_pda_default(&grammar);
        let pda_reparsed = build_pda_default(&reparsed);
        for probe in golden.accepts {
            assert!(
                SimpleMatcher::new(&pda).accepts(probe.as_bytes()),
                "{}: probe {probe:?} must be accepted",
                golden.name
            );
            assert!(
                SimpleMatcher::new(&pda_reparsed).accepts(probe.as_bytes()),
                "{}: probe {probe:?} must survive the round trip",
                golden.name
            );
        }
        for probe in golden.rejects {
            assert!(
                !SimpleMatcher::new(&pda).accepts(probe.as_bytes()),
                "{}: probe {probe:?} must be rejected",
                golden.name
            );
            assert!(
                !SimpleMatcher::new(&pda_reparsed).accepts(probe.as_bytes()),
                "{}: probe {probe:?} must stay rejected after the round trip",
                golden.name
            );
        }
    }
}

#[test]
fn custom_separator_config_threads_through_display() {
    let options = JsonSchemaOptions {
        whitespace: WhitespaceConfig::Separators {
            item_separator: ", ".to_string(),
            key_separator: ": ".to_string(),
        },
        ..Default::default()
    };
    let schema: serde_json::Value = serde_json::from_str(
        r#"{"type":"object","properties":{"a":{"type":"integer"},"b":{"type":"boolean"}},"required":["a","b"]}"#,
    )
    .unwrap();
    let grammar = xg_grammar::json_schema_to_grammar_with_options(&schema, &options).unwrap();
    let pda = build_pda_default(&grammar);
    assert!(SimpleMatcher::new(&pda).accepts(br#"{"a": 1, "b": false}"#));
    // Exactly the configured separators — nothing looser, nothing tighter.
    assert!(!SimpleMatcher::new(&pda).accepts(br#"{"a":1, "b": false}"#));
    assert!(!SimpleMatcher::new(&pda).accepts(br#"{"a": 1,"b": false}"#));
}
