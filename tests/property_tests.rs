//! Property-based tests over the core data structures and the equivalence
//! between the optimized engine and the reference executor.

use std::sync::Arc;

use proptest::prelude::*;
use xg_automata::{build_pda, PdaBuildOptions, SimpleMatcher};
use xg_core::{GrammarCompiler, GrammarMatcher, TokenBitmask};
use xg_tokenizer::{test_vocabulary, TokenId};

/// A small pool of grammars with different shapes (flat, recursive,
/// choice-heavy) used by the equivalence properties.
fn grammar_pool() -> Vec<xg_grammar::Grammar> {
    let sources = [
        r#"root ::= "[" [0-9]+ ("," [0-9]+)* "]""#,
        r#"
        root ::= value
        value ::= "(" value ")" | [a-z]+
        "#,
        r#"
        root ::= item (";" item)*
        item ::= key "=" val
        key ::= [a-z]+
        val ::= [0-9]+ | "\"" [a-z]* "\""
        "#,
        r#"root ::= ("ab" | "a" "c" | "abc")+"#,
    ];
    sources
        .iter()
        .map(|s| xg_grammar::parse_ebnf(s, "root").expect("pool grammars parse"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimized PDA (inlining + node merging) recognizes exactly the
    /// same language as the unoptimized one, on arbitrary byte strings.
    #[test]
    fn optimized_and_unoptimized_pda_agree(
        grammar_idx in 0usize..4,
        input in proptest::collection::vec(
            proptest::sample::select(vec![
                b'a', b'b', b'c', b'z', b'0', b'9', b'[', b']', b'(', b')', b',', b';', b'=', b'"',
            ]),
            0..24,
        ),
    ) {
        let grammar = &grammar_pool()[grammar_idx];
        let optimized = build_pda(grammar, &PdaBuildOptions::default());
        let baseline = build_pda(grammar, &PdaBuildOptions::unoptimized());
        let a = SimpleMatcher::new(&optimized).accepts(&input);
        let b = SimpleMatcher::new(&baseline).accepts(&input);
        prop_assert_eq!(a, b, "optimization changed acceptance of {:?}", input);
    }

    /// Every token allowed by the cached mask really is accepted by the
    /// reference executor, and every token it rejects really is invalid
    /// (soundness *and* completeness of the adaptive token mask cache).
    #[test]
    fn masks_agree_with_reference_executor(
        grammar_idx in 0usize..4,
        prefix in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'0', b'[', b'"', b'(', b',', b'=']),
            0..6,
        ),
    ) {
        let vocab = Arc::new(test_vocabulary(600));
        let grammar = &grammar_pool()[grammar_idx];
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_grammar(grammar);
        let pda = build_pda(grammar, &PdaBuildOptions::default());

        // Feed the prefix byte by byte; stop early if it leaves the language.
        let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
        let mut reference = SimpleMatcher::new(&pda);
        let mut alive = true;
        for &b in &prefix {
            let ok_ref = reference.advance_bytes(&[b]);
            let ok_matcher = matcher.accept_bytes(&[b]).is_ok();
            prop_assert_eq!(ok_ref, ok_matcher);
            if !ok_ref {
                alive = false;
                break;
            }
        }
        if alive {
            let mut mask = TokenBitmask::new_all_rejected(vocab.len());
            matcher.fill_next_token_bitmask(&mut mask);
            // Check agreement over a sample of the vocabulary (every 7th
            // token keeps the property fast).
            for (token, bytes) in vocab.iter().step_by(7) {
                if vocab.is_special(token) {
                    continue;
                }
                let reference_ok = reference.clone().advance_bytes(bytes);
                prop_assert_eq!(
                    mask.is_allowed(token),
                    reference_ok,
                    "mask and reference disagree on token {:?} after prefix {:?}",
                    String::from_utf8_lossy(bytes),
                    String::from_utf8_lossy(&prefix)
                );
            }
        }
    }

    /// TokenBitmask set operations behave like sets.
    #[test]
    fn bitmask_set_operations(
        vocab_size in 1usize..600,
        allowed_a in proptest::collection::vec(0u32..600, 0..40),
        allowed_b in proptest::collection::vec(0u32..600, 0..40),
    ) {
        let mut a = TokenBitmask::new_all_rejected(vocab_size);
        let mut b = TokenBitmask::new_all_rejected(vocab_size);
        for &t in allowed_a.iter().filter(|t| (**t as usize) < vocab_size) {
            a.allow(TokenId(t));
        }
        for &t in allowed_b.iter().filter(|t| (**t as usize) < vocab_size) {
            b.allow(TokenId(t));
        }
        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        for t in 0..vocab_size as u32 {
            let t = TokenId(t);
            prop_assert_eq!(union.is_allowed(t), a.is_allowed(t) || b.is_allowed(t));
            prop_assert_eq!(inter.is_allowed(t), a.is_allowed(t) && b.is_allowed(t));
        }
        prop_assert!(union.count_allowed() >= a.count_allowed().max(b.count_allowed()));
        prop_assert!(inter.count_allowed() <= a.count_allowed().min(b.count_allowed()));
    }

    /// EBNF display round-trips: printing a parsed grammar and re-parsing it
    /// yields the same number of rules and the same acceptance behaviour.
    #[test]
    fn ebnf_display_roundtrip(
        grammar_idx in 0usize..4,
        input in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'0', b'[', b']', b'"', b','] ),
            0..12,
        ),
    ) {
        let grammar = &grammar_pool()[grammar_idx];
        let reparsed = xg_grammar::parse_ebnf(&grammar.to_string(), "root").expect("roundtrip");
        prop_assert_eq!(grammar.rules().len(), reparsed.rules().len());
        let a = SimpleMatcher::new(&build_pda(grammar, &PdaBuildOptions::default())).accepts(&input);
        let b = SimpleMatcher::new(&build_pda(&reparsed, &PdaBuildOptions::default())).accepts(&input);
        prop_assert_eq!(a, b);
    }

    /// The persistent-stack matcher accepts a token exactly when the mask it
    /// just produced allows it (internal consistency of the runtime).
    #[test]
    fn accept_token_consistent_with_mask(
        token_ids in proptest::collection::vec(0u32..600, 1..8),
    ) {
        let vocab = Arc::new(test_vocabulary(600));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_builtin_json();
        let mut matcher = GrammarMatcher::new(compiled);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        for raw in token_ids {
            let token = TokenId(raw % vocab.len() as u32);
            matcher.fill_next_token_bitmask(&mut mask);
            let allowed = mask.is_allowed(token);
            let accepted = matcher.accept_token(token).is_ok();
            prop_assert_eq!(allowed, accepted);
            if !accepted {
                break;
            }
        }
    }
}
