//! Integration tests for the structural-tag (tag dispatch) layer: tagged
//! segments must behave exactly like the standalone compiled sub-grammar,
//! free text must stay unconstrained, and rollback must work across mode
//! boundaries.

use std::sync::Arc;

use xg_core::{DispatchMode, GrammarCompiler, GrammarMatcher, StructuralTagMatcher, TokenBitmask};
use xg_datasets::tool_call_tasks;
use xg_grammar::{SegmentExitPolicy, StructuralTag, TagContent, TagSpec};
use xg_tokenizer::{test_vocabulary, TokenId, Vocabulary};

fn token_for(vocab: &Vocabulary, bytes: &[u8]) -> TokenId {
    vocab
        .iter()
        .find(|(_, t)| *t == bytes)
        .map(|(id, _)| id)
        .expect("single-byte token exists")
}

/// Drives a structural-tag matcher over real tool-call transcripts with
/// single-byte tokens and checks, at every in-tag step, that the mask equals
/// the mask of a standalone matcher compiled from the same trigger grammar —
/// i.e. a tagged segment decodes exactly like the sub-grammar on its own.
#[test]
fn tagged_segments_have_mask_parity_with_standalone_grammar() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let mut compared_steps = 0usize;
    let mut segments = 0usize;

    for (i, task) in tool_call_tasks(4, 0xD15).iter().enumerate() {
        let tag = task.structural_tag();
        let compiled = compiler.compile_tag_dispatch(&tag).expect("tags compile");
        let mut matcher = StructuralTagMatcher::new(Arc::clone(&compiled));
        let mut standalone: Option<GrammarMatcher> = None;
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut standalone_mask = TokenBitmask::new_all_rejected(vocab.len());

        for (pos, &b) in task.reference.iter().enumerate() {
            if let DispatchMode::Tagged { trigger } = matcher.mode() {
                let standalone = standalone.get_or_insert_with(|| {
                    GrammarMatcher::new(Arc::clone(compiled.triggers()[trigger].grammar()))
                });
                matcher.fill_next_token_bitmask(&mut mask);
                standalone.fill_next_token_bitmask(&mut standalone_mask);
                assert_eq!(
                    mask, standalone_mask,
                    "task {i}: in-tag mask diverges at byte {pos}"
                );
                // Token-by-token conformance: the reference byte is allowed.
                assert!(
                    mask.is_allowed(token_for(&vocab, &[b])),
                    "task {i}: reference byte {:?} rejected at {pos}",
                    b as char
                );
                standalone.accept_bytes(&[b]).expect("parity with matcher");
                compared_steps += 1;
            }
            let was_tagged = matches!(matcher.mode(), DispatchMode::Tagged { .. });
            matcher
                .accept_token(token_for(&vocab, &[b]))
                .unwrap_or_else(|e| panic!("task {i}: byte {pos} rejected: {e}"));
            // When the segment closes, the standalone matcher must agree that
            // the segment text was a complete sentence of the sub-grammar.
            if was_tagged && matcher.mode() == DispatchMode::FreeText {
                let mut done = standalone.take().expect("segment had a matcher");
                assert!(
                    done.can_terminate(),
                    "task {i}: standalone disagrees on end"
                );
                segments += 1;
            }
        }
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.can_terminate());
        assert_eq!(matcher.stats().tags_opened, matcher.stats().tags_closed);
    }
    assert!(
        segments >= 4,
        "expected several tagged segments, got {segments}"
    );
    assert!(compared_steps > 100, "parity comparison barely ran");
}

/// Free text is fully unconstrained: every non-special token (and EOS) is
/// allowed, whatever prose was emitted before.
#[test]
fn free_text_masks_are_all_allowed() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let task = &tool_call_tasks(1, 3)[0];
    let compiled = compiler
        .compile_tag_dispatch(&task.structural_tag())
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);
    matcher
        .accept_bytes(b"arbitrary prose with < and <f noise")
        .unwrap();
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    matcher.fill_next_token_bitmask(&mut mask);
    for (token, _) in vocab.iter() {
        if vocab.is_special(token) && Some(token) != vocab.eos() {
            assert!(!mask.is_allowed(token));
        } else {
            assert!(
                mask.is_allowed(token),
                "token {token:?} masked in free text"
            );
        }
    }
    assert_eq!(matcher.stats().free_masks, 1);
}

/// Rollback across a tag boundary restores the exact pre-tag state, even
/// when the boundary was crossed mid-token.
#[test]
fn rollback_across_boundaries_with_multibyte_tokens() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let task = &tool_call_tasks(1, 9)[0];
    let compiled = compiler
        .compile_tag_dispatch(&task.structural_tag())
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);
    let mut pre_mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());

    matcher.accept_bytes(b"prose ").unwrap();
    matcher.fill_next_token_bitmask(&mut pre_mask);
    let stats_before = matcher.stats();

    // One unit crosses free text -> trigger -> into the constrained segment.
    let begin = task.functions[0].begin_tag();
    matcher
        .accept_bytes(format!("{begin}{{").as_bytes())
        .unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));

    matcher.rollback(1).unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    matcher.fill_next_token_bitmask(&mut mask);
    assert_eq!(mask, pre_mask, "pre-tag mask must be restored");
    assert_eq!(matcher.stats().free_masks, stats_before.free_masks + 1);

    // The same tag can be re-entered and completed after the rollback.
    matcher.accept_bytes(begin.as_bytes()).unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));
}

/// Runs `bytes` against a plain (no free-text tail) segment matcher the way
/// the dispatching matcher would: bytes advance the segment grammar until the
/// first position where it can terminate (the eager close), after which any
/// continuation is unconstrained prose. Returns `true` if the whole token is
/// acceptable. The matcher is left exactly as it was found.
fn plain_segment_accepts(plain: &mut GrammarMatcher, bytes: &[u8]) -> bool {
    let mut fed = 0usize;
    let mut ok = true;
    for &b in bytes {
        if plain.can_terminate() {
            break; // segment closed mid-token: the rest is free text
        }
        if plain.accept_bytes(&[b]).is_err() {
            ok = false;
            break;
        }
        fed += 1;
    }
    plain.rollback(fed).expect("only fed units are rolled back");
    ok
}

/// The boundary-union mask (segment grammar + free-text continuation tail)
/// must never admit a token the plain sub-grammar + free-text continuation
/// semantics would reject — and near segment ends it must actually admit
/// tokens the plain grammar alone rejects (the end-tag+prose spanning case).
#[test]
fn boundary_union_masks_are_sound_against_plain_grammar() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let mut union_only_admissions = 0usize;
    let mut in_tag_steps = 0usize;

    for (i, task) in tool_call_tasks(3, 0xB0B).iter().enumerate() {
        let tag = task.structural_tag();
        let compiled = compiler.compile_tag_dispatch(&tag).expect("tags compile");
        // The *plain* combined grammars, without the free-text tail.
        let plain_grammars: Vec<_> = tag
            .build_trigger_grammars()
            .expect("tag validates")
            .into_iter()
            .map(|(_, g)| compiler.compile_grammar(&g))
            .collect();
        let mut matcher = StructuralTagMatcher::new(Arc::clone(&compiled));
        let mut plain: Option<GrammarMatcher> = None;
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        for (pos, &b) in task.reference.iter().enumerate() {
            if let DispatchMode::Tagged { trigger } = matcher.mode() {
                let plain = plain.get_or_insert_with(|| {
                    GrammarMatcher::with_max_rollback(
                        Arc::clone(&plain_grammars[trigger]),
                        usize::MAX,
                    )
                });
                matcher.fill_next_token_bitmask(&mut mask);
                in_tag_steps += 1;
                let mut plain_mask = TokenBitmask::new_all_rejected(vocab.len());
                plain.fill_next_token_bitmask(&mut plain_mask);
                for (token, bytes) in vocab.iter() {
                    if vocab.is_special(token) {
                        continue;
                    }
                    if mask.is_allowed(token) {
                        assert!(
                            plain_segment_accepts(plain, bytes),
                            "task {i}: mask admits {:?} at byte {pos}, but the plain \
                             sub-grammar + free continuation rejects it",
                            String::from_utf8_lossy(bytes)
                        );
                        if !plain_mask.is_allowed(token) {
                            union_only_admissions += 1;
                        }
                    } else {
                        // Completeness: a rejection is only fine if the plain
                        // semantics reject too. The free-text tail is byte
                        // level, so there is no UTF-8 carve-out any more —
                        // even post-close bytes that are not valid UTF-8 on
                        // their own must be admitted.
                        assert!(
                            !plain_segment_accepts(plain, bytes),
                            "task {i}: mask rejects {:?} at byte {pos}, which the \
                             plain sub-grammar + free continuation accepts",
                            String::from_utf8_lossy(bytes)
                        );
                    }
                }
                plain.accept_bytes(&[b]).expect("reference byte advances");
            }
            let was_tagged = matches!(matcher.mode(), DispatchMode::Tagged { .. });
            matcher
                .accept_token(token_for(&vocab, &[b]))
                .unwrap_or_else(|e| panic!("task {i}: byte {pos} rejected: {e}"));
            if was_tagged && matcher.mode() == DispatchMode::FreeText {
                plain = None;
            }
        }
    }
    assert!(in_tag_steps > 100, "differential comparison barely ran");
    assert!(
        union_only_admissions > 0,
        "the free-tail union never admitted a boundary-spanning token"
    );
}

/// Regression for the byte-level free-text tail (ROADMAP "non-UTF-8 boundary
/// continuations"): a token that closes a tagged segment and continues with
/// the *leading bytes* of a multi-byte character — invalid UTF-8 on its own,
/// completed by the next token — must be admitted by the boundary-union mask.
/// The old character-level tail conservatively rejected it, costing a token
/// of throughput at every such boundary.
#[test]
fn boundary_spanning_token_with_split_multibyte_char_is_admitted() {
    // 🎉 is F0 9F 8E 89; the BPE-style split puts the first half at the end
    // of the boundary-spanning token and the second half in its own token.
    let spanning: Vec<u8> = b"}</fn> \xF0\x9F".to_vec();
    let emoji_tail: Vec<u8> = b"\x8E\x89".to_vec();
    let mut tokens: Vec<Vec<u8>> = vec![b"</s>".to_vec()];
    tokens.extend((0u16..256).map(|b| vec![b as u8]));
    let spanning_id = TokenId(tokens.len() as u32);
    tokens.push(spanning.clone());
    let tail_id = TokenId(tokens.len() as u32);
    tokens.push(emoji_tail);
    let vocab = Arc::new(Vocabulary::from_tokens(tokens, Some(0)));

    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let tag = xg_grammar::StructuralTag::new(vec![xg_grammar::TagSpec {
        begin: "<fn>".into(),
        content: xg_grammar::TagContent::Ebnf {
            text: r#"root ::= "{" [a-z]+ "}""#.into(),
            root: "root".into(),
        },
        end: "</fn>".into(),
    }]);
    let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);
    matcher.accept_bytes(b"go <fn>{abc").unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));

    // The in-segment mask must admit the boundary-spanning token even though
    // its post-close bytes are not a complete UTF-8 sequence.
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    matcher.fill_next_token_bitmask(&mut mask);
    assert!(
        mask.is_allowed(spanning_id),
        "byte-level tail must admit the split-multibyte boundary token"
    );
    matcher.accept_token(spanning_id).unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    assert_eq!(matcher.stats().tags_closed, 1);

    // The next token completes the emoji in free text; the transcript as a
    // whole is coherent UTF-8 again and can terminate.
    matcher.fill_next_token_bitmask(&mut mask);
    assert!(mask.is_allowed(tail_id));
    matcher.accept_token(tail_id).unwrap();
    assert!(matcher.can_terminate());
}

/// Jump-forward inside a tagged segment is a rollback unit like any other:
/// rolling back across it restores the pre-jump state, and the same jump is
/// forced again.
#[test]
fn rollback_across_jump_forward_in_tagged_segments() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let tag = xg_grammar::StructuralTag::with_triggers(
        vec![xg_grammar::TagSpec {
            begin: "<fn=lookup>".into(),
            content: xg_grammar::TagContent::Ebnf {
                text: r#"root ::= "{\"city\": \"" [a-z]+ "\"}""#.into(),
                root: "root".into(),
            },
            end: "</fn>".into(),
        }],
        vec!["<fn=".into()],
    );
    let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);

    matcher.accept_bytes(b"calling ").unwrap(); // unit 1
    matcher.accept_bytes(b"<fn=").unwrap(); // unit 2: opens the segment
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));

    // The begin-tag remainder plus the content's forced prefix are jumpable.
    let jump = matcher.find_jump_forward_string();
    assert_eq!(
        jump,
        b"lookup>{\"city\": \"".to_vec(),
        "expected the name remainder and forced content prefix"
    );
    matcher.accept_bytes(&jump).unwrap(); // unit 3: the jump-forward unit
    matcher.accept_bytes(b"oslo").unwrap(); // unit 4
    assert_eq!(matcher.rollback_window(), 4);

    // Roll back across the value and the jump-forward unit: back to the
    // fresh segment right after the trigger fired.
    matcher.rollback(2).unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));
    assert_eq!(matcher.find_jump_forward_string(), jump);

    // Roll back across the segment opening too, then replay the whole call.
    matcher.rollback(1).unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    matcher.accept_bytes(b"<fn=").unwrap();
    matcher.accept_bytes(&jump).unwrap();
    matcher.accept_bytes(b"paris\"}</fn> done").unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    assert!(matcher.can_terminate());
    assert_eq!(matcher.stats().tags_closed, 1);
}

/// A `<num>`-triggered tag over `[0-9]+` with an empty end string — the
/// ambiguous-end shape where eager and greedy segment exit genuinely differ.
fn digits_tag(exit: SegmentExitPolicy) -> StructuralTag {
    StructuralTag::new(vec![TagSpec {
        begin: "<num>".into(),
        content: TagContent::Ebnf {
            text: "root ::= [0-9]+".into(),
            root: "root".into(),
        },
        end: String::new(),
    }])
    .with_segment_exit(exit)
}

/// Greedy segment exit keeps the segment open while its strict grammar can
/// keep matching (possessive longest match); the eager default closes at the
/// first point the grammar can terminate.
#[test]
fn greedy_segment_exit_takes_the_longest_match() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));

    // Eager: `[0-9]+` can end after one digit, so the segment closes there.
    let eager = compiler
        .compile_tag_dispatch(&digits_tag(SegmentExitPolicy::Eager))
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(eager);
    matcher.accept_bytes(b"<num>1").unwrap();
    assert_eq!(
        matcher.mode(),
        DispatchMode::FreeText,
        "eager exit closes after the first digit"
    );

    // Greedy: the segment swallows every digit and only closes when a
    // non-digit arrives — which is then reprocessed as free text.
    let greedy = compiler
        .compile_tag_dispatch(&digits_tag(SegmentExitPolicy::Greedy))
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(greedy);
    matcher.accept_bytes(b"<num>1").unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));
    matcher.accept_bytes(b"23").unwrap();
    assert!(
        matches!(matcher.mode(), DispatchMode::Tagged { .. }),
        "greedy exit keeps matching digits"
    );
    matcher.accept_bytes(b" and prose").unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    assert_eq!(matcher.stats().tags_closed, 1);
    assert!(matcher.can_terminate());
}

/// Greedy mask parity: at every in-tag step, every token the mask admits is
/// actually acceptable (accept then roll back), EOS admission agrees with
/// `can_terminate`, and at terminable points the mask equals the free-text
/// mask (the union of continue-the-segment and exit-to-prose outcomes).
#[test]
fn greedy_masks_are_sound_and_free_like_at_exit_points() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler
        .compile_tag_dispatch(&digits_tag(SegmentExitPolicy::Greedy))
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let eos = vocab.eos().unwrap();
    let mut exit_steps = 0usize;
    let mut strict_steps = 0usize;

    for (pos, &b) in b"see <num>2718 tail".iter().enumerate() {
        if matches!(matcher.mode(), DispatchMode::Tagged { .. }) {
            matcher.fill_next_token_bitmask(&mut mask);
            assert_eq!(
                mask.is_allowed(eos),
                matcher.can_terminate(),
                "EOS admission must track can_terminate at byte {pos}"
            );
            if matcher.can_terminate() {
                // Terminable point: the mask is free-text-like — any
                // non-special token either extends the segment or closes it.
                exit_steps += 1;
                for (token, _) in vocab.iter() {
                    if !vocab.is_special(token) {
                        assert!(
                            mask.is_allowed(token),
                            "terminable greedy state must admit token {token:?}"
                        );
                    }
                }
            } else {
                strict_steps += 1;
            }
            // Soundness either way: whatever the mask admits must be
            // acceptable. (The converse is deliberately untested: away from
            // terminable points the strict mask is conservative.)
            for (token, _) in vocab.iter() {
                if vocab.is_special(token) && token != eos {
                    continue;
                }
                if mask.is_allowed(token) {
                    matcher
                        .accept_token(token)
                        .unwrap_or_else(|e| panic!("mask admits {token:?} at {pos}: {e}"));
                    matcher.rollback(1).unwrap();
                }
            }
        }
        matcher
            .accept_token(token_for(&vocab, &[b]))
            .unwrap_or_else(|e| panic!("reference byte {pos} rejected: {e}"));
    }
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    // Stats counters are monotonic across rollbacks, so the probe tokens
    // above inflate tags_closed; the clean-pass count is asserted in
    // `greedy_segment_exit_takes_the_longest_match`.
    assert!(matcher.stats().tags_closed >= 1);
    assert!(exit_steps >= 3, "digits 718 are terminable points");
    assert!(strict_steps >= 1, "the empty segment is not terminable");
}

/// A greedy match that dies *past* the last terminable point rewinds: the
/// segment closes at that point and the overhanging bytes replay as prose,
/// all within a single accept unit.
#[test]
fn greedy_overrun_rewinds_to_the_last_exit_point() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let tag = StructuralTag::new(vec![TagSpec {
        begin: "<t>".into(),
        content: TagContent::Ebnf {
            text: r#"root ::= "ab" ("cd")?"#.into(),
            root: "root".into(),
        },
        end: String::new(),
    }])
    .with_segment_exit(SegmentExitPolicy::Greedy);
    let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);

    // "ab" is terminable, "abc" hopes for "abcd", and `x` kills that hope:
    // the segment must rewind and close after "ab", leaving "cx" as prose.
    matcher.accept_bytes(b"<t>abcx yz").unwrap();
    assert_eq!(matcher.mode(), DispatchMode::FreeText);
    assert_eq!(matcher.stats().tags_closed, 1);
    assert!(matcher.can_terminate());
}

/// EOS closes a greedy segment sitting on a termination point of its
/// grammar, and rollback reopens the segment in place.
#[test]
fn greedy_segment_closes_on_eos_and_rolls_back() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let compiled = compiler
        .compile_tag_dispatch(&digits_tag(SegmentExitPolicy::Greedy))
        .unwrap();
    let mut matcher = StructuralTagMatcher::new(compiled);

    matcher.accept_bytes(b"<num>42").unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));
    assert!(matcher.can_terminate(), "the open segment is terminable");

    matcher.accept_token(vocab.eos().unwrap()).unwrap();
    assert!(matcher.is_terminated());
    assert_eq!(matcher.stats().tags_closed, 1, "EOS closed the segment");

    matcher.rollback(1).unwrap();
    assert!(!matcher.is_terminated());
    assert!(
        matches!(matcher.mode(), DispatchMode::Tagged { .. }),
        "rollback reopens the greedy segment"
    );
    matcher.accept_bytes(b"7").unwrap();
    assert!(matches!(matcher.mode(), DispatchMode::Tagged { .. }));
}

/// With an explicit end tag the grammar is unambiguous about where a segment
/// ends, so greedy and eager accept the same transcript with the same
/// segmentation — greedy merely waits for the next byte to prove the match
/// cannot be extended.
#[test]
fn greedy_with_explicit_end_tag_matches_eager_segmentation() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let spec = TagSpec {
        begin: "<fn>".into(),
        content: TagContent::Ebnf {
            text: r#"root ::= "{" [a-z]+ "}""#.into(),
            root: "root".into(),
        },
        end: "</fn>".into(),
    };

    for exit in [SegmentExitPolicy::Eager, SegmentExitPolicy::Greedy] {
        let tag = StructuralTag::new(vec![spec.clone()]).with_segment_exit(exit);
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = StructuralTagMatcher::new(compiled);
        matcher.accept_bytes(b"go <fn>{abc}</fn> done").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText, "{exit:?}");
        assert_eq!(matcher.stats().tags_closed, 1, "{exit:?}");
        assert!(matcher.can_terminate(), "{exit:?}");
    }
}

/// Structural-tag compilation funnels sub-grammars through the shared
/// compiled-grammar cache: two tasks over the same function registry reuse
/// one compiled trigger grammar.
#[test]
fn tag_dispatch_compilation_is_cached_per_sub_grammar() {
    let vocab = Arc::new(test_vocabulary(800));
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let tasks = tool_call_tasks(3, 0xCAC);
    let first = compiler
        .compile_tag_dispatch(&tasks[0].structural_tag())
        .unwrap();
    let cached = compiler.cached_count();
    let second = compiler
        .compile_tag_dispatch(&tasks[1].structural_tag())
        .unwrap();
    assert_eq!(
        compiler.cached_count(),
        cached,
        "same registry must not recompile"
    );
    assert!(Arc::ptr_eq(
        first.triggers()[0].grammar(),
        second.triggers()[0].grammar()
    ));
    // The whole dispatch build is memoized too (same registry -> same Arc),
    // so per-request compile_structural calls don't redo schema conversion.
    assert!(Arc::ptr_eq(&first, &second));
}
