//! Differential harness for the continuous-batching scheduler: the headline
//! guarantee is that moving a request from the one-shot fixed batch into the
//! continuous scheduler changes *when* its tokens are produced, never *which*
//! tokens. Per-lane outputs are a function of the request alone (constraint,
//! reference, seed) — not of batch composition, arrival order, or which
//! lanes happen to join or leave mid-decode.
//!
//! Three layers of evidence:
//!
//! 1. `run_batch` (now a thin wrapper over the scheduler) is byte-identical
//!    to the retained reference implementation `run_batch_fixed`.
//! 2. Submitting the same requests directly to a [`ContinuousScheduler`] in
//!    several arrival-order permutations yields byte-identical per-lane
//!    outputs every time.
//! 3. A join/leave stress run — more requests than lanes, staggered
//!    submissions, mixed constraints — still reproduces the fixed-batch
//!    outputs exactly, and the streamed byte chunks concatenate to the final
//!    output.

use std::sync::Arc;
use std::time::Duration;

use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_engine::{
    EngineRequest, ExecutionMode, LaneConstraint, ModelProfile, RequestResult, SchedulerConfig,
    ServingEngine, StreamEvent,
};
use xg_tokenizer::test_vocabulary;

/// A mixed workload with per-request seeds that are *not* batch positions:
/// prose, JSON-schema lanes and a structural-tag tool-call lane, the lane
/// mix of an agentic serving batch.
fn mixed_requests(schema_count: usize) -> Vec<EngineRequest> {
    let mut requests = vec![EngineRequest {
        constraint: LaneConstraint::Unconstrained,
        prompt_tokens: 32,
        reference: b"Prose lane: sampled token by token, no constraint.".to_vec(),
        max_tokens: 200,
        seed: 0xA0,
    }];
    for (i, task) in xg_datasets::json_mode_eval_like(schema_count, 0x5EED)
        .into_iter()
        .enumerate()
    {
        requests.push(EngineRequest {
            constraint: LaneConstraint::Grammar(
                xg_grammar::json_schema_to_grammar(&task.schema).expect("schema converts"),
            ),
            prompt_tokens: 100 + i,
            reference: task.reference,
            max_tokens: 300,
            seed: 0xB0 + i as u64,
        });
    }
    let tool_task = &xg_datasets::tool_call_tasks(1, 0x70071)[0];
    requests.push(EngineRequest {
        constraint: LaneConstraint::StructuralTag(tool_task.structural_tag()),
        prompt_tokens: 150,
        reference: tool_task.reference.clone(),
        max_tokens: 400,
        seed: 0xC0,
    });
    requests
}

fn engine(mode: ExecutionMode) -> ServingEngine {
    let vocab = Arc::new(test_vocabulary(800));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(vocab));
    ServingEngine::new(backend, ModelProfile::llama31_8b_h100().scaled(0.02), mode)
        .with_mask_parallelism(2)
}

fn assert_lane_eq(a: &RequestResult, b: &RequestResult, label: &str) {
    assert_eq!(
        String::from_utf8_lossy(&a.output),
        String::from_utf8_lossy(&b.output),
        "{label}: outputs diverge"
    );
    assert_eq!(a.tokens, b.tokens, "{label}: sampled-token counts diverge");
    assert_eq!(
        a.jump_forward_tokens, b.jump_forward_tokens,
        "{label}: jump-forward token counts diverge"
    );
    assert_eq!(
        a.jump_forward_chars, b.jump_forward_chars,
        "{label}: jump-forward char counts diverge"
    );
    assert_eq!(a.completed, b.completed, "{label}: completion diverges");
}

/// `run_batch` is a thin wrapper over the continuous scheduler; in both
/// execution modes it must reproduce the reference fixed loop byte for byte.
#[test]
fn run_batch_matches_fixed_reference_byte_for_byte() {
    let requests = mixed_requests(3);
    for mode in [ExecutionMode::Serial, ExecutionMode::Overlapped] {
        let engine = engine(mode);
        let (fixed, _) = engine.run_batch_fixed(&requests).expect("fixed runs");
        let (scheduled, metrics) = engine.run_batch(&requests).expect("scheduler runs");
        assert_eq!(fixed.len(), scheduled.len());
        for (i, (f, s)) in fixed.iter().zip(&scheduled).enumerate() {
            assert_lane_eq(f, s, &format!("{mode:?} lane {i}"));
            assert!(f.completed, "{mode:?} lane {i} must complete");
        }
        assert!(metrics.total_tokens > 0);
    }
}

/// Submitting the same requests in different arrival orders produces
/// byte-identical per-lane outputs, each equal to the fixed-batch reference.
#[test]
fn arrival_order_permutations_are_byte_identical() {
    let requests = mixed_requests(3);
    let n = requests.len();
    let engine = engine(ExecutionMode::Overlapped);
    let (reference, _) = engine.run_batch_fixed(&requests).expect("fixed runs");

    let orders: Vec<Vec<usize>> = vec![
        (0..n).collect(),                          // submission order
        (0..n).rev().collect(),                    // reversed
        (0..n).map(|i| (i * 3 + 1) % n).collect(), // strided shuffle
    ];
    for order in orders {
        let scheduler = engine.serve(SchedulerConfig {
            max_lanes: n,
            queue_capacity: n,
            admission_workers: 2,
            mask_workers: 2,
        });
        let mut handles = Vec::new();
        for &i in &order {
            handles.push((i, scheduler.submit(requests[i].clone()).expect("submit")));
        }
        for (i, handle) in handles {
            let finished = handle.wait().expect("lane finishes");
            assert_lane_eq(
                &finished.result,
                &reference[i],
                &format!("order {order:?} lane {i}"),
            );
        }
        scheduler.shutdown();
    }
}

/// Join/leave stress: four lanes serve sixteen staggered requests, so lanes
/// continuously retire and admit mid-decode. Every request must reproduce
/// its fixed-batch output, the streamed chunks must concatenate to the final
/// output, and the scheduler must respect its lane cap.
#[test]
fn join_leave_stress_reproduces_fixed_outputs() {
    let mut requests = Vec::new();
    for batch in 0..4 {
        for (i, mut request) in mixed_requests(2).into_iter().enumerate() {
            // Distinct seeds per wave so every lane decodes distinct bytes.
            request.seed ^= (batch as u64) << 32;
            request.max_tokens = 150 + 10 * i;
            requests.push(request);
        }
    }
    let engine = engine(ExecutionMode::Overlapped);
    let (reference, _) = engine.run_batch_fixed(&requests).expect("fixed runs");

    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: 4,
        queue_capacity: requests.len(),
        admission_workers: 2,
        mask_workers: 2,
    });
    let mut handles = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        handles.push((i, scheduler.submit(request.clone()).expect("submit")));
        if i % 3 == 0 {
            std::thread::sleep(Duration::from_millis(2)); // stagger arrivals
        }
    }
    for (i, handle) in handles {
        // Drain the stream by hand: the chunks must concatenate to the
        // final output (streaming loses nothing and reorders nothing).
        let mut streamed = Vec::new();
        let finished = loop {
            match handle.next_event().expect("stream stays open") {
                StreamEvent::Admitted { .. } => {}
                StreamEvent::Bytes(chunk) => streamed.extend_from_slice(&chunk),
                StreamEvent::Finished { result, timing } => break (result, timing),
                StreamEvent::Failed(err) => panic!("lane {i} failed: {err}"),
            }
        };
        let (result, timing) = finished;
        assert_eq!(
            String::from_utf8_lossy(&streamed),
            String::from_utf8_lossy(&result.output),
            "lane {i}: streamed chunks must concatenate to the final output"
        );
        assert_lane_eq(&result, &reference[i], &format!("stress lane {i}"));
        assert!(timing.total_time >= timing.ttft);
    }
    let metrics = scheduler.metrics();
    scheduler.shutdown();
    assert_eq!(metrics.completed as usize, requests.len());
    assert_eq!(metrics.failed, 0);
    assert!(
        metrics.max_concurrent_lanes <= 4,
        "lane cap violated: {}",
        metrics.max_concurrent_lanes
    );
    assert!(
        metrics.max_concurrent_lanes >= 2,
        "stress run never actually batched"
    );
}
