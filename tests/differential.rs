//! Differential test suite: the optimized engine against the naive PDA
//! baseline on randomly generated grammars and inputs, plus printer/parser
//! round-trips over the same random grammars.
//!
//! Unlike `property_tests.rs` (which uses a fixed pool of hand-written
//! grammars), the grammars here are *generated*: random rule bodies built
//! from literals, character classes, sequences, choices, bounded repeats and
//! guarded recursion. Every case drives both engines over the same byte
//! string and demands byte-for-byte agreement on accept/reject.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_automata::{build_pda_default, SimpleMatcher};
use xg_baselines::{ConstrainedBackend, NaivePdaBackend};
use xg_core::{CompilerConfig, GrammarCompiler, GrammarMatcher};
use xg_tokenizer::{test_vocabulary, TokenId, Vocabulary};

/// Characters safe to use inside EBNF literals without escaping, which also
/// all exist as single-byte tokens in the synthetic vocabulary.
const LITERAL_CHARS: &[u8] = b"abcxyz019,;:=()[]{}<>";

/// Character-class templates (source text, member bytes for string
/// generation).
const CLASS_TEMPLATES: &[(&str, &[u8])] = &[
    ("[a-c]", b"abc"),
    ("[0-9]", b"0123456789"),
    ("[xyz]", b"xyz"),
    ("[a-z]", b"abcxyz"),
    ("[0-3]", b"0123"),
];

/// Generates a random EBNF expression of bounded depth, collecting the bytes
/// that can appear in matching strings into `alphabet`.
fn random_expr(
    rng: &mut SmallRng,
    depth: usize,
    helpers: &[&str],
    alphabet: &mut Vec<u8>,
) -> String {
    let variants = if depth == 0 { 2 } else { 6 };
    match rng.gen_range(0..variants) {
        // Literal of 1-3 safe characters.
        0 => {
            let len = rng.gen_range(1..=3);
            let lit: Vec<u8> = (0..len)
                .map(|_| LITERAL_CHARS[rng.gen_range(0..LITERAL_CHARS.len())])
                .collect();
            alphabet.extend_from_slice(&lit);
            format!("\"{}\"", String::from_utf8(lit).unwrap())
        }
        // Character class.
        1 => {
            let (src, members) = CLASS_TEMPLATES[rng.gen_range(0..CLASS_TEMPLATES.len())];
            alphabet.extend_from_slice(members);
            src.to_string()
        }
        // Sequence.
        2 => {
            let n = rng.gen_range(2..=3);
            let items: Vec<String> = (0..n)
                .map(|_| random_expr(rng, depth - 1, helpers, alphabet))
                .collect();
            items.join(" ")
        }
        // Choice (parenthesized so it nests anywhere).
        3 => {
            let n = rng.gen_range(2..=3);
            let items: Vec<String> = (0..n)
                .map(|_| random_expr(rng, depth - 1, helpers, alphabet))
                .collect();
            format!("({})", items.join(" | "))
        }
        // Bounded or unbounded repeat.
        4 => {
            let inner = random_expr(rng, depth - 1, helpers, alphabet);
            let op = ["*", "+", "?", "{1,3}", "{2}"][rng.gen_range(0..5usize)];
            format!("({inner}){op}")
        }
        // Reference to a helper rule (falls back to a literal when there is
        // none).
        _ => {
            if helpers.is_empty() {
                random_expr(rng, 0, helpers, alphabet)
            } else {
                helpers[rng.gen_range(0..helpers.len())].to_string()
            }
        }
    }
}

/// A randomly generated grammar: EBNF source plus the byte alphabet its
/// sentences are drawn from.
struct RandomGrammar {
    source: String,
    alphabet: Vec<u8>,
}

/// Generates a random grammar with a root rule and 0-2 helper rules; helpers
/// may be self-recursive, always guarded by delimiter literals so the
/// recursion is well-founded.
fn random_grammar(rng: &mut SmallRng) -> RandomGrammar {
    let helper_names: &[&str] = match rng.gen_range(0..3) {
        0 => &[],
        1 => &["r1"],
        _ => &["r1", "r2"],
    };
    let mut alphabet = Vec::new();
    let mut source = String::new();
    // Helpers can only reference later helpers (or themselves, guarded), so
    // every name is defined and unguarded cycles are impossible.
    for (i, name) in helper_names.iter().enumerate() {
        let later = &helper_names[i + 1..];
        let body = random_expr(rng, 1, later, &mut alphabet);
        if rng.gen_bool(0.4) {
            // Guarded self-recursion: r ::= "(" r ")" | <body>
            let (open, close) = [("(", ")"), ("[", "]"), ("{", "}")][rng.gen_range(0..3usize)];
            alphabet.extend_from_slice(open.as_bytes());
            alphabet.extend_from_slice(close.as_bytes());
            source.push_str(&format!(
                "{name} ::= \"{open}\" {name} \"{close}\" | {body}\n"
            ));
        } else {
            source.push_str(&format!("{name} ::= {body}\n"));
        }
    }
    let root = random_expr(rng, 2, helper_names, &mut alphabet);
    source.push_str(&format!("root ::= {root}\n"));
    alphabet.sort_unstable();
    alphabet.dedup();
    RandomGrammar { source, alphabet }
}

/// Generates a random input: either uniform noise over the alphabet (mostly
/// rejected) or a guided random walk through the reference PDA (mostly
/// accepted prefixes).
fn random_input(
    rng: &mut SmallRng,
    grammar: &RandomGrammar,
    reference: &SimpleMatcher<'_>,
) -> Vec<u8> {
    if rng.gen_bool(0.5) {
        let len = rng.gen_range(0..=10);
        return (0..len)
            .map(|_| grammar.alphabet[rng.gen_range(0..grammar.alphabet.len())])
            .collect();
    }
    // Guided walk: at each step pick a random alphabet byte that keeps the
    // reference matcher alive.
    let mut walker = reference.clone();
    let mut out = Vec::new();
    for _ in 0..16 {
        if walker.can_terminate() && rng.gen_bool(0.4) {
            break;
        }
        let start = rng.gen_range(0..grammar.alphabet.len());
        let step = (0..grammar.alphabet.len())
            .map(|i| grammar.alphabet[(start + i) % grammar.alphabet.len()])
            .find(|&b| {
                let mut probe = walker.clone();
                probe.advance_bytes(&[b])
            });
        let Some(byte) = step else { break };
        walker.advance_bytes(&[byte]);
        out.push(byte);
    }
    // Occasionally corrupt the tail so near-misses are covered too.
    if !out.is_empty() && rng.gen_bool(0.25) {
        let idx = rng.gen_range(0..out.len());
        out[idx] = grammar.alphabet[rng.gen_range(0..grammar.alphabet.len())];
    }
    out
}

/// Feeds `input` to a fresh naive-PDA session one single-byte token at a
/// time. Returns `(bytes accepted before rejection, final state accepts)`.
fn drive_naive(
    constraint: &Arc<dyn xg_baselines::CompiledConstraint>,
    byte_tokens: &HashMap<u8, TokenId>,
    input: &[u8],
) -> (usize, bool) {
    let mut session = constraint.new_session();
    for (i, b) in input.iter().enumerate() {
        if !session.accept_token(byte_tokens[b]) {
            return (i, false);
        }
    }
    (input.len(), session.can_terminate())
}

fn byte_token_map(vocab: &Vocabulary) -> HashMap<u8, TokenId> {
    let mut map = HashMap::new();
    for (id, bytes) in vocab.iter() {
        if bytes.len() == 1 && !vocab.is_special(id) {
            map.entry(bytes[0]).or_insert(id);
        }
    }
    map
}

#[test]
fn random_grammars_accept_reject_parity_with_naive_pda() {
    const GRAMMARS: usize = 30;
    const INPUTS_PER_GRAMMAR: usize = 8;

    let vocab = Arc::new(test_vocabulary(600));
    let byte_tokens = byte_token_map(&vocab);
    // `accept_bytes` exercises the PDA executor, not the mask cache, so skip
    // mask-cache construction to keep 30 compilations fast in debug builds
    // (mask/cache parity has its own differential tests in property_tests.rs
    // and end_to_end.rs).
    let compiler = GrammarCompiler::with_config(
        Arc::clone(&vocab),
        CompilerConfig {
            enable_mask_cache: false,
            ..CompilerConfig::default()
        },
    );
    let naive = NaivePdaBackend::new(Arc::clone(&vocab));

    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    let mut cases = 0usize;
    for g in 0..GRAMMARS {
        let random = random_grammar(&mut rng);
        let grammar = xg_grammar::parse_ebnf(&random.source, "root")
            .unwrap_or_else(|e| panic!("generated grammar must parse: {e}\n{}", random.source));
        let compiled = compiler.compile_grammar(&grammar);
        let naive_compiled = naive
            .compile(&grammar)
            .expect("naive backend compiles CFGs");
        let reference_pda = build_pda_default(&grammar);
        let reference = SimpleMatcher::new(&reference_pda);

        for i in 0..INPUTS_PER_GRAMMAR {
            let input = random_input(&mut rng, &random, &reference);
            // Optimized engine: byte-level accept.
            let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
            let engine_result = matcher.accept_bytes(&input);
            let engine_accepted_bytes = match &engine_result {
                Ok(()) => input.len(),
                Err(xg_core::AcceptError::BytesRejected { matched_bytes }) => *matched_bytes,
                Err(other) => panic!("unexpected accept_bytes error: {other:?}"),
            };
            let engine_complete = engine_result.is_ok() && matcher.can_terminate();
            // Naive baseline: token-level accept over single-byte tokens.
            let (naive_accepted_bytes, naive_complete) =
                drive_naive(&naive_compiled, &byte_tokens, &input);
            assert_eq!(
                engine_accepted_bytes,
                naive_accepted_bytes,
                "prefix-validity divergence on grammar #{g} input #{i} {:?}\n{}",
                String::from_utf8_lossy(&input),
                random.source
            );
            assert_eq!(
                engine_complete,
                naive_complete,
                "acceptance divergence on grammar #{g} input #{i} {:?}\n{}",
                String::from_utf8_lossy(&input),
                random.source
            );
            cases += 1;
        }
    }
    assert!(
        cases >= 200,
        "differential suite must cover >=200 cases, ran {cases}"
    );
}

#[test]
fn random_grammars_roundtrip_through_display() {
    const GRAMMARS: usize = 40;
    const INPUTS_PER_GRAMMAR: usize = 6;

    let mut rng = SmallRng::seed_from_u64(0x2024);
    for g in 0..GRAMMARS {
        let random = random_grammar(&mut rng);
        let original = xg_grammar::parse_ebnf(&random.source, "root")
            .unwrap_or_else(|e| panic!("generated grammar must parse: {e}\n{}", random.source));
        let printed = original.to_string();
        let reparsed = xg_grammar::parse_ebnf(&printed, "root")
            .unwrap_or_else(|e| panic!("printed grammar must reparse: {e}\n{printed}"));
        // Printing is a fixed point after one round trip.
        assert_eq!(
            printed,
            reparsed.to_string(),
            "printer not idempotent for grammar #{g}"
        );

        // Original and reparsed accept exactly the same sample strings.
        let pda_a = build_pda_default(&original);
        let pda_b = build_pda_default(&reparsed);
        let reference = SimpleMatcher::new(&pda_a);
        for i in 0..INPUTS_PER_GRAMMAR {
            let input = random_input(&mut rng, &random, &reference);
            let a = SimpleMatcher::new(&pda_a).accepts(&input);
            let b = SimpleMatcher::new(&pda_b).accepts(&input);
            assert_eq!(
                a,
                b,
                "display round-trip changed acceptance of input #{i} {:?} for grammar #{g}:\n{}\n-- printed --\n{printed}",
                String::from_utf8_lossy(&input),
                random.source
            );
        }
    }
}
