//! Property tests for the word-level bitmask kernels.
//!
//! The bulk [`TokenBitmask`] operations (`allow_run` / `reject_run` /
//! `allow_many` / `reject_many` / `copy_from` / `union_with` /
//! `intersect_with`) and the batch-transposed [`MaskBatch`] layout are the
//! hot inner loop of mask generation, and every one of them special-cases
//! word boundaries. These tests drive random operation sequences at
//! deliberately non-multiple-of-64 vocabulary sizes against a plain
//! `Vec<bool>` model and demand bit-for-bit agreement — in particular that
//! the padding bits of the last word never leak into `count_allowed`,
//! `allowed_tokens`, or a subsequent `union_with`/`intersect_with`.
//!
//! The final property is the kernel-vs-serial differential of the raw-speed
//! mask path: the default configuration (adaptive mask cache applied through
//! the word kernels) must produce byte-identical masks to the per-token
//! serial configuration (`enable_mask_cache = false`) along random
//! grammar-valid walks.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_core::{CompilerConfig, GrammarCompiler, GrammarMatcher, MaskBatch, TokenBitmask};
use xg_tokenizer::{test_vocabulary, TokenId};

/// Vocabulary sizes straddling word boundaries: one below, on, and above a
/// multiple of 64, plus a tiny single-word mask and two larger odd sizes.
const ODD_SIZES: [usize; 6] = [37, 63, 64, 65, 1000, 4033];

fn tid(t: usize) -> TokenId {
    TokenId(t as u32)
}

/// Applies one random bulk operation to both the kernel bitmask and the
/// `Vec<bool>` model, drawing parameters from `rng` so the two sides see the
/// exact same clamped indices and runs.
fn apply_random_op(rng: &mut SmallRng, mask: &mut TokenBitmask, model: &mut [bool]) {
    let size = model.len();
    match rng.gen_range(0..8u8) {
        0 => {
            mask.allow_all();
            model.fill(true);
        }
        1 => {
            mask.reject_all();
            model.fill(false);
        }
        2 => {
            let t = rng.gen_range(0..size);
            mask.allow(tid(t));
            model[t] = true;
        }
        3 => {
            let t = rng.gen_range(0..size);
            mask.reject(tid(t));
            model[t] = false;
        }
        4 => {
            let start = rng.gen_range(0..size);
            let len = rng.gen_range(0..=size - start);
            mask.allow_run(tid(start), len);
            model[start..start + len].fill(true);
        }
        5 => {
            let start = rng.gen_range(0..size);
            let len = rng.gen_range(0..=size - start);
            mask.reject_run(tid(start), len);
            model[start..start + len].fill(false);
        }
        6 => {
            let tokens: Vec<TokenId> = (0..rng.gen_range(0..24))
                .map(|_| tid(rng.gen_range(0..size)))
                .collect();
            mask.allow_many(&tokens);
            for &t in &tokens {
                model[t.index()] = true;
            }
        }
        _ => {
            let tokens: Vec<TokenId> = (0..rng.gen_range(0..24))
                .map(|_| tid(rng.gen_range(0..size)))
                .collect();
            mask.reject_many(&tokens);
            for &t in &tokens {
                model[t.index()] = false;
            }
        }
    }
}

/// Demands bit-for-bit agreement between kernel mask and model, and that the
/// padding bits of the final partial word stay invisible.
fn assert_matches_model(mask: &TokenBitmask, model: &[bool]) -> Result<(), TestCaseError> {
    let size = model.len();
    prop_assert_eq!(mask.vocab_size(), size);
    for (t, &allowed) in model.iter().enumerate() {
        prop_assert_eq!(
            mask.is_allowed(tid(t)),
            allowed,
            "bit {} diverged from model",
            t
        );
    }
    let model_count = model.iter().filter(|&&b| b).count();
    prop_assert_eq!(
        mask.count_allowed(),
        model_count,
        "padding leaked into count_allowed"
    );
    let listed: Vec<TokenId> = mask.allowed_tokens().collect();
    prop_assert_eq!(listed.len(), model_count);
    prop_assert!(
        listed.iter().all(|t| t.index() < size),
        "allowed_tokens yielded an out-of-vocab id"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bulk-op sequences at non-multiple-of-64 sizes agree with the
    /// `Vec<bool>` model bit for bit after every single operation.
    #[test]
    fn bulk_ops_match_boolean_model(
        size_idx in 0usize..6,
        seed in 0u64..100_000,
    ) {
        let size = ODD_SIZES[size_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut mask = TokenBitmask::new_all_rejected(size);
        let mut model = vec![false; size];
        for _ in 0..32 {
            apply_random_op(&mut rng, &mut mask, &mut model);
            assert_matches_model(&mask, &model)?;
        }
    }

    /// `union_with` / `intersect_with` / `copy_from` between two masks built
    /// from independent op sequences match the boolean model, including at
    /// partial final words.
    #[test]
    fn set_ops_match_boolean_model(
        size_idx in 0usize..6,
        seed in 0u64..100_000,
        which in 0u8..3,
    ) {
        let size = ODD_SIZES[size_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = TokenBitmask::new_all_rejected(size);
        let mut model_a = vec![false; size];
        let mut b = TokenBitmask::new_all_allowed(size);
        let mut model_b = vec![true; size];
        for _ in 0..12 {
            apply_random_op(&mut rng, &mut a, &mut model_a);
            apply_random_op(&mut rng, &mut b, &mut model_b);
        }
        match which {
            0 => {
                a.union_with(&b);
                for (ma, mb) in model_a.iter_mut().zip(&model_b) {
                    *ma = *ma || *mb;
                }
            }
            1 => {
                a.intersect_with(&b);
                for (ma, mb) in model_a.iter_mut().zip(&model_b) {
                    *ma = *ma && *mb;
                }
            }
            _ => {
                a.copy_from(&b);
                model_a.copy_from_slice(&model_b);
            }
        }
        assert_matches_model(&a, &model_a)?;
    }

    /// The batch-transposed layout round-trips: broadcasting a base, editing
    /// individual lanes, and extracting each lane back out matches a
    /// per-lane `TokenBitmask` model at odd vocabulary sizes.
    #[test]
    fn mask_batch_round_trips_lanes(
        size_idx in 0usize..6,
        lanes in 1usize..6,
        seed in 0u64..100_000,
    ) {
        let size = ODD_SIZES[size_idx];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut base = TokenBitmask::new_all_rejected(size);
        let mut base_model = vec![false; size];
        for _ in 0..6 {
            apply_random_op(&mut rng, &mut base, &mut base_model);
        }
        let mut batch = MaskBatch::new(lanes, size);
        batch.broadcast(&base);
        let mut models: Vec<TokenBitmask> = (0..lanes).map(|_| base.clone()).collect();
        for _ in 0..32 {
            let lane = rng.gen_range(0..lanes);
            let token = tid(rng.gen_range(0..size));
            if rng.gen_range(0..2) == 0 {
                batch.allow(lane, token);
                models[lane].allow(token);
            } else {
                batch.reject(lane, token);
                models[lane].reject(token);
            }
        }
        for (lane, model) in models.iter().enumerate() {
            let extracted = batch.extract_lane(lane);
            prop_assert_eq!(&extracted, model, "lane {} diverged", lane);
            for t in 0..size {
                prop_assert_eq!(
                    batch.is_allowed(lane, tid(t)),
                    model.is_allowed(tid(t)),
                    "lane {} bit {} diverged", lane, t
                );
            }
        }
    }
}

/// Grammars with different mask-cache profiles (accept-heavy, reject-heavy,
/// recursive) for the kernel-vs-serial differential.
fn grammar_pool() -> Vec<xg_grammar::Grammar> {
    [
        r#"root ::= "[" [0-9]+ ("," [0-9]+)* "]""#,
        r#"
        root ::= value
        value ::= "(" value ")" | [a-z]+
        "#,
        r#"root ::= ("ab" | "a" "c" | "abc")+"#,
        r#"
        root ::= pair (";" pair)*
        pair ::= [a-z]+ "=" ([0-9]+ | "\"" [a-z]* "\"")
        "#,
    ]
    .iter()
    .map(|s| xg_grammar::parse_ebnf(s, "root").expect("pool grammars parse"))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The raw-speed differential: along any grammar-valid token walk, the
    /// word-kernel fill (default config, adaptive mask cache applied through
    /// bulk kernels) is bit-identical to the per-token serial fill
    /// (`enable_mask_cache = false`, every token matched individually).
    #[test]
    fn kernel_fill_matches_serial_fill(
        grammar_idx in 0usize..4,
        walk_seed in 0u64..10_000,
    ) {
        let vocab = Arc::new(test_vocabulary(700));
        let grammar = &grammar_pool()[grammar_idx];
        let kernel_compiled = GrammarCompiler::new(Arc::clone(&vocab)).compile_grammar(grammar);
        let serial_compiled = GrammarCompiler::with_config(
            Arc::clone(&vocab),
            CompilerConfig {
                enable_mask_cache: false,
                ..CompilerConfig::default()
            },
        )
        .compile_grammar(grammar);
        let mut kernel = GrammarMatcher::new(kernel_compiled);
        let mut serial = GrammarMatcher::new(serial_compiled);
        let mut kernel_mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut serial_mask = TokenBitmask::new_all_rejected(vocab.len());

        for step in 0..16 {
            kernel.fill_next_token_bitmask(&mut kernel_mask);
            serial.fill_next_token_bitmask(&mut serial_mask);
            prop_assert_eq!(
                &kernel_mask, &serial_mask,
                "kernel and serial masks diverged at step {}", step
            );
            // Deterministically pick an allowed non-special token from the
            // walk seed; stop when the grammar can only terminate.
            let allowed: Vec<TokenId> = kernel_mask
                .allowed_tokens()
                .filter(|&t| !vocab.is_special(t))
                .collect();
            if allowed.is_empty() {
                break;
            }
            let pick = allowed[(walk_seed as usize + step * 7) % allowed.len()];
            prop_assert_eq!(
                kernel.accept_token(pick),
                serial.accept_token(pick),
                "acceptance diverged for token {:?}", pick
            );
            if kernel.is_terminated() {
                break;
            }
        }
    }
}
