//! Differential tests for the grammar static-analysis pass.
//!
//! The analyzer computes productivity and nullability as bottom-up
//! fixpoints; these tests check it against an independent *top-down bounded
//! derivation* oracle on small random grammars, sweep the whole JSON-Schema
//! corpus for false-positive errors, and drive a strict-mode lint rejection
//! through the continuous scheduler to prove it fails the stream at
//! admission instead of wedging a lane.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_grammar::{
    analyze, CharClass, CharRange, DiagnosticCode, Grammar, GrammarBuilder, GrammarExpr, RuleId,
    Severity,
};

// ---------------------------------------------------------------------------
// Random grammar generation (builder-acceptable shapes only).
// ---------------------------------------------------------------------------

/// Generates a random expression over `rules` rule ids with bounded nesting.
/// Only shapes the builder accepts: repetition bounds are ordered and
/// choices are non-empty. Empty character classes are deliberately included
/// so productivity has interesting false cases.
fn random_expr(rng: &mut SmallRng, rules: u32, depth: usize) -> GrammarExpr {
    let leaf = depth == 0 || rng.gen_range(0..10u32) < 4;
    if leaf {
        match rng.gen_range(0..5u32) {
            0 => GrammarExpr::Empty,
            1 => GrammarExpr::literal(["a", "b", "xy"][rng.gen_range(0..3usize)]),
            2 => GrammarExpr::RuleRef(RuleId(rng.gen_range(0..rules))),
            3 => GrammarExpr::CharClass(CharClass::new(vec![CharRange::new('a', 'c')])),
            _ => GrammarExpr::CharClass(CharClass::new(vec![])),
        }
    } else {
        match rng.gen_range(0..3u32) {
            0 => GrammarExpr::Sequence(
                (0..rng.gen_range(1..4usize))
                    .map(|_| random_expr(rng, rules, depth - 1))
                    .collect(),
            ),
            1 => GrammarExpr::Choice(
                (0..rng.gen_range(1..4usize))
                    .map(|_| random_expr(rng, rules, depth - 1))
                    .collect(),
            ),
            _ => {
                let min = rng.gen_range(0..3u32);
                let max = if rng.gen_bool(0.5) {
                    None
                } else {
                    Some(min + rng.gen_range(0..3u32))
                };
                GrammarExpr::Repeat {
                    expr: Box::new(random_expr(rng, rules, depth - 1)),
                    min,
                    max,
                }
            }
        }
    }
}

fn random_grammar(seed: u64) -> Grammar {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rules = rng.gen_range(1..5u32);
    let mut builder = GrammarBuilder::new();
    let names: Vec<String> = (0..rules).map(|i| format!("r{i}")).collect();
    for name in &names {
        builder.declare(name);
    }
    for (i, name) in names.iter().enumerate() {
        let body = random_expr(&mut rng, rules, 3);
        let id = builder.rule_id(name).expect("declared");
        assert_eq!(id.index(), i);
        builder.set_body(id, body);
    }
    builder.build("r0").expect("generated shapes are buildable")
}

// ---------------------------------------------------------------------------
// Independent oracle: top-down derivation bounded by a rule-expansion budget.
// The analyzer's fixpoints converge in at most `rules` iterations, so a
// budget of `rules + 1` rule expansions decides both properties exactly.
// ---------------------------------------------------------------------------

fn oracle_productive(grammar: &Grammar, expr: &GrammarExpr, budget: usize) -> bool {
    match expr {
        GrammarExpr::Empty | GrammarExpr::Literal(_) => true,
        GrammarExpr::CharClass(cc) => !cc.is_empty(),
        GrammarExpr::ByteClass(bc) => !bc.is_empty(),
        GrammarExpr::RuleRef(id) => {
            budget > 0 && oracle_productive(grammar, &grammar.rule(*id).body, budget - 1)
        }
        GrammarExpr::Sequence(items) => items.iter().all(|e| oracle_productive(grammar, e, budget)),
        GrammarExpr::Choice(items) => items.iter().any(|e| oracle_productive(grammar, e, budget)),
        GrammarExpr::Repeat { expr, min, max } => {
            if max.is_some_and(|max| *min > max) {
                return false;
            }
            *min == 0 || oracle_productive(grammar, expr, budget)
        }
    }
}

fn oracle_nullable(grammar: &Grammar, expr: &GrammarExpr, budget: usize) -> bool {
    match expr {
        GrammarExpr::Empty => true,
        GrammarExpr::Literal(bytes) => bytes.is_empty(),
        GrammarExpr::CharClass(_) | GrammarExpr::ByteClass(_) => false,
        GrammarExpr::RuleRef(id) => {
            budget > 0 && oracle_nullable(grammar, &grammar.rule(*id).body, budget - 1)
        }
        GrammarExpr::Sequence(items) => items.iter().all(|e| oracle_nullable(grammar, e, budget)),
        GrammarExpr::Choice(items) => items.iter().any(|e| oracle_nullable(grammar, e, budget)),
        GrammarExpr::Repeat { expr, min, max } => {
            if max.is_some_and(|max| *min > max) {
                return false;
            }
            *min == 0 || oracle_nullable(grammar, expr, budget)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer's bottom-up productivity and nullability fixpoints agree
    /// with top-down bounded derivation on random small grammars.
    #[test]
    fn fixpoints_agree_with_bounded_derivation(seed in 0u64..1_000_000) {
        let grammar = random_grammar(seed);
        let analysis = analyze(&grammar);
        let budget = grammar.len() + 1;
        for (i, rule) in grammar.rules().iter().enumerate() {
            prop_assert_eq!(
                analysis.productive[i],
                oracle_productive(&grammar, &rule.body, budget),
                "productivity of `{}` (seed {}) disagrees with the oracle",
                &rule.name,
                seed
            );
            prop_assert_eq!(
                analysis.nullable[i],
                oracle_nullable(&grammar, &rule.body, budget),
                "nullability of `{}` (seed {}) disagrees with the oracle",
                &rule.name,
                seed
            );
        }
        // The unsatisfiable-grammar error is exactly "the root is
        // unproductive" (and it is the root's only unproductivity report).
        let unsat = analysis
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::UnsatisfiableGrammar);
        prop_assert_eq!(
            unsat,
            !analysis.productive[grammar.root().index()],
            "unsatisfiable-grammar mismatch for seed {}",
            seed
        );
    }

    /// Rules the analyzer marks unreachable never influence satisfiability:
    /// deleting the diagnostic's target must leave the root's verdict alone.
    #[test]
    fn unreachable_rules_do_not_affect_the_root_verdict(seed in 0u64..1_000_000) {
        let grammar = random_grammar(seed);
        let analysis = analyze(&grammar);
        for diag in &analysis.diagnostics {
            if diag.code != DiagnosticCode::UnreachableRule {
                continue;
            }
            let dead = diag.rule.expect("unreachable-rule anchors to a rule");
            // Re-point the dead rule at Empty: the root's productivity and
            // nullability must not change.
            let mut builder = GrammarBuilder::new();
            for rule in grammar.rules() {
                builder.declare(&rule.name);
            }
            for (i, rule) in grammar.rules().iter().enumerate() {
                let id = RuleId(i as u32);
                let body = if id == dead {
                    GrammarExpr::Empty
                } else {
                    rule.body.clone()
                };
                builder.set_body(id, body);
            }
            let pruned = builder
                .build(&grammar.rule(grammar.root()).name)
                .expect("pruned grammar builds");
            let pruned_analysis = analyze(&pruned);
            let root = grammar.root().index();
            prop_assert_eq!(
                analysis.productive[root], pruned_analysis.productive[root],
                "pruning unreachable `{}` changed the root verdict (seed {})",
                &grammar.rule(dead).name, seed
            );
            prop_assert_eq!(analysis.nullable[root], pruned_analysis.nullable[root]);
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus sweeps.
// ---------------------------------------------------------------------------

/// Every grammar the JSON-Schema corpus produces must lint clean of errors:
/// the converter never emits unsatisfiable or infinitely-nullable structure.
#[test]
fn schema_corpus_grammars_lint_clean() {
    let cases = xg_datasets::schema_corpus(204, 0x5C0);
    for case in &cases {
        let grammar =
            xg_grammar::json_schema_to_grammar(&case.schema).expect("corpus schemas convert");
        let analysis = analyze(&grammar);
        assert!(
            !analysis.has_errors(),
            "feature `{}` produced lint errors: {:?}",
            case.feature,
            analysis.errors().collect::<Vec<_>>()
        );
        // The only expected warnings are unreachable helper rules from the
        // converter's shared prelude.
        for diag in &analysis.diagnostics {
            assert_eq!(
                diag.code,
                DiagnosticCode::UnreachableRule,
                "feature `{}` produced an unexpected warning: {diag}",
                case.feature
            );
        }
    }
}

/// Every pathological-corpus entry is flagged with its expected code, with
/// the expected severity.
#[test]
fn pathological_corpus_is_fully_flagged() {
    for case in xg_datasets::pathological_corpus() {
        let analysis = analyze(&case.grammar);
        let hit = analysis
            .diagnostics
            .iter()
            .find(|d| d.code.as_str() == case.expected_code)
            .unwrap_or_else(|| panic!("case `{}` missing `{}`", case.name, case.expected_code));
        assert_eq!(hit.severity == Severity::Error, case.expected_error);
    }
}

// ---------------------------------------------------------------------------
// Strict-mode admission through the continuous scheduler.
// ---------------------------------------------------------------------------

/// A strict-mode backend turns a lint rejection into `StreamEvent::Failed`
/// at admission: the handle's `wait()` errors, the failure is counted, and a
/// healthy lane submitted alongside still completes — nothing wedges.
#[test]
fn strict_lint_rejection_fails_the_stream_at_admission() {
    use xg_baselines::{ConstrainedBackend, XGrammarBackend};
    use xg_core::{CompilerConfig, LintMode};
    use xg_engine::{
        EngineRequest, ExecutionMode, LaneConstraint, ModelProfile, SchedulerConfig, ServingEngine,
    };
    use xg_tokenizer::test_vocabulary;

    let vocab = Arc::new(test_vocabulary(2000));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::with_config(
        Arc::clone(&vocab),
        CompilerConfig::default().with_lint_mode(LintMode::Strict),
    ));
    let engine = ServingEngine::new(
        backend,
        ModelProfile::llama31_8b_h100().scaled(0.01),
        ExecutionMode::Overlapped,
    );
    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: 2,
        queue_capacity: 4,
        admission_workers: 1,
        mask_workers: 0,
    });

    let unsatisfiable = EngineRequest {
        constraint: LaneConstraint::Grammar(
            xg_grammar::parse_ebnf(r#"root ::= "x" root"#, "root").unwrap(),
        ),
        prompt_tokens: 8,
        reference: b"xxx".to_vec(),
        max_tokens: 8,
        seed: 7,
    };
    let healthy = EngineRequest {
        constraint: LaneConstraint::Grammar(
            xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap(),
        ),
        prompt_tokens: 8,
        reference: b"[42]".to_vec(),
        max_tokens: 16,
        seed: 8,
    };

    let bad = scheduler.submit(unsatisfiable).expect("submit");
    let good = scheduler.submit(healthy).expect("submit");

    let bad_err = bad
        .wait()
        .expect_err("strict lint failure surfaces on wait");
    assert!(
        bad_err.to_string().contains("unsatisfiable-grammar"),
        "unexpected admission error: {bad_err}"
    );
    let good_result = good.wait().expect("healthy lane completes");
    assert_eq!(good_result.result.output, b"[42]");

    let metrics = scheduler.metrics();
    scheduler.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.admitted, 1);
}
