//! Dynamic tool registries: incremental dispatch updates, the budgeted
//! dispatch cache, and pool coherence across mutations.
//!
//! Four layers of evidence:
//!
//! 1. Churning 1k distinct registries through a compiler keeps both the
//!    dispatch cache and the grammar cache inside their byte budgets (the
//!    former `tag_dispatch_memo` grew without bound).
//! 2. A tool removed by a [`DispatchDelta`] does not stay pinned: once the
//!    base dispatch is evicted and dropped, the removed trigger's
//!    [`MatcherPool`](xg_core::MatcherPool) is freed, while retained
//!    triggers share their pools with the updated dispatch.
//! 3. The strict-lint dead-trigger check runs on the delta path too —
//!    exactly on the recompiled trigger, with untouched triggers reused
//!    without recompilation.
//! 4. Property: interleaving registry mutations with decodes on live
//!    [`ContinuousScheduler`](xg_engine::ContinuousScheduler) lanes yields
//!    outputs byte-identical to compiling each request's catalog fresh.

use std::sync::Arc;

use proptest::prelude::*;
use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_core::{
    CompilerConfig, GrammarCache, GrammarCacheConfig, GrammarCompiler, LintMode,
    TagDispatchCacheConfig,
};
use xg_datasets::{agent_catalog, agent_tag_spec, agent_tool, TOOL_CALL_END};
use xg_engine::{
    EngineRequest, ExecutionMode, LaneConstraint, ModelProfile, SchedulerConfig, ServingEngine,
};
use xg_grammar::{DispatchDelta, TagContent, TagSpec};
use xg_tokenizer::test_vocabulary;

#[test]
fn churn_of_1k_distinct_registries_keeps_memory_flat() {
    let vocab = Arc::new(test_vocabulary(512));
    // Size the budgets from one real compiled registry, so the test tracks
    // the true artifact sizes instead of hard-coding byte counts.
    let probe = GrammarCompiler::new(Arc::clone(&vocab))
        .compile_tag_dispatch(&agent_catalog(&[agent_tool(0)]))
        .expect("probe registry compiles")
        .memory_bytes()
        .max(1);
    let budget = 8 * probe;
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig {
        max_bytes: budget,
        max_entries: usize::MAX,
    }));
    let compiler = GrammarCompiler::with_cache(
        Arc::clone(&vocab),
        CompilerConfig::default(),
        Arc::clone(&cache),
    )
    .with_dispatch_cache_config(TagDispatchCacheConfig {
        max_bytes: budget,
        max_entries: usize::MAX,
    });
    for i in 0..1000usize {
        compiler
            .compile_tag_dispatch(&agent_catalog(&[agent_tool(i)]))
            .expect("churn registry compiles");
        if i % 97 == 0 {
            // Bounded throughout the churn, not just at the end.
            assert!(compiler.dispatch_cache().stats().current_bytes <= budget as u64);
        }
    }
    let dispatch = compiler.dispatch_cache().stats();
    assert!(
        dispatch.current_bytes <= budget as u64,
        "dispatch cache exceeded its budget: {dispatch:?}"
    );
    assert!(
        dispatch.evictions >= 900,
        "1k distinct registries through an ~8-entry cache must evict: {dispatch:?}"
    );
    assert!(dispatch.entries <= 64, "entries unbounded: {dispatch:?}");
    let grammars = cache.stats();
    assert!(
        grammars.current_bytes <= budget as u64,
        "grammar cache exceeded its budget: {grammars:?}"
    );
    assert!(grammars.evictions > 0);
}

#[test]
fn removed_tools_matcher_pool_is_not_pinned() {
    let vocab = Arc::new(test_vocabulary(512));
    // One dispatch-cache slot: the updated registry displaces its base.
    let compiler = GrammarCompiler::new(Arc::clone(&vocab)).with_dispatch_cache_config(
        TagDispatchCacheConfig {
            max_bytes: usize::MAX,
            max_entries: 1,
        },
    );
    let keep = agent_tool(1);
    let retired = agent_tool(2);
    let base = compiler
        .compile_tag_dispatch(&agent_catalog(&[keep.clone(), retired.clone()]))
        .expect("base registry compiles");
    let pool_of = |dispatch: &xg_core::CompiledTagDispatch, begin: &str| {
        Arc::downgrade(
            dispatch
                .triggers()
                .iter()
                .find(|t| t.trigger() == begin.as_bytes())
                .expect("trigger present")
                .matcher_pool(),
        )
    };
    let keep_pool = pool_of(&base, &keep.begin_tag());
    let retired_pool = pool_of(&base, &retired.begin_tag());
    let updated = compiler
        .update_tag_dispatch(
            &base,
            &DispatchDelta::RemoveTag {
                begin: retired.begin_tag(),
            },
        )
        .expect("removal applies");
    assert_eq!(updated.triggers().len(), 1);
    drop(base); // the cache already evicted it; drop the last strong ref
    assert!(
        retired_pool.upgrade().is_none(),
        "the removed tool's matcher pool must not stay pinned"
    );
    // The retained trigger was reused wholesale: same pool, not a recompile.
    let kept_alive = keep_pool
        .upgrade()
        .expect("retained tool's pool stays alive through the update");
    assert!(Arc::ptr_eq(
        &kept_alive,
        updated.triggers()[0].matcher_pool()
    ));
}

#[test]
fn delta_path_lints_and_recompiles_only_the_touched_trigger() {
    let vocab = Arc::new(test_vocabulary(512));
    let compiler = GrammarCompiler::with_config(
        Arc::clone(&vocab),
        CompilerConfig {
            lint_mode: LintMode::Strict,
            ..CompilerConfig::default()
        },
    );
    let base_catalog = agent_catalog(&(0..4).map(agent_tool).collect::<Vec<_>>());
    let base = compiler
        .compile_tag_dispatch(&base_catalog)
        .expect("clean registry passes strict lint");
    // A dead added trigger (its segment grammar never terminates) must be
    // rejected by the incremental path exactly like a full compile would.
    let dead = TagSpec {
        begin: "<dead>".into(),
        content: TagContent::Ebnf {
            text: r#"root ::= "x" root"#.into(),
            root: "root".into(),
        },
        end: "</dead>".into(),
    };
    let err = compiler
        .update_tag_dispatch(&base, &DispatchDelta::AddTag(dead))
        .expect_err("dead trigger must fail strict lint on the delta path");
    assert!(
        err.to_string().contains("<dead>"),
        "lint error names the dead trigger: {err}"
    );
    // A healthy addition recompiles exactly one segment grammar; the four
    // untouched triggers are reused without touching the grammar cache.
    let misses_before = compiler.local_cache_stats().misses;
    let updated = compiler
        .update_tag_dispatch(
            &base,
            &DispatchDelta::AddTag(agent_tag_spec(&agent_tool(50))),
        )
        .expect("healthy addition applies");
    assert_eq!(updated.triggers().len(), 5);
    assert_eq!(
        compiler.local_cache_stats().misses - misses_before,
        1,
        "an AddTag delta must compile only the added trigger's grammar"
    );
}

/// Builds a reference transcript calling `tool`: prose, one compact-JSON
/// call, prose.
fn call_reference(tool: &xg_datasets::ToolFunction, value: usize) -> Vec<u8> {
    format!(
        "ok {}{{\"arg_{}\":{value}}}{} done",
        tool.begin_tag(),
        &tool.name[5..],
        TOOL_CALL_END
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaved registry mutations and decodes on a live scheduler: each
    /// request decodes under the catalog in force at submission, and its
    /// output is byte-identical to a fresh engine compiling that catalog
    /// from scratch. Registry history must not leak into decode bytes.
    #[test]
    fn live_scheduler_decodes_match_fresh_compiles_under_mutation(
        ops in proptest::collection::vec(0u8..4, 1..5),
        seed in 0u64..1_000,
    ) {
        let vocab = Arc::new(test_vocabulary(600));
        let backend: Arc<dyn ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let profile = ModelProfile::llama31_8b_h100().scaled(0.02);
        let engine = ServingEngine::new(
            Arc::clone(&backend),
            profile.clone(),
            ExecutionMode::Overlapped,
        );
        let scheduler = engine.serve(SchedulerConfig {
            max_lanes: 4,
            queue_capacity: 16,
            admission_workers: 2,
            mask_workers: 0, // auto
        });
        let mut tools = vec![agent_tool(0), agent_tool(1)];
        let mut catalog = agent_catalog(&tools);
        let mut next_fresh = 100usize;
        let mut in_flight = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            // Mutate the live registry between submissions: adds and (when
            // more than one tool is live) removals, applied through the
            // engine's incremental path while earlier lanes still decode.
            match op % 4 {
                0 => {
                    let tool = agent_tool(next_fresh);
                    next_fresh += 1;
                    catalog = engine
                        .update_tool_registry(
                            &catalog,
                            &DispatchDelta::AddTag(agent_tag_spec(&tool)),
                        )
                        .expect("add applies");
                    tools.push(tool);
                }
                1 if tools.len() > 1 => {
                    let victim = tools.remove((seed as usize + i) % tools.len());
                    catalog = engine
                        .update_tool_registry(
                            &catalog,
                            &DispatchDelta::RemoveTag { begin: victim.begin_tag() },
                        )
                        .expect("remove applies");
                }
                _ => {}
            }
            let callee = &tools[(seed as usize).wrapping_add(i) % tools.len()];
            let request = EngineRequest {
                constraint: LaneConstraint::StructuralTag(catalog.clone()),
                prompt_tokens: 16 + i,
                reference: call_reference(callee, i),
                max_tokens: 150,
                seed: seed ^ (i as u64),
            };
            let handle = scheduler.submit(request.clone()).expect("submit");
            in_flight.push((request, handle));
        }
        let mut finished = Vec::new();
        for (request, handle) in in_flight {
            let result = handle.wait().expect("lane finishes");
            finished.push((request, result));
        }
        scheduler.shutdown();
        for (request, live) in finished {
            // Fresh engine, fresh backend: compiles the request's catalog
            // from its description alone, no mutation history.
            let fresh_backend: Arc<dyn ConstrainedBackend> =
                Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
            let fresh_engine =
                ServingEngine::new(fresh_backend, profile.clone(), ExecutionMode::Serial);
            let (fresh, _) = fresh_engine
                .run_batch_fixed(std::slice::from_ref(&request))
                .expect("fresh engine decodes");
            prop_assert_eq!(
                String::from_utf8_lossy(&live.result.output),
                String::from_utf8_lossy(&fresh[0].output),
                "live mutated-registry decode diverged from the fresh compile"
            );
        }
    }
}
