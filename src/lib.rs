//! Workspace root crate: re-exports the facade and hosts the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! Use the [`xgrammar`] facade crate (or the individual `xg-*` crates) from
//! downstream code; this crate only exists to give the repository-level
//! examples and integration tests a home.

#![warn(missing_docs)]

pub use xgrammar;
