//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the APIs the code depends on:
//! [`Rng::gen_range`] over half-open integer ranges, [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`]. The generator
//! is xoshiro256++, which is close to what `SmallRng` uses upstream on 64-bit
//! targets; statistical quality is far beyond what the synthetic dataset and
//! simulated-LLM use cases here require.

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Debiased multiply-shift would be overkill here; a 128-bit
                // modulo over a 64-bit draw keeps bias under 2^-64.
                let draw = rng.next_u64() as u128 % span;
                // Wrapping add: sign extension makes `start as u128` huge for
                // negative signed starts; truncation back to $t is exact.
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut x: u64) -> Self {
            // splitmix64 expansion of the seed, as recommended by the
            // xoshiro authors (and used by rand's seeding path).
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(0..=5u8);
            assert!(v <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
