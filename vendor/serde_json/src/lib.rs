//! Offline shim for the subset of `serde_json` this workspace uses: the
//! [`Value`] tree (defined in the vendored `serde` crate and re-exported
//! here), text parsing/printing, and the [`json!`] literal macro.
//!
//! Behavioural notes relative to real serde_json:
//!
//! * [`Map`] preserves insertion order (like the `preserve_order` feature);
//!   the JSON-Schema→grammar conversion and the dataset generators rely on
//!   object key order being deterministic and source-faithful.
//! * Compact output matches serde_json's escaping rules, so byte-for-byte
//!   round-trips hold for everything the test-suite serializes.

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

pub use serde::value::ValueIndex;
pub use serde::{Deserialize, Error, Map, Number, Serialize, Value};

/// Parsing / serialization result, mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a JSON document from a string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = serde::value::Parser::new(input).parse_document()?;
    T::from_value(&value)
}

/// Parses a JSON document from bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(input)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value to a [`Value`] (used by [`json!`]).
pub fn to_value<T: Serialize>(value: T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-like literal, mirroring `serde_json::json!`.
///
/// Supports `null`/`true`/`false`, numbers, strings, arrays, objects with
/// string-literal keys, and arbitrary serializable Rust expressions in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_internal_array!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal_object!(map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value($other) };
}

/// Internal: accumulates array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // Finished.
    ([ $($elems:expr),* ]) => { vec![ $($elems),* ] };
    ([ $($elems:expr),* ] ,) => { vec![ $($elems),* ] };
    // Next element is a composite literal — match it whole, then recurse.
    ([ $($elems:expr),* ] null $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!(null) ] $($rest)*)
    };
    ([ $($elems:expr),* ] true $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!(true) ] $($rest)*)
    };
    ([ $($elems:expr),* ] false $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!(false) ] $($rest)*)
    };
    ([ $($elems:expr),* ] [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!([ $($inner)* ]) ] $($rest)*)
    };
    ([ $($elems:expr),* ] { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!({ $($inner)* }) ] $($rest)*)
    };
    // Plain expression element (consume up to the next top-level comma).
    ([ $($elems:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!($next) ] $($rest)*)
    };
    ([ $($elems:expr),* ] $last:expr) => {
        $crate::json_internal_array!([ $($elems,)* $crate::json!($last) ])
    };
    // Separator comma between parsed elements.
    ([ $($elems:expr),* ] , $($rest:tt)*) => {
        $crate::json_internal_array!([ $($elems),* ] $($rest)*)
    };
}

/// Internal: accumulates object entries. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // Finished.
    ($map:ident ()) => {};
    ($map:ident () ,) => {};
    // Accumulate key tokens until the colon, then dispatch on value shape.
    ($map:ident ($($key:tt)+) : null $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!(null)) $($rest)*);
    };
    ($map:ident ($($key:tt)+) : true $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!(true)) $($rest)*);
    };
    ($map:ident ($($key:tt)+) : false $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!(false)) $($rest)*);
    };
    ($map:ident ($($key:tt)+) : [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!([ $($inner)* ])) $($rest)*);
    };
    ($map:ident ($($key:tt)+) : { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!({ $($inner)* })) $($rest)*);
    };
    ($map:ident ($($key:tt)+) : $value:expr , $($rest:tt)*) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!($value)) , $($rest)*);
    };
    ($map:ident ($($key:tt)+) : $value:expr) => {
        $crate::json_internal_object!(@val $map ($($key)+) ($crate::json!($value)));
    };
    // Entry complete: insert, continue after optional comma.
    (@val $map:ident ($key:expr) ($value:expr) , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $value);
        $crate::json_internal_object!($map () $($rest)*);
    };
    (@val $map:ident ($key:expr) ($value:expr)) => {
        $map.insert(($key).to_string(), $value);
    };
    // Munch one more key token.
    ($map:ident ($($key:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_object!($map ($($key)* $next) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, Value};

    #[test]
    fn literal_roundtrip() {
        let v = json!({
            "name": "alice",
            "age": 30,
            "tags": ["a", "b", 3, null, true],
            "nested": {"deep": [{"x": 1.5}]},
            "empty_obj": {},
            "empty_arr": [],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["name"].as_str(), Some("alice"));
        assert_eq!(v["age"].as_u64(), Some(30));
        assert_eq!(v["tags"].as_array().unwrap().len(), 5);
        assert_eq!(v["nested"]["deep"][0usize]["x"].as_f64(), Some(1.5));
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn expressions_interpolate() {
        let name = String::from("bob");
        let count = 7u32;
        let v = json!({"user": name, "count": count, "sum": 1 + 2});
        assert_eq!(to_string(&v).unwrap(), r#"{"user":"bob","count":7,"sum":3}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\nbreak \"quoted\" back\\slash \u{1}"});
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"s":"line\nbreak \"quoted\" back\\slash \u0001"}"#
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_and_surrogates_parse() {
        let v: Value = from_str(r#""😀 café""#).unwrap();
        assert_eq!(v.as_str(), Some("😀 café"));
    }

    #[test]
    fn numbers_classify() {
        let v: Value = from_str(r#"[0, -3, 18446744073709551615, 1.5, 2e3, -0.25]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(0));
        assert_eq!(arr[1].as_i64(), Some(-3));
        assert_eq!(arr[2].as_u64(), Some(u64::MAX));
        assert_eq!(arr[3].as_f64(), Some(1.5));
        assert_eq!(arr[4].as_f64(), Some(2000.0));
        assert_eq!(arr[5].as_f64(), Some(-0.25));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>(r#"{"a": 1,}"#).is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn float_with_integral_value_roundtrips_as_float() {
        let v = super::to_value(2.0f64);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
