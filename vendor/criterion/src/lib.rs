//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small but real wall-clock harness behind criterion's API shape:
//! benchmark groups, `bench_with_input`, warm-up, a timed measurement window,
//! and median/mean reporting on stdout. Statistical machinery (outlier
//! classification, regression analysis, HTML reports) is intentionally
//! absent; the numbers printed are honest medians over the measured samples.
//!
//! `cargo bench` passes harness CLI flags (`--bench`, filters); these are
//! accepted. A positional filter argument restricts which benchmark ids run,
//! and `--test` runs every benchmark body exactly once (CI smoke mode).

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for the common `black_box` helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_id: function_id.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with no parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_id: parameter.to_string(),
            parameter: None,
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function_id, p),
            None => self.function_id.clone(),
        }
    }
}

/// Throughput specification attached to a group, mirroring
/// `criterion::Throughput`: when set, reports include a derived
/// elements-per-second (or bytes-per-second) rate computed from the median
/// sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements (e.g. tokens, masks) processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Harness configuration shared by every group, derived from CLI args.
#[derive(Debug, Clone)]
struct HarnessConfig {
    /// Substring filter over `group/function/parameter` ids.
    filter: Option<String>,
    /// Run each body once, no timing (criterion's `--test` mode).
    test_mode: bool,
}

impl HarnessConfig {
    fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--profile-time" => {}
                "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                positional => filter = Some(positional.to_string()),
            }
        }
        HarnessConfig { filter, test_mode }
    }
}

/// Entry point type, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    config: HarnessConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: HarnessConfig::from_args(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        let id = BenchmarkId::from_parameter(id);
        group.bench_with_input(id, &(), |b, _| f(b));
        group.finish();
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: HarnessConfig,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput; subsequent benchmarks in this group
    /// report a derived rate (elements or bytes per second) from the median.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target duration of the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the duration of the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = if self.name.is_empty() {
            id.render()
        } else {
            format!("{}/{}", self.name, id.render())
        };
        if let Some(filter) = &self.config.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            mode: if self.config.test_mode {
                BenchMode::TestOnce
            } else {
                BenchMode::Measure {
                    warm_up: self.warm_up_time,
                    window: self.measurement_time,
                    samples: self.sample_size,
                }
            },
            recorded: Vec::new(),
        };
        f(&mut bencher, input);
        if self.config.test_mode {
            println!("{full_id}: test ok");
        } else {
            report(&full_id, &bencher.recorded, self.throughput);
        }
        self
    }

    /// Runs one benchmark without extra input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| f(b))
    }

    /// Closes the group (criterion prints summaries here; the shim prints
    /// per-benchmark lines eagerly, so this is a separator only).
    pub fn finish(self) {
        println!();
    }
}

#[derive(Debug)]
enum BenchMode {
    TestOnce,
    Measure {
        warm_up: Duration,
        window: Duration,
        samples: usize,
    },
}

/// Passed to the benchmark body; `iter` runs and times the closure.
#[derive(Debug)]
pub struct Bencher {
    mode: BenchMode,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Measures the closure: warm-up, then timed samples. Each sample times
    /// a batch of iterations sized so one batch lasts roughly
    /// `window / samples`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::TestOnce => {
                black_box(f());
            }
            BenchMode::Measure {
                warm_up,
                window,
                samples,
            } => {
                // Warm-up: run until the warm-up budget is spent, counting
                // iterations to estimate per-iteration cost.
                let start = Instant::now();
                let mut warm_iters: u64 = 0;
                while start.elapsed() < warm_up {
                    black_box(f());
                    warm_iters += 1;
                }
                let per_iter = start.elapsed() / warm_iters.max(1) as u32;
                let per_sample_budget = window / samples.max(1) as u32;
                let iters_per_sample = if per_iter.is_zero() {
                    1
                } else {
                    (per_sample_budget.as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
                };
                self.recorded.clear();
                for _ in 0..samples {
                    let t0 = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(f());
                    }
                    self.recorded.push(t0.elapsed() / iters_per_sample as u32);
                }
            }
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = throughput.map_or(String::new(), |t| {
        let secs = median.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => format!(" | thrpt {} elem/s", fmt_rate(n as f64 / secs)),
            Throughput::Bytes(n) => format!(" | thrpt {}B/s", fmt_rate(n as f64 / secs)),
        }
    });
    println!(
        "{id}: median {} | mean {} | min {} | max {} ({} samples){rate}",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        sorted.len()
    );
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1_000_000_000.0 {
        format!("{:.2} G", per_sec / 1_000_000_000.0)
    } else if per_sec >= 1_000_000.0 {
        format!("{:.2} M", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.2} K", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.2} ")
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares the benchmark functions of one bench target, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function of a bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(
            BenchmarkId::new("xgrammar", "json").render(),
            "xgrammar/json"
        );
        assert_eq!(BenchmarkId::from_parameter(42).render(), "42");
    }

    #[test]
    fn harness_runs_a_tiny_benchmark() {
        let mut c = Criterion {
            config: HarnessConfig {
                filter: None,
                test_mode: false,
            },
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn throughput_reports_a_rate() {
        let mut c = Criterion {
            config: HarnessConfig {
                filter: None,
                test_mode: false,
            },
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(2));
        group.throughput(Throughput::Elements(1000));
        group.bench_function("rate", |b| b.iter(|| black_box(2u64 + 2)));
        group.finish();
        assert_eq!(fmt_rate(1.5e9), "1.50 G");
        assert_eq!(fmt_rate(2.5e6), "2.50 M");
        assert_eq!(fmt_rate(3_200.0), "3.20 K");
        assert_eq!(fmt_rate(12.0), "12.00 ");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            config: HarnessConfig {
                filter: Some("nomatch".into()),
                test_mode: false,
            },
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 1), &(), |b, _| {
            ran = true;
            b.iter(|| 1)
        });
        group.finish();
        assert!(!ran);
    }
}
