//! The [`Serialize`] trait: lowering a Rust value to a JSON [`Value`].

use crate::value::{Map, Number, Value};

/// Types that can be lowered to a JSON [`Value`].
///
/// This replaces serde's visitor-based `Serialize`; the derive macro from the
/// `serde_derive` shim generates implementations for structs and fieldless
/// enums.
pub trait Serialize {
    /// Lowers `self` to a JSON value.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Number::from_f64(*self).map(Value::Number).unwrap_or(Value::Null)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const LEN: usize> Serialize for [T; LEN] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the keys (std HashMap order is random).
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}
