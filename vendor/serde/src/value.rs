//! The JSON value model: [`Value`], [`Number`], and the insertion-ordered
//! [`Map`], plus the compact text writer (`Display`) and the text parser used
//! by the `serde_json` facade.

use std::fmt;
use std::ops::Index;

use crate::Error;

/// An owned JSON value, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. Iteration follows insertion order (the shim behaves
    /// like serde_json with `preserve_order` enabled, which is what the
    /// schema→grammar conversion and the dataset generators both rely on).
    Object(Map<String, Value>),
}

/// A JSON number: positive integer, negative integer, or float — the same
/// three-way split serde_json uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(pub(crate) N);

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Creates a number from a float. Returns `None` for NaN/infinities,
    /// which JSON cannot represent.
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::Float(v)))
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            N::NegInt(_) | N::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::PosInt(v) => Some(v as f64),
            N::NegInt(v) => Some(v as f64),
            N::Float(v) => Some(v),
        }
    }

    /// Whether the number is representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::PosInt(_))
    }

    /// Whether the number is representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::Float(_))
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number(N::PosInt(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Number(N::PosInt(v as u64))
        } else {
            Number(N::NegInt(v))
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            // `{:?}` keeps a trailing `.0` on integral floats, so a float
            // value re-parses as a float (serde_json via ryu does the same).
            N::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
///
/// Lookups are linear scans; JSON objects in this workspace are small
/// (schema keyword sets, function-call arguments), so this is never hot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key/value pair, returning the previous value if the key was
    /// already present (the entry keeps its original position, as with
    /// serde_json's preserve_order map).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates over values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if applicable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if applicable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, if applicable.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `Some(())` if this is `null` (mirrors serde_json).
    pub fn as_null(&self) -> Option<()> {
        matches!(self, Value::Null).then_some(())
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is a bool.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// Whether this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Whether this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object-key or array-index lookup that returns `None` on mismatch.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Key types usable with [`Value::get`] and `value[...]` indexing.
pub trait ValueIndex {
    /// Looks `self` up in `v`.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|o| o.get(self))
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|o| o.get(self))
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|o| o.get(self))
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: ValueIndex> Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        static NULL: Value = Value::Null;
        index.index_into(self).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Compact writer (Display) — matches serde_json's compact output format.
// ---------------------------------------------------------------------------

pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over bytes, UTF-8 aware in strings.
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    /// Parses one complete value and requires end-of-input after it.
    pub fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::PosInt(v))));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::NegInt(v))));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err("invalid number literal"))?;
        Number::from_f64(v)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}
