//! The [`Deserialize`] trait: raising a JSON [`Value`] back to a Rust value.

use crate::value::{Map, Value};
use crate::Error;

/// Types that can be raised from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Error::custom(format!("expected {expected}, found {kind}"))
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| type_err("boolean", v))
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| type_err("unsigned integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| type_err("integer", v))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| type_err("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| type_err("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| type_err("array", v))?;
        if items.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| type_err("array", v))?;
        if items.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object().cloned().ok_or_else(|| type_err("object", v))
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| type_err("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| type_err("object", v))?;
        obj.iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
