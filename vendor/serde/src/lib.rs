//! Offline shim for the subset of `serde` + `serde_json` machinery this
//! workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! visitor-based serde data model this crate implements a small value-based
//! one: [`Serialize`] lowers a type to a JSON [`Value`], [`Deserialize`]
//! raises it back. The `serde_json` shim crate re-exports the value types and
//! adds the text layer (`to_string` / `from_str` / `json!`).
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the sibling
//! `serde_derive` proc-macro shim and supports the shapes used in this
//! repository: named-field structs, tuple structs, and fieldless enums.

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

mod de;
mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::{Map, Number, Value};

// Derive macros live in the macro namespace, the traits in the type
// namespace, so both `Serialize` names can be imported together — same
// arrangement as the real serde crate.
pub use serde_derive::{Deserialize, Serialize};

/// Error raised when deserialization fails (also reused by the `serde_json`
/// shim for parse errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
