//! Offline shim for serde's derive macros, targeting the value-based data
//! model in the vendored `serde` crate.
//!
//! Implemented with the raw `proc_macro` API (no `syn`/`quote` in the
//! offline build environment), so it supports exactly the shapes this
//! workspace derives on, erroring clearly on anything else:
//!
//! * named-field structs        → JSON objects,
//! * tuple structs              → newtype unwrap (1 field) or JSON arrays,
//! * unit-only (fieldless) enums → JSON strings holding the variant name.
//!
//! Generics, lifetimes, data-carrying enum variants, and `#[serde(...)]`
//! attributes are not supported.

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Foo { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct Foo(A, B);` — field count.
    TupleStruct(usize),
    /// `enum Foo { A, B }` — variant names.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token slice on top-level commas, tracking `<...>` angle depth so
/// commas inside generic argument lists don't split (e.g. `Vec<(u32, T)>`).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(t.clone());
    }
    if parts.last().map_or(false, |p| p.is_empty()) {
        parts.pop();
    }
    parts
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    for field in split_top_level_commas(&tokens) {
        let i = skip_attrs_and_vis(&field, 0);
        match field.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("unsupported field syntax: {other:?}")),
        }
        match field.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("expected `:` after field name".into()),
        }
    }
    Ok(names)
}

fn parse_enum_variants(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    for variant in split_top_level_commas(&tokens) {
        let i = skip_attrs_and_vis(&variant, 0);
        match variant.get(i) {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            other => return Err(format!("unsupported variant syntax: {other:?}")),
        }
        if variant.len() > i + 1 {
            return Err(
                "serde_derive shim supports only fieldless enum variants \
                 (no payloads or discriminants)"
                    .into(),
            );
        }
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("serde_derive shim does not support generic types".into());
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Input {
                    name,
                    shape: Shape::TupleStruct(split_top_level_commas(&fields).len()),
                })
            }
            _ => Err("unit structs are not supported by the serde_derive shim".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                shape: Shape::UnitEnum(parse_enum_variants(g)?),
            }),
            _ => Err("malformed enum body".into()),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "let mut map = ::serde::Map::new();\n{inserts}\
                 ::serde::Value::Object(map)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "::serde::Value::String(match self {{\n{arms}}}.to_string())"
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            // Missing keys read as `null` so `Option` fields deserialize to
            // `None`, approximating serde's default behaviour for options.
            let field_inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| ::serde::Error::custom(\
                         format!(\"field `{f}`: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for struct {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                field_inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for struct {name}\"))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| \
                 ::serde::Error::custom(\"expected string for enum {name}\"))?;\n\
                 match s {{\n{arms}\
                 other => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
