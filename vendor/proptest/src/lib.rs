//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Implements randomized property testing without shrinking: each `proptest!`
//! test body runs for `ProptestConfig::cases` deterministic pseudo-random
//! cases (seeded from the test name, so failures reproduce across runs).
//! On failure the generated inputs are printed; minimization is not
//! attempted, which keeps the shim small while preserving the soundness
//! checks the test-suite encodes.
//!
//! Supported surface: range strategies over integers, `collection::vec`,
//! `sample::select`, `Just`, `prop_assert!` / `prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.

// Vendored shim: exempt from the workspace clippy policy (mirrors an
// upstream API surface; see vendor/README.md).
#![allow(clippy::all)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error raised by `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values for one test case.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner with a deterministic seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            use rand::Rng;
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                runner.rng().gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRunner};
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed set of options.
    #[derive(Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            use rand::Rng;
            assert!(!self.options.is_empty(), "sample::select over empty set");
            let idx = runner.rng().gen_range(0..self.options.len());
            self.options[idx].clone()
        }
    }
}

/// Stable seed derived from the test's module path and name, so each
/// property gets a distinct but reproducible case sequence.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, good enough for seed derivation.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a `#[test]`
/// (the attribute is written by the caller, as with real proptest) that runs
/// the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    // Without a config header.
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
    // One test function, then recurse on the remainder.
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut runner =
                    $crate::TestRunner::deterministic(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)*
                // Render inputs up front: the body may consume them by value.
                let inputs_repr = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));)*
                    s
                };
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs_repr
                    );
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    // Done.
    (@funcs ($config:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_select_compose(
            v in crate::collection::vec(crate::sample::select(vec![1u8, 2, 3]), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| [1, 2, 3].contains(x)));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("inputs:"), "message: {msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRunner::deterministic(1);
        let mut b = TestRunner::deterministic(1);
        let s = crate::collection::vec(0u32..100, 1..10);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
