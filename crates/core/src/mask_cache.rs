//! The adaptive token mask cache (paper §3.1) and its construction.
//!
//! For every node of the pushdown automaton, the vocabulary is partitioned
//! into
//!
//! * **context-independent accepted** tokens — valid whenever that node is on
//!   top of the stack, regardless of what is below,
//! * **context-independent rejected** tokens — invalid regardless of the
//!   stack, and
//! * **context-dependent** tokens — their validity depends on the parent
//!   frames and must be resolved at runtime.
//!
//! The cache stores, per node, whichever two of the three sets are cheapest
//! (accept-heavy / reject-heavy / bitset storage, Figure 5), and the
//! runtime merges per-stack masks with the set-based Algorithm 1.
//!
//! Construction uses the persistent execution stack: tokens are classified in
//! lexicographic order and the matcher state is rolled back to the common
//! prefix with the previously classified token (paper §3.3), which cuts the
//! number of bytes that have to be matched to a fraction.

use xg_automata::{Fsa, NodeId, Pda, SuffixMatch};
use xg_tokenizer::{SortedVocabulary, TokenId, Vocabulary};

use crate::executor::{common_prefix_len, TokenTrail};
use crate::mask::TokenBitmask;
use crate::persistent_stack::{PersistentStackTree, StackHandle};

/// Per-node storage of the token mask cache, in one of the three adaptive
/// formats of Figure 5. `uncertain` always holds the context-dependent
/// tokens, sorted by their byte strings so the runtime check can reuse
/// prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMaskEntry {
    /// Most tokens are accepted: store the rejected and context-dependent
    /// tokens.
    AcceptHeavy {
        /// Context-independent rejected tokens.
        rejected: Vec<TokenId>,
        /// Context-dependent tokens (sorted by byte string).
        uncertain: Vec<TokenId>,
    },
    /// Most tokens are rejected: store the accepted and context-dependent
    /// tokens.
    RejectHeavy {
        /// Context-independent accepted tokens.
        accepted: Vec<TokenId>,
        /// Context-dependent tokens (sorted by byte string).
        uncertain: Vec<TokenId>,
    },
    /// Accepted and rejected sets have comparable size: store a dense bitset
    /// of the accepted tokens.
    Bitset {
        /// Bit set over the vocabulary with accepted tokens set.
        accepted: TokenBitmask,
        /// Context-dependent tokens (sorted by byte string).
        uncertain: Vec<TokenId>,
    },
}

impl NodeMaskEntry {
    /// The context-dependent tokens of this node.
    pub fn uncertain(&self) -> &[TokenId] {
        match self {
            NodeMaskEntry::AcceptHeavy { uncertain, .. }
            | NodeMaskEntry::RejectHeavy { uncertain, .. }
            | NodeMaskEntry::Bitset { uncertain, .. } => uncertain,
        }
    }

    /// Approximate heap memory used by this entry, in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            NodeMaskEntry::AcceptHeavy {
                rejected,
                uncertain,
            } => (rejected.len() + uncertain.len()) * 4,
            NodeMaskEntry::RejectHeavy {
                accepted,
                uncertain,
            } => (accepted.len() + uncertain.len()) * 4,
            NodeMaskEntry::Bitset {
                accepted,
                uncertain,
            } => accepted.memory_bytes() + uncertain.len() * 4,
        }
    }

    /// True if this entry uses the accept-heavy storage format.
    pub fn is_accept_heavy(&self) -> bool {
        matches!(self, NodeMaskEntry::AcceptHeavy { .. })
    }
}

/// Statistics gathered while building the mask cache; these back several of
/// the paper's headline numbers (§3.1–§3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaskCacheStats {
    /// Number of automaton nodes (cache entries).
    pub nodes: usize,
    /// Vocabulary size used for classification (special tokens excluded).
    pub classified_tokens: usize,
    /// Sum over nodes of context-dependent tokens *before* context expansion.
    pub context_dependent_before_expansion: usize,
    /// Sum over nodes of context-dependent tokens *after* context expansion.
    pub context_dependent_after_expansion: usize,
    /// Maximum number of context-dependent tokens on any single node (after
    /// expansion).
    pub max_context_dependent_per_node: usize,
    /// Total cache memory (adaptive storage), in bytes.
    pub memory_bytes: usize,
    /// Memory a dense per-node bitmask layout would need, in bytes.
    pub dense_memory_bytes: usize,
    /// Bytes of token text actually matched during preprocessing.
    pub preprocessing_bytes_matched: u64,
    /// Bytes of token text that would have been matched without sorted-prefix
    /// rollback (`nodes * total token bytes`).
    pub preprocessing_bytes_naive: u64,
}

impl MaskCacheStats {
    /// Fraction of context-dependent tokens removed by context expansion.
    pub fn expansion_reduction(&self) -> f64 {
        if self.context_dependent_before_expansion == 0 {
            return 0.0;
        }
        1.0 - self.context_dependent_after_expansion as f64
            / self.context_dependent_before_expansion as f64
    }

    /// Ratio of adaptive-storage memory to dense-bitmask memory.
    pub fn memory_ratio(&self) -> f64 {
        if self.dense_memory_bytes == 0 {
            return 0.0;
        }
        self.memory_bytes as f64 / self.dense_memory_bytes as f64
    }

    /// Fraction of token bytes matched during preprocessing relative to the
    /// naive (unsorted, no rollback) strategy.
    pub fn preprocessing_check_fraction(&self) -> f64 {
        if self.preprocessing_bytes_naive == 0 {
            return 0.0;
        }
        self.preprocessing_bytes_matched as f64 / self.preprocessing_bytes_naive as f64
    }
}

/// The adaptive token mask cache: one entry per automaton node.
#[derive(Debug, Clone)]
pub struct MaskCache {
    entries: Vec<NodeMaskEntry>,
    stats: MaskCacheStats,
}

impl MaskCache {
    /// Returns the entry for a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn entry(&self, node: NodeId) -> &NodeMaskEntry {
        &self.entries[node.index()]
    }

    /// Number of entries (= automaton nodes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build statistics.
    pub fn stats(&self) -> &MaskCacheStats {
        &self.stats
    }
}

/// Classification of one token relative to one automaton node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenClass {
    Accepted,
    Rejected,
    Uncertain,
}

/// Result of classifying the whole vocabulary for one node.
#[derive(Debug, Default)]
struct NodeClassification {
    accepted: Vec<TokenId>,
    rejected: Vec<TokenId>,
    uncertain: Vec<TokenId>,
    uncertain_before_expansion: usize,
    bytes_matched: u64,
}

/// Classifies every (non-special) token against a single automaton node,
/// using sorted-order prefix sharing. `suffix_fsa`, when provided, is the
/// expanded-suffix automaton of the node's rule and is used to reject
/// context-dependent tokens whose remainder cannot match any parent context
/// (context expansion, §3.2).
fn classify_node(
    pda: &Pda,
    node: NodeId,
    vocab: &Vocabulary,
    sorted: &SortedVocabulary,
    suffix_fsa: Option<&Fsa>,
) -> NodeClassification {
    let mut tree = PersistentStackTree::new();
    let start = tree.push(StackHandle::ROOT, node);
    let mut trail = TokenTrail::new(vec![start]);
    let mut out = NodeClassification::default();
    let mut prev_bytes: &[u8] = &[];
    for (i, &token_id) in sorted.ids().iter().enumerate() {
        let bytes = vocab.token_bytes(token_id);
        let keep = if i == 0 {
            0
        } else {
            common_prefix_len(prev_bytes, bytes).min(sorted.lcp()[i])
        };
        let alive = trail.match_token(pda, &mut tree, bytes, keep);
        let class = if alive {
            TokenClass::Accepted
        } else {
            // Any pop-out offset means the remainder could be matched by a
            // parent context; context expansion filters those that cannot.
            let mut uncertain = false;
            for offset in trail.popout_offsets() {
                if offset >= bytes.len() {
                    continue;
                }
                let remainder = &bytes[offset..];
                match suffix_fsa {
                    Some(fsa) => {
                        if fsa.match_remaining(remainder) == SuffixMatch::Possible {
                            uncertain = true;
                            break;
                        }
                    }
                    None => {
                        uncertain = true;
                        break;
                    }
                }
            }
            // Track what the classification would have been without context
            // expansion for the statistics.
            if trail.popout_offsets().any(|o| o < bytes.len()) {
                out.uncertain_before_expansion += 1;
            }
            if uncertain {
                TokenClass::Uncertain
            } else {
                TokenClass::Rejected
            }
        };
        match class {
            TokenClass::Accepted => out.accepted.push(token_id),
            TokenClass::Rejected => out.rejected.push(token_id),
            TokenClass::Uncertain => out.uncertain.push(token_id),
        }
        prev_bytes = bytes;
    }
    out.bytes_matched = trail.bytes_advanced();
    out
}

/// Options for building the mask cache.
#[derive(Debug, Clone)]
pub struct MaskCacheBuildOptions {
    /// Apply context expansion (requires `suffix_fsas`).
    pub context_expansion: bool,
    /// Number of worker threads (0 = use available parallelism).
    pub num_threads: usize,
}

impl Default for MaskCacheBuildOptions {
    fn default() -> Self {
        MaskCacheBuildOptions {
            context_expansion: true,
            num_threads: 0,
        }
    }
}

/// Builds the adaptive token mask cache for every node of the PDA.
///
/// `suffix_fsas` must contain one expanded-suffix automaton per PDA rule when
/// context expansion is enabled (see
/// [`xg_automata::extract_all_suffix_fsas`]).
pub fn build_mask_cache(
    pda: &Pda,
    vocab: &Vocabulary,
    sorted: &SortedVocabulary,
    suffix_fsas: Option<&[Fsa]>,
    options: &MaskCacheBuildOptions,
) -> MaskCache {
    let node_count = pda.node_count();
    let num_threads = if options.num_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(node_count.max(1))
    } else {
        options.num_threads
    };

    let classify = |node_index: usize| -> NodeClassification {
        let node = NodeId(node_index as u32);
        let fsa = if options.context_expansion {
            suffix_fsas.map(|f| &f[pda.node(node).rule.index()])
        } else {
            None
        };
        classify_node(pda, node, vocab, sorted, fsa)
    };

    let classifications: Vec<NodeClassification> = if num_threads <= 1 || node_count < 2 {
        (0..node_count).map(classify).collect()
    } else {
        // Static chunking over nodes; Vocabulary, Pda and SortedVocabulary are
        // all shared immutably.
        let mut results: Vec<Option<NodeClassification>> = Vec::new();
        results.resize_with(node_count, || None);
        let chunk = node_count.div_ceil(num_threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..num_threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(node_count);
                if lo >= hi {
                    break;
                }
                let classify = &classify;
                handles.push(
                    scope.spawn(move || (lo..hi).map(|i| (i, classify(i))).collect::<Vec<_>>()),
                );
            }
            for handle in handles {
                for (i, c) in handle.join().expect("classification worker panicked") {
                    results[i] = Some(c);
                }
            }
        });
        results
            .into_iter()
            .map(|c| c.expect("every node classified"))
            .collect()
    };

    // Convert classifications into adaptive entries and aggregate statistics.
    let vocab_size = vocab.len();
    let mut entries = Vec::with_capacity(node_count);
    let mut stats = MaskCacheStats {
        nodes: node_count,
        classified_tokens: sorted.len(),
        dense_memory_bytes: node_count * vocab_size.div_ceil(8),
        preprocessing_bytes_naive: node_count as u64 * sorted.total_bytes() as u64,
        ..Default::default()
    };
    for classification in classifications {
        stats.context_dependent_before_expansion += classification.uncertain_before_expansion;
        stats.context_dependent_after_expansion += classification.uncertain.len();
        stats.max_context_dependent_per_node = stats
            .max_context_dependent_per_node
            .max(classification.uncertain.len());
        stats.preprocessing_bytes_matched += classification.bytes_matched;
        let entry = make_entry(vocab, vocab_size, classification);
        stats.memory_bytes += entry.memory_bytes();
        entries.push(entry);
    }

    MaskCache { entries, stats }
}

/// Chooses the cheapest of the three storage formats (Figure 5).
fn make_entry(
    vocab: &Vocabulary,
    vocab_size: usize,
    classification: NodeClassification,
) -> NodeMaskEntry {
    let NodeClassification {
        accepted,
        rejected,
        mut uncertain,
        ..
    } = classification;
    // Keep context-dependent tokens sorted by byte string (they already are,
    // since classification visits tokens in sorted order), so the runtime
    // check can reuse prefixes. Assert in debug builds.
    debug_assert!(uncertain
        .windows(2)
        .all(|w| vocab.token_bytes(w[0]) <= vocab.token_bytes(w[1])));
    uncertain.shrink_to_fit();

    let accept_heavy_cost = (rejected.len() + uncertain.len()) * 4;
    let reject_heavy_cost = (accepted.len() + uncertain.len()) * 4;
    let bitset_cost = vocab_size.div_ceil(8) + uncertain.len() * 4;
    if accept_heavy_cost <= reject_heavy_cost && accept_heavy_cost <= bitset_cost {
        NodeMaskEntry::AcceptHeavy {
            rejected,
            uncertain,
        }
    } else if reject_heavy_cost <= bitset_cost {
        NodeMaskEntry::RejectHeavy {
            accepted,
            uncertain,
        }
    } else {
        let mut mask = TokenBitmask::new_all_rejected(vocab_size);
        for t in &accepted {
            mask.allow(*t);
        }
        NodeMaskEntry::Bitset {
            accepted: mask,
            uncertain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_automata::{build_pda, extract_all_suffix_fsas, PdaBuildOptions};
    use xg_grammar::parse_ebnf;
    use xg_tokenizer::test_vocabulary;

    fn build_all(
        grammar_text: &str,
        vocab: &Vocabulary,
        context_expansion: bool,
    ) -> (Pda, MaskCache) {
        let g = parse_ebnf(grammar_text, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        let sorted = SortedVocabulary::new(vocab);
        let fsas = extract_all_suffix_fsas(&pda);
        let cache = build_mask_cache(
            &pda,
            vocab,
            &sorted,
            Some(&fsas),
            &MaskCacheBuildOptions {
                context_expansion,
                num_threads: 2,
            },
        );
        (pda, cache)
    }

    #[test]
    fn cache_has_one_entry_per_node() {
        let vocab = test_vocabulary(600);
        let (pda, cache) = build_all(r#"root ::= "[" [a-z]* "]""#, &vocab, true);
        assert_eq!(cache.len(), pda.node_count());
    }

    #[test]
    fn root_start_accepts_only_open_bracket() {
        let vocab = test_vocabulary(600);
        let (pda, cache) = build_all(r#"root ::= "[" [a-z]* "]""#, &vocab, true);
        let entry = cache.entry(pda.root_start());
        // At the very start only tokens beginning with `[` can be valid, so
        // the entry must be reject-heavy (or a bitset with few bits).
        match entry {
            NodeMaskEntry::RejectHeavy { accepted, .. } => {
                for t in accepted {
                    assert_eq!(vocab.token_bytes(*t)[0], b'[');
                }
                assert!(!accepted.is_empty());
            }
            other => panic!("expected reject-heavy storage at the start node, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_nodes_are_accept_heavy() {
        // A large enough vocabulary that a small rejected list beats the
        // dense bitset (with tiny vocabularies the bitset is always cheapest
        // and the adaptive format rightly picks it).
        let vocab = test_vocabulary(8000);
        // Inside the character class almost everything is accepted (only
        // tokens containing a NUL byte are rejected), so the rejected list is
        // far cheaper than a bitset.
        let (pda, cache) = build_all(r#"root ::= "x" [^\x00]* "y""#, &vocab, true);
        let accept_heavy =
            (0..pda.node_count()).any(|i| cache.entry(NodeId(i as u32)).is_accept_heavy());
        assert!(accept_heavy, "expected at least one accept-heavy node");
    }

    #[test]
    fn context_expansion_reduces_uncertain_tokens() {
        let vocab = test_vocabulary(2000);
        let grammar = r#"
            root ::= "[" ((str ",")* str)? "]"
            str ::= "\"" [a-z]* "\""
        "#;
        let (_, without) = build_all(grammar, &vocab, false);
        let (_, with) = build_all(grammar, &vocab, true);
        assert!(
            with.stats().context_dependent_after_expansion
                <= without.stats().context_dependent_after_expansion
        );
        assert!(with.stats().expansion_reduction() >= 0.0);
    }

    #[test]
    fn adaptive_memory_is_much_smaller_than_dense() {
        let vocab = test_vocabulary(4000);
        let (_, cache) = build_all(
            r#"
            root ::= obj
            obj ::= "{" (pair ("," pair)*)? "}"
            pair ::= "\"" [a-z]+ "\"" ":" val
            val ::= obj | "\"" [a-z]* "\"" | [0-9]+
            "#,
            &vocab,
            true,
        );
        let stats = cache.stats();
        // With a small test vocabulary the win is modest (the realistic-scale
        // ratio is measured by the benchmark harness against a 128k
        // vocabulary); here we check the direction and that context
        // expansion keeps the per-node context-dependent sets tiny.
        assert!(
            stats.memory_bytes < stats.dense_memory_bytes,
            "adaptive {} vs dense {}",
            stats.memory_bytes,
            stats.dense_memory_bytes
        );
        assert!(
            stats.max_context_dependent_per_node <= stats.classified_tokens / 100,
            "too many context-dependent tokens per node: {}",
            stats.max_context_dependent_per_node
        );
    }

    #[test]
    fn prefix_sharing_reduces_preprocessing_work() {
        let vocab = test_vocabulary(2000);
        let (_, cache) = build_all(r#"root ::= [a-z ]*"#, &vocab, true);
        let stats = cache.stats();
        assert!(stats.preprocessing_bytes_matched < stats.preprocessing_bytes_naive);
        assert!(stats.preprocessing_check_fraction() < 1.0);
    }

    #[test]
    fn classification_is_consistent_with_reference_matcher() {
        // For the tokens classified as context-independent accepted at the
        // root start node, the reference matcher must agree they are valid
        // prefixes of a sentence.
        let vocab = test_vocabulary(600);
        let grammar = r#"root ::= "{" [a-z]* "}""#;
        let (pda, cache) = build_all(grammar, &vocab, true);
        let entry = cache.entry(pda.root_start());
        if let NodeMaskEntry::RejectHeavy { accepted, .. } = entry {
            for t in accepted {
                let bytes = vocab.token_bytes(*t);
                let mut m = xg_automata::SimpleMatcher::new(&pda);
                assert!(
                    m.advance_bytes(bytes),
                    "token {:?} was classified accepted but the reference matcher rejects it",
                    String::from_utf8_lossy(bytes)
                );
            }
        } else {
            panic!("start node should be reject-heavy");
        }
    }
}
