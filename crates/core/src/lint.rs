//! Vocabulary-aware lint: the compile-time layer of the grammar
//! static-analysis pass.
//!
//! The grammar-level analysis in `xg-grammar` ([`xg_grammar::analyze`]) knows
//! nothing about tokens: a grammar can be perfectly satisfiable over *bytes*
//! yet unserveable over a concrete [`Vocabulary`](xg_tokenizer::Vocabulary) —
//! if some reachable automaton state requires a byte that no token of the
//! vocabulary can supply, a decode lane parked there can never advance and
//! never terminate. That is exactly the information the adaptive token mask
//! cache already computes per node, so this module reuses it: a reachable,
//! non-final PDA node whose mask entry admits zero tokens (no
//! context-independent accepts and no context-dependent candidates) is
//! reported as a [`DiagnosticCode::DeadState`] error.
//!
//! [`lint_compiled`] combines both layers into one [`GrammarLintReport`],
//! which [`CompiledGrammar`](crate::CompiledGrammar) stores when the
//! compiler's [`LintMode`](crate::LintMode) is not `Off`.

use xg_automata::{NodeId, Pda, PdaEdge};
use xg_grammar::{analyze, Diagnostic, DiagnosticCode, Grammar, Severity};

use crate::mask_cache::{MaskCache, NodeMaskEntry};

/// The outcome of linting one compiled grammar: grammar-level diagnostics
/// from [`xg_grammar::analyze`] plus vocabulary-aware dead-state findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarLintReport {
    /// All findings, grammar-level first, then vocabulary-aware ones.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of reachable, non-final automaton states admitting zero tokens
    /// (each also appears in `diagnostics` as a
    /// [`DiagnosticCode::DeadState`]).
    pub dead_states: usize,
}

impl GrammarLintReport {
    /// Returns `true` if any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Iterates over the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }
}

/// Collects every PDA node reachable from the start configuration: byte
/// edges reach their targets, and a rule edge both enters the referenced
/// rule's start node and (on return) continues at the edge target.
fn reachable_nodes(pda: &Pda) -> Vec<NodeId> {
    let mut seen = vec![false; pda.nodes().len()];
    let mut queue = vec![pda.root_start()];
    let mut out = Vec::new();
    if let Some(slot) = seen.get_mut(pda.root_start().index()) {
        *slot = true;
    }
    while let Some(id) = queue.pop() {
        out.push(id);
        for edge in &pda.node(id).edges {
            let mut push = |next: NodeId| {
                if let Some(slot) = seen.get_mut(next.index()) {
                    if !*slot {
                        *slot = true;
                        queue.push(next);
                    }
                }
            };
            match edge {
                PdaEdge::Bytes { target, .. } => push(*target),
                PdaEdge::Rule { rule, target } => {
                    push(pda.rule(*rule).start);
                    push(*target);
                }
            }
        }
    }
    out
}

/// Returns `true` if the node's mask entry admits zero tokens: no
/// context-independent accepts and no context-dependent candidates. (Tokens
/// in the uncertain set *might* be rejected at runtime, so this is a
/// conservative under-approximation of deadness — everything flagged really
/// is stuck.)
fn entry_is_dead(entry: &NodeMaskEntry, classified_tokens: usize) -> bool {
    match entry {
        NodeMaskEntry::RejectHeavy {
            accepted,
            uncertain,
        } => accepted.is_empty() && uncertain.is_empty(),
        NodeMaskEntry::Bitset {
            accepted,
            uncertain,
        } => accepted.count_allowed() == 0 && uncertain.is_empty(),
        NodeMaskEntry::AcceptHeavy {
            rejected,
            uncertain,
        } => rejected.len() == classified_tokens && uncertain.is_empty(),
    }
}

/// Lints a compiled grammar: grammar-level analysis plus, when a mask cache
/// is available, vocabulary-aware dead-state detection over the PDA.
///
/// A *dead state* is a node that is reachable from the start configuration,
/// is not final (the current rule still needs input there) and whose mask
/// cache entry admits zero tokens of the vocabulary. A lane that reaches one
/// can neither advance (every token is rejected) nor terminate (EOS requires
/// a completable stack), so it would sit in the batch forever.
pub(crate) fn lint_compiled(
    grammar: &Grammar,
    pda: &Pda,
    mask_cache: Option<&MaskCache>,
) -> GrammarLintReport {
    let analysis = analyze(grammar);
    let mut diagnostics = analysis.diagnostics;
    let mut dead_states = 0;
    if let Some(cache) = mask_cache {
        let classified = cache.stats().classified_tokens;
        for id in reachable_nodes(pda) {
            let node = pda.node(id);
            if node.is_final {
                continue;
            }
            if entry_is_dead(cache.entry(id), classified) {
                dead_states += 1;
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::DeadState,
                    None,
                    format!(
                        "automaton state {} of rule `{}` is reachable but admits zero tokens \
                         of the vocabulary; a lane stuck there can never advance",
                        id.index(),
                        pda.rule(node.rule).name,
                    ),
                ));
            }
        }
    }
    GrammarLintReport {
        diagnostics,
        dead_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use xg_tokenizer::{test_vocabulary, Vocabulary};

    use crate::compiler::{CompiledGrammar, CompilerConfig};

    fn compile(grammar: &Grammar, vocab: Arc<Vocabulary>) -> CompiledGrammar {
        CompiledGrammar::compile(grammar, vocab, &CompilerConfig::default())
    }

    #[test]
    fn clean_grammar_has_clean_report() {
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap();
        let compiled = compile(&grammar, Arc::new(test_vocabulary(600)));
        let report = compiled.lint_report().expect("lint runs by default");
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.dead_states, 0);
        assert!(!report.has_errors());
    }

    #[test]
    fn grammar_level_errors_surface_in_the_report() {
        let grammar = xg_grammar::parse_ebnf(
            r#"
            root ::= a
            a ::= "x" a
            "#,
            "root",
        )
        .unwrap();
        let compiled = compile(&grammar, Arc::new(test_vocabulary(600)));
        let report = compiled.lint_report().unwrap();
        assert!(report.has_errors());
        assert!(report
            .errors()
            .any(|d| d.code == DiagnosticCode::UnsatisfiableGrammar));
    }

    #[test]
    fn vocabulary_gap_is_flagged_as_dead_state() {
        // The grammar needs a "z" after "a", but the vocabulary has no token
        // containing "z": the state after "a" admits zero tokens.
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "a" "z""#, "root").unwrap();
        let vocab = Arc::new(Vocabulary::from_tokens(
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"ab".to_vec(),
                b"</s>".to_vec(),
            ],
            Some(3),
        ));
        let compiled = compile(&grammar, vocab);
        let report = compiled.lint_report().unwrap();
        assert!(report.dead_states > 0, "{:?}", report.diagnostics);
        assert!(report.has_errors());
        assert!(report.errors().any(|d| d.code == DiagnosticCode::DeadState));
    }

    #[test]
    fn full_byte_coverage_has_no_dead_states() {
        // Same grammar, but the vocabulary covers the needed byte.
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "a" "z""#, "root").unwrap();
        let vocab = Arc::new(Vocabulary::from_tokens(
            vec![b"a".to_vec(), b"z".to_vec(), b"</s>".to_vec()],
            Some(2),
        ));
        let compiled = compile(&grammar, vocab);
        let report = compiled.lint_report().unwrap();
        assert_eq!(report.dead_states, 0, "{:?}", report.diagnostics);
    }

    #[test]
    fn report_counts_split_by_severity() {
        let grammar = xg_grammar::parse_ebnf(
            r#"
            root ::= "a"
            orphan ::= "b"
            "#,
            "root",
        )
        .unwrap();
        let compiled = compile(&grammar, Arc::new(test_vocabulary(600)));
        let report = compiled.lint_report().unwrap();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
    }
}
