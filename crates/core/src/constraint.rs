//! The [`ConstraintMatcher`] trait: one runtime interface for every kind of
//! constrained-decoding lane.
//!
//! The engine's hot path treats every constrained lane the same way — fill a
//! token mask, accept the sampled token, occasionally jump forward over
//! forced text or roll back recent tokens. Before this trait existed, the
//! fully-constrained [`GrammarMatcher`](crate::GrammarMatcher) and the
//! structural-tag [`StructuralTagMatcher`](crate::StructuralTagMatcher)
//! offered those operations through parallel, unshared inherent APIs, and
//! every consumer branched over the matcher kind by hand. Now both implement
//! [`ConstraintMatcher`], serving engines drive boxed trait objects, and a
//! new lane type (a regex lane, a composite constraint, a semantic filter)
//! plugs in by implementing the trait — no new enum variant in any consumer.
//!
//! The companion [`ConstraintFactory`] trait is the compiled-artifact side:
//! a compiled grammar or compiled tag dispatch acts as a factory of fresh
//! matchers, which lets [`MatcherPool`](crate::MatcherPool) recycle matcher
//! allocations for any constraint kind uniformly.

use std::fmt;
use std::sync::Arc;

use xg_tokenizer::{SortedVocabulary, TokenId, Vocabulary};

use crate::error::{AcceptError, RollbackError};
use crate::mask::TokenBitmask;

/// Constraint-kind-independent runtime counters, reported by every
/// [`ConstraintMatcher`]. Concrete matchers usually expose a richer inherent
/// `stats()` as well (e.g. [`MatcherStats`](crate::MatcherStats) with
/// context-dependent-token counts); this is the common denominator the
/// serving layer aggregates across heterogeneous lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstraintStats {
    /// Token bitmasks generated.
    pub masks_generated: u64,
    /// Tokens accepted (excluding raw [`accept_bytes`] units).
    ///
    /// [`accept_bytes`]: ConstraintMatcher::accept_bytes
    pub tokens_accepted: u64,
    /// Bytes accepted through raw [`accept_bytes`] units — text that
    /// advanced the matcher without per-token sampling: jump-forward
    /// injections, but also any caller-seeded prefixes fed through
    /// [`accept_bytes`] directly.
    ///
    /// [`accept_bytes`]: ConstraintMatcher::accept_bytes
    pub bytes_forced: u64,
}

/// The forced continuation at a matcher's current position, re-tokenized
/// against the real vocabulary — what engine-level jump-forward decoding
/// injects instead of sampling. Produced by
/// [`ConstraintMatcher::find_jump_forward_tokens`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForcedTokenRun {
    /// The raw forced bytes (a complete UTF-8 prefix).
    pub bytes: Vec<u8>,
    /// Longest-prefix token cover of `bytes[..covered]`: the tokens
    /// concatenate to exactly that prefix, each being the longest
    /// vocabulary token matching at its position (single-byte fallback
    /// tokens keep the cover total on byte-fallback vocabularies).
    pub tokens: Vec<TokenId>,
    /// How many of `bytes` the cover tiles (less than `bytes.len()` only
    /// when some forced byte exists in no token at all).
    pub covered: usize,
}

impl ForcedTokenRun {
    /// Builds the run for `bytes`: the longest-prefix token cover computed
    /// through `sorted` (which must be built from `vocab`). This is the one
    /// place the cover rule is applied — both the `ConstraintMatcher` and
    /// the backend-session retokenization helpers delegate here.
    pub fn cover(bytes: Vec<u8>, vocab: &Vocabulary, sorted: &SortedVocabulary) -> Self {
        if bytes.is_empty() {
            return ForcedTokenRun::default();
        }
        let (tokens, covered) = sorted.longest_prefix_cover(vocab, &bytes);
        ForcedTokenRun {
            bytes,
            tokens,
            covered,
        }
    }

    /// Returns `true` when nothing is forced (or nothing could be covered).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The incremental matcher of one constrained-decoding lane.
///
/// Implementations must keep three invariants the serving engine relies on:
///
/// 1. **Masks tell the truth**: a token allowed by
///    [`fill_next_token_bitmask`](Self::fill_next_token_bitmask) must be
///    accepted by the following [`accept_token`](Self::accept_token) call.
/// 2. **Failed accepts are atomic**: an `Err` from
///    [`accept_token`](Self::accept_token) /
///    [`accept_bytes`](Self::accept_bytes) leaves the state unchanged.
/// 3. **Rollback units**: every successful `accept_token` or `accept_bytes`
///    call is one unit of [`rollback`](Self::rollback).
///
/// # Examples
///
/// A custom constraint plugs into the engine by implementing this trait —
/// here, a budget lane that allows free generation for `budget` tokens and
/// then forces end-of-sequence:
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{AcceptError, ConstraintMatcher, ConstraintStats, RollbackError, TokenBitmask};
/// use xg_tokenizer::{test_vocabulary, TokenId, Vocabulary};
///
/// #[derive(Debug)]
/// struct TokenBudget {
///     vocab: Arc<Vocabulary>,
///     spent: usize,
///     budget: usize,
///     terminated: bool,
/// }
///
/// impl ConstraintMatcher for TokenBudget {
///     fn vocabulary(&self) -> &Arc<Vocabulary> {
///         &self.vocab
///     }
///
///     fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
///         if self.terminated {
///             mask.reject_all();
///         } else if self.spent < self.budget {
///             mask.allow_all();
///         } else {
///             mask.reject_all();
///             if let Some(eos) = self.vocab.eos() {
///                 mask.allow(eos);
///             }
///         }
///     }
///
///     fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
///         if self.terminated {
///             return Err(AcceptError::AlreadyTerminated);
///         }
///         if Some(token) == self.vocab.eos() {
///             self.terminated = true;
///         } else if self.spent < self.budget {
///             self.spent += 1;
///         } else {
///             return Err(AcceptError::TokenRejected { token, matched_bytes: 0 });
///         }
///         Ok(())
///     }
///
///     fn accept_bytes(&mut self, _bytes: &[u8]) -> Result<(), AcceptError> {
///         self.spent += 1; // one rollback unit, whatever its byte length
///         Ok(())
///     }
///
///     fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
///         if num_tokens > self.spent {
///             return Err(RollbackError { requested: num_tokens, available: self.spent });
///         }
///         self.spent -= num_tokens;
///         self.terminated = false;
///         Ok(())
///     }
///
///     fn rollback_window(&self) -> usize {
///         self.spent
///     }
///
///     fn find_jump_forward_string(&mut self) -> Vec<u8> {
///         Vec::new() // nothing is ever forced
///     }
///
///     fn can_terminate(&mut self) -> bool {
///         !self.terminated
///     }
///
///     fn is_terminated(&self) -> bool {
///         self.terminated
///     }
///
///     fn reset(&mut self) {
///         self.spent = 0;
///         self.terminated = false;
///     }
///
///     fn stats(&self) -> ConstraintStats {
///         ConstraintStats::default()
///     }
/// }
///
/// let vocab = Arc::new(test_vocabulary(600));
/// let mut lane: Box<dyn ConstraintMatcher> = Box::new(TokenBudget {
///     vocab: Arc::clone(&vocab),
///     spent: 0,
///     budget: 2,
///     terminated: false,
/// });
/// let mut mask = TokenBitmask::new_all_rejected(vocab.len());
/// lane.fill_next_token_bitmask(&mut mask);
/// assert!(mask.count_allowed() > 1);
/// lane.accept_bytes(b"hi").unwrap();
/// lane.accept_bytes(b"there").unwrap();
/// lane.fill_next_token_bitmask(&mut mask);
/// assert_eq!(mask.count_allowed(), 1); // only EOS once the budget is spent
/// ```
pub trait ConstraintMatcher: Send + fmt::Debug {
    /// The vocabulary this matcher produces masks for.
    fn vocabulary(&self) -> &Arc<Vocabulary>;

    /// Fills `mask` with the set of tokens allowed at the next decoding step.
    fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask);

    /// Accepts a sampled token, advancing the matcher state.
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] (leaving the state unchanged) when the
    /// token violates the constraint.
    fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError>;

    /// Accepts a raw byte string as a single rollback unit (jump-forward
    /// text, forced segments).
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] (leaving the state unchanged) when the
    /// bytes violate the constraint.
    fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError>;

    /// Rolls back the last `num_tokens` accepted units.
    ///
    /// # Errors
    ///
    /// Returns a [`RollbackError`] if more units are requested than the
    /// rollback window holds; the state is unchanged.
    fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError>;

    /// Number of accepted units that can currently be rolled back.
    fn rollback_window(&self) -> usize;

    /// The configured upper bound on [`rollback_window`](Self::rollback_window).
    /// Defaults to [`DEFAULT_MAX_ROLLBACK_TOKENS`](crate::DEFAULT_MAX_ROLLBACK_TOKENS);
    /// [`MatcherPool`](crate::MatcherPool) uses it to refuse recycling
    /// matchers configured differently from the pool.
    fn max_rollback(&self) -> usize {
        crate::DEFAULT_MAX_ROLLBACK_TOKENS
    }

    /// The longest byte string *forced* by the constraint from the current
    /// position (always a complete UTF-8 prefix), without modifying state.
    /// Implementations with no forced-text notion return an empty vector.
    fn find_jump_forward_string(&mut self) -> Vec<u8>;

    /// The forced continuation re-tokenized against the vocabulary: the
    /// longest-prefix token cover of
    /// [`find_jump_forward_string`](Self::find_jump_forward_string), computed
    /// through `sorted` (which must be built from
    /// [`vocabulary`](Self::vocabulary)). Engine-level jump-forward decoding
    /// injects these tokens without sampling; because the bytes are forced,
    /// every token of the cover is individually admitted by the matcher's own
    /// mask, so injection preserves the mask-soundness invariant.
    ///
    /// The matcher state is not modified.
    fn find_jump_forward_tokens(&mut self, sorted: &SortedVocabulary) -> ForcedTokenRun {
        let bytes = self.find_jump_forward_string();
        let vocab = Arc::clone(self.vocabulary());
        ForcedTokenRun::cover(bytes, &vocab, sorted)
    }

    /// Verifies a speculative k-token draft in one call: accepts tokens in
    /// order until one is rejected and returns the length of the accepted
    /// prefix. The matcher ends advanced by exactly that prefix — identical
    /// to a token-by-token [`accept_token`](Self::accept_token) loop — and
    /// each accepted token is an individual rollback unit, so any suffix of
    /// the draft can be rolled back afterwards.
    ///
    /// The default is the accept-token loop; implementations with cheaper
    /// snapshot machinery (e.g. the persistent-stack
    /// [`GrammarMatcher`](crate::GrammarMatcher)) override it.
    fn accept_tokens_speculative(&mut self, tokens: &[TokenId]) -> usize {
        for (i, &token) in tokens.iter().enumerate() {
            if self.accept_token(token).is_err() {
                return i;
            }
        }
        tokens.len()
    }

    /// Key identifying the shared component of this matcher's next mask: two
    /// matchers returning the same key may serve
    /// [`fill_next_token_bitmask_from_base`](Self::fill_next_token_bitmask_from_base)
    /// from one shared [`fill_mask_base`](Self::fill_mask_base) pass.
    /// `None` (the default) means the matcher cannot share a base.
    fn mask_batch_key(&self) -> Option<u64> {
        None
    }

    /// Fills `base` with the lane-independent portion of the next mask
    /// shared by every matcher with the same
    /// [`mask_batch_key`](Self::mask_batch_key). Returns `false` (leaving
    /// `base` unspecified) when no shared base exists — the default.
    fn fill_mask_base(&mut self, base: &mut TokenBitmask) -> bool {
        let _ = base;
        false
    }

    /// Like [`fill_next_token_bitmask`](Self::fill_next_token_bitmask) but
    /// starting from a shared `base` produced by a matcher with the same
    /// [`mask_batch_key`](Self::mask_batch_key). Must produce a bit-for-bit
    /// identical mask; the default ignores the base and fills from scratch.
    fn fill_next_token_bitmask_from_base(&mut self, mask: &mut TokenBitmask, base: &TokenBitmask) {
        let _ = base;
        self.fill_next_token_bitmask(mask);
    }

    /// Returns `true` if end-of-sequence would be accepted now.
    fn can_terminate(&mut self) -> bool;

    /// Returns `true` if end-of-sequence has been accepted.
    fn is_terminated(&self) -> bool;

    /// Resets the matcher to the start of its constraint, clearing history
    /// and statistics. A reset matcher must be indistinguishable from a
    /// freshly constructed one ([`MatcherPool`](crate::MatcherPool) relies on
    /// this when recycling).
    fn reset(&mut self);

    /// Constraint-kind-independent runtime counters.
    fn stats(&self) -> ConstraintStats;

    /// Drops the oldest rollback snapshots until at most `keep` remain — a
    /// memory-bounding hint used when an outer constraint (e.g. tag dispatch)
    /// caps an inner matcher's effective window. Implementations without
    /// per-unit history may ignore it (the default).
    fn trim_history(&mut self, keep: usize) {
        let _ = keep;
    }

    /// Identity of the compiled artifact this matcher was built from (the
    /// [`ConstraintFactory::factory_key`] of its factory), used by
    /// [`MatcherPool`](crate::MatcherPool) to refuse foreign matchers.
    /// The default (`0`) marks the matcher as not pool-recyclable.
    fn factory_key(&self) -> usize {
        0
    }
}

/// A compiled constraint artifact that can mint fresh matchers: the factory
/// side of [`ConstraintMatcher`], implemented by
/// [`CompiledGrammar`](crate::CompiledGrammar) and
/// [`CompiledTagDispatch`](crate::CompiledTagDispatch).
///
/// [`MatcherPool`](crate::MatcherPool) is built on this trait, which is what
/// lets one pool type recycle grammar matchers, tag-dispatch matchers, and
/// the per-segment inner matchers tag dispatch opens.
pub trait ConstraintFactory: Send + Sync + fmt::Debug {
    /// Creates a matcher positioned at the start of the constraint with the
    /// given rollback window.
    fn new_matcher(self: Arc<Self>, max_rollback: usize) -> Box<dyn ConstraintMatcher>;

    /// Stable identity of this compiled artifact while it is alive (its
    /// allocation address). Matchers report the same value via
    /// [`ConstraintMatcher::factory_key`] so pools can verify provenance.
    fn factory_key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// The vocabulary matchers of this factory produce masks for.
    fn vocabulary(&self) -> &Arc<Vocabulary>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::GrammarCompiler;
    use xg_tokenizer::test_vocabulary;

    #[test]
    fn both_matcher_kinds_drive_through_the_trait() {
        use xg_grammar::{StructuralTag, TagContent, TagSpec};

        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let grammar = compiler
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let dispatch = compiler.compile_tag_dispatch(&tag).unwrap();

        // One code path serves both constraint kinds.
        let mut lanes: Vec<(Box<dyn ConstraintMatcher>, &[u8])> = vec![
            (grammar.new_matcher(8), b"[42]"),
            (dispatch.new_matcher(8), b"see <n>42</n> ok"),
        ];
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        for (lane, text) in &mut lanes {
            lane.fill_next_token_bitmask(&mut mask);
            assert!(mask.count_allowed() > 0);
            lane.accept_bytes(text).unwrap();
            assert!(lane.can_terminate());
            assert_eq!(lane.rollback_window(), 1);
            lane.rollback(1).unwrap();
            assert_eq!(lane.max_rollback(), 8);
            assert_ne!(lane.factory_key(), 0);
            lane.reset();
            assert_eq!(lane.stats(), ConstraintStats::default());
        }
    }

    #[test]
    fn factory_keys_identify_the_compiled_artifact() {
        let vocab = Arc::new(test_vocabulary(600));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let a = compiler.compile_ebnf(r#"root ::= "a""#, "root").unwrap();
        let b = compiler.compile_ebnf(r#"root ::= "b""#, "root").unwrap();
        assert_ne!(a.factory_key(), b.factory_key());
        let matcher = Arc::clone(&a).new_matcher(crate::DEFAULT_MAX_ROLLBACK_TOKENS);
        assert_eq!(matcher.factory_key(), a.factory_key());
        assert_eq!(matcher.vocabulary().len(), vocab.len());
    }
}
