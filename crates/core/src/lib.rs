//! XGrammar core engine (reproduction): flexible and efficient structured
//! generation for large language models.
//!
//! This crate implements the paper's primary contribution:
//!
//! * the **adaptive token mask cache** (§3.1): per-automaton-node
//!   classification of the vocabulary into context-independent and
//!   context-dependent tokens, stored in accept-heavy / reject-heavy / bitset
//!   form ([`MaskCache`], [`NodeMaskEntry`]),
//! * **context expansion** (§3.2): expanded-suffix automata prune
//!   context-dependent tokens during preprocessing (automata extraction lives
//!   in `xg-automata`, its application in [`mask_cache`](MaskCache)
//!   construction),
//! * the **persistent execution stack** (§3.3): all matching stacks live in
//!   one shared tree with O(1) branching and rollback
//!   ([`PersistentStackTree`]),
//! * the **grammar matcher and compiler** used by serving engines
//!   ([`GrammarCompiler`], [`CompiledGrammar`], [`GrammarMatcher`],
//!   [`TokenBitmask`]), including jump-forward string detection (Appendix B),
//! * the **static-analysis lint layer**: grammar-level diagnostics from
//!   [`xg_grammar::analyze`] plus vocabulary-aware dead-state detection over
//!   the compiled automaton, recorded per compile ([`GrammarLintReport`]) and
//!   enforced by the compiler's [`LintMode`],
//! * the **serving concurrency layer** (§5): a budgeted LRU cache of compiled
//!   grammars with compile-once semantics under contention ([`GrammarCache`])
//!   and a pool of reusable per-request matchers ([`MatcherPool`]),
//! * the **[`ConstraintMatcher`] trait**: one runtime interface for every
//!   constrained lane kind (with [`ConstraintFactory`] as the compiled
//!   artifact side), so engines drive boxed trait objects instead of
//!   branching per matcher type,
//! * **tag dispatch** for agentic tool calling: free text passes through
//!   unconstrained (scanned by an Aho–Corasick trigger automaton) while
//!   trigger strings dispatch into constrained tagged segments
//!   ([`StructuralTagMatcher`], [`CompiledTagDispatch`]), with rollback and
//!   jump-forward across mode boundaries and boundary-union masks at segment
//!   ends.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use xg_core::{GrammarCompiler, GrammarMatcher, TokenBitmask};
//! use xg_tokenizer::test_vocabulary;
//!
//! // 1. Compile a grammar against a vocabulary (expensive, cached, shared).
//! let vocab = Arc::new(test_vocabulary(1000));
//! let compiler = GrammarCompiler::new(Arc::clone(&vocab));
//! let compiled = compiler.compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")?;
//!
//! // 2. Per request: create a matcher and alternate mask generation with
//! //    token acceptance.
//! let mut matcher = GrammarMatcher::new(compiled);
//! let mut mask = TokenBitmask::new_all_rejected(vocab.len());
//! matcher.fill_next_token_bitmask(&mut mask);
//! assert!(mask.count_allowed() > 0);
//! # Ok::<(), xg_grammar::GrammarError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compiler;
mod constraint;
mod dispatch_cache;
mod error;
pub mod executor;
mod grammar_cache;
mod lint;
mod mask;
mod mask_cache;
mod matcher;
mod matcher_pool;
mod persistent_stack;
mod tag_dispatch;

pub use compiler::{CompiledGrammar, CompilerConfig, GrammarCompiler, LintMode};
pub use constraint::{ConstraintFactory, ConstraintMatcher, ConstraintStats, ForcedTokenRun};
pub use dispatch_cache::{TagDispatchCache, TagDispatchCacheConfig, TagDispatchCacheStats};
pub use error::{AcceptError, RollbackError};
pub use grammar_cache::{GrammarCache, GrammarCacheConfig, GrammarCacheKey, GrammarCacheStats};
pub use lint::GrammarLintReport;
pub use mask::{MaskBatch, TokenBitmask};
pub use mask_cache::{
    build_mask_cache, MaskCache, MaskCacheBuildOptions, MaskCacheStats, NodeMaskEntry,
};
pub use matcher::{GrammarMatcher, MatcherStats, DEFAULT_MAX_ROLLBACK_TOKENS};
pub use matcher_pool::MatcherPool;
pub use persistent_stack::{PersistentStackTree, StackHandle};
pub use tag_dispatch::{
    CompiledTagDispatch, CompiledTrigger, DispatchMode, StructuralTagMatcher, TagDispatchStats,
};
