//! Grammar compilation: grammar + tokenizer info → [`CompiledGrammar`].
//!
//! Compilation runs the whole preprocessing pipeline of the paper: PDA
//! construction with structure optimizations (§3.4), expanded-suffix
//! extraction (§3.2) and adaptive token mask cache construction (§3.1). The
//! result is immutable and shared (`Arc`) between any number of
//! [`GrammarMatcher`](crate::GrammarMatcher)s, mirroring how one compiled
//! grammar serves many concurrent requests in a serving engine.
//!
//! [`GrammarCompiler`] additionally memoizes compiled grammars keyed by the
//! grammar text and compiler configuration, since serving workloads reuse a
//! small set of schemas across many requests.

use std::sync::Arc;

use xg_automata::{build_pda, extract_all_suffix_fsas, Fsa, Pda, PdaBuildOptions};
use xg_grammar::{Grammar, GrammarError};
use xg_tokenizer::{SortedVocabulary, TokenId, Vocabulary};

use crate::grammar_cache::{GrammarCache, GrammarCacheConfig, GrammarCacheKey};
use crate::lint::{lint_compiled, GrammarLintReport};
use crate::mask_cache::{build_mask_cache, MaskCache, MaskCacheBuildOptions, MaskCacheStats};

/// How the compiler treats the static-analysis lint pass.
///
/// The lint itself is cheap (linear fixpoints over the grammar plus a scan of
/// the already-built mask cache), so the modes differ in *consequence*, not
/// cost: `Strict` turns error-severity diagnostics into compile failures,
/// `Warn` records them on the [`CompiledGrammar`] for callers to inspect,
/// `Off` skips the pass entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LintMode {
    /// Skip the lint pass; no report is stored.
    Off,
    /// Run the lint and store the [`GrammarLintReport`] on the compiled
    /// grammar, but never fail compilation.
    #[default]
    Warn,
    /// Run the lint; error-severity diagnostics make the *checked* compile
    /// entry points ([`GrammarCompiler::compile_grammar_checked`] and the
    /// `Result`-returning conveniences built on it) fail with
    /// [`GrammarError::Lint`].
    Strict,
}

/// Configuration of the grammar compiler. The four boolean switches are the
/// ablation axes of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerConfig {
    /// Inline fragment rules into their parents (§3.4).
    pub enable_rule_inlining: bool,
    /// Merge equivalent automaton nodes (§3.4).
    pub enable_node_merging: bool,
    /// Precompute the adaptive token mask cache (§3.1). When disabled, every
    /// token is treated as context-dependent and checked at runtime — the
    /// "PDA baseline" configuration.
    pub enable_mask_cache: bool,
    /// Apply context expansion to shrink the context-dependent sets (§3.2).
    pub enable_context_expansion: bool,
    /// Number of preprocessing threads (0 = available parallelism).
    pub num_threads: usize,
    /// Static-analysis lint mode (defaults to [`LintMode::Warn`]). The
    /// vocabulary-aware dead-state check requires the mask cache; with
    /// `enable_mask_cache = false` only the grammar-level analysis runs.
    pub lint_mode: LintMode,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            enable_rule_inlining: true,
            enable_node_merging: true,
            enable_mask_cache: true,
            enable_context_expansion: true,
            num_threads: 0,
            lint_mode: LintMode::Warn,
        }
    }
}

impl CompilerConfig {
    /// The fully un-optimized configuration (the "PDA Baseline" ablation row).
    pub fn baseline() -> Self {
        CompilerConfig {
            enable_rule_inlining: false,
            enable_node_merging: false,
            enable_mask_cache: false,
            enable_context_expansion: false,
            num_threads: 0,
            lint_mode: LintMode::Off,
        }
    }

    /// Returns this configuration with the given lint mode.
    pub fn with_lint_mode(mut self, mode: LintMode) -> Self {
        self.lint_mode = mode;
        self
    }

    fn pda_options(&self) -> PdaBuildOptions {
        PdaBuildOptions {
            inline_rules: self.enable_rule_inlining,
            merge_nodes: self.enable_node_merging,
            ..Default::default()
        }
    }
}

/// A grammar compiled against a specific vocabulary, ready to instantiate
/// matchers.
#[derive(Debug)]
pub struct CompiledGrammar {
    pda: Pda,
    vocab: Arc<Vocabulary>,
    sorted: SortedVocabulary,
    mask_cache: Option<MaskCache>,
    suffix_fsas: Vec<Fsa>,
    config: CompilerConfig,
    /// Lint findings (present unless the config's lint mode is `Off`).
    lint: Option<GrammarLintReport>,
    /// Wall-clock time spent in preprocessing.
    preprocessing_time: std::time::Duration,
}

impl CompiledGrammar {
    /// Compiles `grammar` against `vocab` with the given configuration.
    pub fn compile(
        grammar: &Grammar,
        vocab: Arc<Vocabulary>,
        config: &CompilerConfig,
    ) -> CompiledGrammar {
        let start = std::time::Instant::now();
        let pda = build_pda(grammar, &config.pda_options());
        let sorted = SortedVocabulary::new(&vocab);
        let suffix_fsas = extract_all_suffix_fsas(&pda);
        let mask_cache = if config.enable_mask_cache {
            Some(build_mask_cache(
                &pda,
                &vocab,
                &sorted,
                Some(&suffix_fsas),
                &MaskCacheBuildOptions {
                    context_expansion: config.enable_context_expansion,
                    num_threads: config.num_threads,
                },
            ))
        } else {
            None
        };
        let lint = match config.lint_mode {
            LintMode::Off => None,
            LintMode::Warn | LintMode::Strict => {
                Some(lint_compiled(grammar, &pda, mask_cache.as_ref()))
            }
        };
        CompiledGrammar {
            pda,
            vocab,
            sorted,
            mask_cache,
            suffix_fsas,
            config: config.clone(),
            lint,
            preprocessing_time: start.elapsed(),
        }
    }

    /// The compiled pushdown automaton.
    pub fn pda(&self) -> &Pda {
        &self.pda
    }

    /// The vocabulary this grammar was compiled against.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The lexicographically sorted token index.
    pub fn sorted_vocabulary(&self) -> &SortedVocabulary {
        &self.sorted
    }

    /// The adaptive token mask cache, if enabled.
    pub fn mask_cache(&self) -> Option<&MaskCache> {
        self.mask_cache.as_ref()
    }

    /// The expanded-suffix automata, one per PDA rule.
    pub fn suffix_fsas(&self) -> &[Fsa] {
        &self.suffix_fsas
    }

    /// The configuration used to compile this grammar.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The lint report recorded during compilation, or `None` when the
    /// configuration's lint mode is [`LintMode::Off`].
    pub fn lint_report(&self) -> Option<&GrammarLintReport> {
        self.lint.as_ref()
    }

    /// Preprocessing statistics (empty default when the mask cache is
    /// disabled).
    pub fn stats(&self) -> MaskCacheStats {
        self.mask_cache
            .as_ref()
            .map(|c| *c.stats())
            .unwrap_or_default()
    }

    /// Wall-clock preprocessing time.
    pub fn preprocessing_time(&self) -> std::time::Duration {
        self.preprocessing_time
    }

    /// The end-of-sequence token of the vocabulary, if any.
    pub fn eos_token(&self) -> Option<TokenId> {
        self.vocab.eos()
    }

    /// Estimated heap memory held by this compiled grammar, dominated by the
    /// adaptive token mask cache (the per-node
    /// [`NodeMaskEntry::memory_bytes`](crate::NodeMaskEntry::memory_bytes)
    /// sums in [`MaskCacheStats::memory_bytes`]). Used by
    /// [`GrammarCache`](crate::GrammarCache) to enforce its byte budget.
    pub fn memory_bytes(&self) -> usize {
        let mask_cache = self
            .mask_cache
            .as_ref()
            .map(|c| c.stats().memory_bytes)
            .unwrap_or(0);
        let automata = self.pda.node_count() * 96
            + self.suffix_fsas.iter().map(|f| f.len() * 48).sum::<usize>();
        // The sorted index stores one id + one LCP length per token.
        mask_cache + automata + self.sorted.len() * 12
    }
}

/// A caching grammar compiler bound to one vocabulary.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::GrammarCompiler;
/// use xg_tokenizer::test_vocabulary;
///
/// let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(600)));
/// let grammar = xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap();
/// let compiled = compiler.compile_grammar(&grammar);
/// let again = compiler.compile_grammar(&grammar);
/// assert!(Arc::ptr_eq(&compiled, &again)); // served from the cache
/// ```
#[derive(Debug)]
pub struct GrammarCompiler {
    vocab: Arc<Vocabulary>,
    /// Fingerprint of `vocab`, computed once (hashing a 128k-token
    /// vocabulary per compile request would be wasteful).
    vocab_fingerprint: u64,
    config: CompilerConfig,
    /// Key component of `config`, likewise computed once.
    config_hash: u64,
    cache: Arc<GrammarCache>,
    /// Hits/misses attributable to *this* compiler. The cache's own counters
    /// aggregate over every compiler sharing it, so per-compiler reporting
    /// (e.g. per-batch serving metrics) must not be derived from them.
    local_hits: std::sync::atomic::AtomicU64,
    local_misses: std::sync::atomic::AtomicU64,
    /// Cached structural-tag compilations (the combined-grammar *builds*;
    /// the grammars themselves live in the shared [`GrammarCache`]). A
    /// byte-budgeted LRU, not an unbounded memo: churning tool registries
    /// evict old dispatches instead of leaking them. See
    /// [`compile_tag_dispatch`](Self::compile_tag_dispatch).
    dispatch_cache: crate::TagDispatchCache,
}

impl GrammarCompiler {
    /// Creates a compiler with the default configuration and a private,
    /// unbounded memoization cache.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        Self::with_config(vocab, CompilerConfig::default())
    }

    /// Creates a compiler with an explicit configuration and a private,
    /// unbounded memoization cache.
    pub fn with_config(vocab: Arc<Vocabulary>, config: CompilerConfig) -> Self {
        Self::with_cache(
            vocab,
            config,
            Arc::new(GrammarCache::new(GrammarCacheConfig::unbounded())),
        )
    }

    /// Creates a compiler backed by a shared [`GrammarCache`]. Several
    /// compilers (even ones bound to different vocabularies or
    /// configurations — both participate in the cache key) can share one
    /// cache, giving a serving process a single budgeted pool of compiled
    /// grammars with compile-once semantics under concurrent requests.
    pub fn with_cache(
        vocab: Arc<Vocabulary>,
        config: CompilerConfig,
        cache: Arc<GrammarCache>,
    ) -> Self {
        GrammarCompiler {
            vocab_fingerprint: vocab.fingerprint(),
            vocab,
            config_hash: GrammarCacheKey::config_hash(&config),
            config,
            cache,
            local_hits: std::sync::atomic::AtomicU64::new(0),
            local_misses: std::sync::atomic::AtomicU64::new(0),
            dispatch_cache: crate::TagDispatchCache::new(crate::TagDispatchCacheConfig::default()),
        }
    }

    /// Replaces this compiler's structural-tag dispatch cache with one using
    /// the given budget. Builder-style; call before the compiler is shared.
    #[must_use]
    pub fn with_dispatch_cache_config(mut self, config: crate::TagDispatchCacheConfig) -> Self {
        self.dispatch_cache = crate::TagDispatchCache::new(config);
        self
    }

    /// The structural-tag dispatch cache: compiled [`CompiledTagDispatch`]es
    /// keyed by their full registry description, LRU-evicted under a byte
    /// budget. Exposes hit/miss/eviction statistics; sidecar state keyed per
    /// dispatch (matcher pools, metrics) should be pruned when
    /// [`eviction_count`](crate::TagDispatchCache::eviction_count) moves.
    ///
    /// [`CompiledTagDispatch`]: crate::CompiledTagDispatch
    pub fn dispatch_cache(&self) -> &crate::TagDispatchCache {
        &self.dispatch_cache
    }

    /// The vocabulary this compiler is bound to.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The compiler configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The compiled-grammar cache backing this compiler (private unless the
    /// compiler was built with [`with_cache`](Self::with_cache)).
    pub fn cache(&self) -> &Arc<GrammarCache> {
        &self.cache
    }

    /// The cache key this compiler uses for `grammar` (its vocabulary and
    /// configuration are baked in). Lets callers associate sidecar state
    /// (matcher pools, metrics) with cache entries and prune it on eviction.
    pub fn cache_key(&self, grammar: &Grammar) -> GrammarCacheKey {
        GrammarCacheKey::with_config_hash(grammar, self.vocab_fingerprint, self.config_hash)
    }

    /// Compiles a grammar, reusing a previously compiled instance when the
    /// same grammar (and vocabulary and configuration) was compiled before.
    /// Concurrent calls for the same uncached grammar compile it exactly
    /// once; the losers of the race block and share the winner's result.
    pub fn compile_grammar(&self, grammar: &Grammar) -> Arc<CompiledGrammar> {
        self.compile_grammar_with_key(self.cache_key(grammar), grammar)
    }

    /// Like [`compile_grammar`](Self::compile_grammar), but with a key the
    /// caller already computed via [`cache_key`](Self::cache_key) — hashing
    /// the grammar source is the expensive part of a cache hit, so hot paths
    /// that need the key for their own bookkeeping pass it back in instead of
    /// hashing twice.
    pub fn compile_grammar_with_key(
        &self,
        key: GrammarCacheKey,
        grammar: &Grammar,
    ) -> Arc<CompiledGrammar> {
        use std::sync::atomic::Ordering;
        let (compiled, compiled_here) = self.cache.get_or_insert_with_outcome(key, || {
            CompiledGrammar::compile(grammar, Arc::clone(&self.vocab), &self.config)
        });
        if compiled_here {
            self.local_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
        }
        compiled
    }

    /// Like [`compile_grammar`](Self::compile_grammar), but enforcing the
    /// configured [`LintMode`]: in `Strict` mode, error-severity lint
    /// diagnostics fail the compile instead of being recorded.
    ///
    /// The compiled grammar (with its lint report) is cached either way, so
    /// repeated submissions of a rejected grammar fail fast from the cache.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Lint`] carrying the error-severity
    /// [`Diagnostic`](xg_grammar::Diagnostic)s when the lint mode is
    /// [`LintMode::Strict`] and the report contains errors.
    pub fn compile_grammar_checked(
        &self,
        grammar: &Grammar,
    ) -> Result<Arc<CompiledGrammar>, GrammarError> {
        self.compile_grammar_checked_with_key(self.cache_key(grammar), grammar)
    }

    /// [`compile_grammar_checked`](Self::compile_grammar_checked) with a
    /// caller-computed cache key (see
    /// [`compile_grammar_with_key`](Self::compile_grammar_with_key)).
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Lint`] under the same conditions as
    /// [`compile_grammar_checked`](Self::compile_grammar_checked).
    pub fn compile_grammar_checked_with_key(
        &self,
        key: GrammarCacheKey,
        grammar: &Grammar,
    ) -> Result<Arc<CompiledGrammar>, GrammarError> {
        let compiled = self.compile_grammar_with_key(key, grammar);
        if self.config.lint_mode == LintMode::Strict {
            if let Some(report) = compiled.lint_report() {
                if report.has_errors() {
                    return Err(GrammarError::Lint {
                        diagnostics: report.errors().cloned().collect(),
                    });
                }
            }
        }
        Ok(compiled)
    }

    /// Cache counters from *this compiler's* point of view: `hits`/`misses`
    /// count only this compiler's requests (meaningful even when the backing
    /// [`GrammarCache`] is shared), while the `evictions`/`current_bytes`/
    /// `entries` gauges describe the whole backing cache.
    pub fn local_cache_stats(&self) -> crate::GrammarCacheStats {
        use std::sync::atomic::Ordering;
        let global = self.cache.stats();
        crate::GrammarCacheStats {
            hits: self.local_hits.load(Ordering::Relaxed),
            misses: self.local_misses.load(Ordering::Relaxed),
            ..global
        }
    }

    /// Parses and compiles a GBNF-style EBNF grammar text.
    ///
    /// # Errors
    ///
    /// Returns the parse/validation error of [`xg_grammar::parse_ebnf`], or
    /// [`GrammarError::Lint`] in strict lint mode.
    pub fn compile_ebnf(
        &self,
        text: &str,
        root: &str,
    ) -> Result<Arc<CompiledGrammar>, GrammarError> {
        let grammar = xg_grammar::parse_ebnf(text, root)?;
        self.compile_grammar_checked(&grammar)
    }

    /// Converts and compiles a JSON Schema.
    ///
    /// # Errors
    ///
    /// Returns the conversion error of [`xg_grammar::json_schema_to_grammar`],
    /// or [`GrammarError::Lint`] in strict lint mode.
    pub fn compile_json_schema(
        &self,
        schema: &serde_json::Value,
    ) -> Result<Arc<CompiledGrammar>, GrammarError> {
        let grammar = xg_grammar::json_schema_to_grammar(schema)?;
        self.compile_grammar_checked(&grammar)
    }

    /// Compiles the built-in unconstrained JSON grammar (ECMA-404).
    pub fn compile_builtin_json(&self) -> Arc<CompiledGrammar> {
        self.compile_grammar(&xg_grammar::builtin::json_grammar())
    }

    /// Number of compiled grammars currently cached.
    pub fn cached_count(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if a cached structural-tag compilation with this
    /// factory identity (see
    /// [`ConstraintFactory::factory_key`](crate::ConstraintFactory::factory_key))
    /// is still alive in this compiler's dispatch cache. Lets callers holding
    /// sidecar state per compiled dispatch (matcher pools, metrics) prune it
    /// once the cache has evicted the entry.
    pub fn has_cached_tag_dispatch(&self, factory_key: usize) -> bool {
        self.dispatch_cache.contains_factory(factory_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_tokenizer::test_vocabulary;

    fn compiler() -> GrammarCompiler {
        GrammarCompiler::new(Arc::new(test_vocabulary(800)))
    }

    #[test]
    fn compile_ebnf_and_cache() {
        let c = compiler();
        let a = c
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        let b = c
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.cached_count(), 1);
        let other = c.compile_ebnf(r#"root ::= "x""#, "root").unwrap();
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(c.cached_count(), 2);
    }

    #[test]
    fn compile_json_schema() {
        let c = compiler();
        let schema = serde_json::json!({
            "type": "object",
            "properties": {"name": {"type": "string"}},
            "required": ["name"]
        });
        let compiled = c.compile_json_schema(&schema).unwrap();
        assert!(compiled.mask_cache().is_some());
        assert!(compiled.stats().nodes > 0);
    }

    #[test]
    fn baseline_config_skips_mask_cache() {
        let c = GrammarCompiler::with_config(
            Arc::new(test_vocabulary(600)),
            CompilerConfig::baseline(),
        );
        let compiled = c
            .compile_ebnf(r#"root ::= "[" [a-z]* "]""#, "root")
            .unwrap();
        assert!(compiled.mask_cache().is_none());
        assert_eq!(compiled.stats(), MaskCacheStats::default());
    }

    #[test]
    fn invalid_grammar_propagates_error() {
        let c = compiler();
        assert!(c.compile_ebnf(r#"root ::= missing"#, "root").is_err());
        assert!(c.compile_json_schema(&serde_json::json!(false)).is_err());
    }

    #[test]
    fn tag_dispatch_memo_membership_is_queryable() {
        use xg_grammar::{StructuralTag, TagContent, TagSpec};
        let c = compiler();
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let dispatch = c.compile_tag_dispatch(&tag).unwrap();
        let key = crate::ConstraintFactory::factory_key(&*dispatch);
        assert!(c.has_cached_tag_dispatch(key));
        assert!(!c.has_cached_tag_dispatch(key.wrapping_add(1)));
    }

    #[test]
    fn warn_mode_records_diagnostics_without_failing() {
        let c = compiler();
        // Unsatisfiable: `a` has no base case. Default mode is Warn.
        let compiled = c
            .compile_ebnf(
                r#"
                root ::= a
                a ::= "x" a
                "#,
                "root",
            )
            .unwrap();
        let report = compiled.lint_report().unwrap();
        assert!(report.has_errors());
    }

    #[test]
    fn strict_mode_rejects_unsatisfiable_grammars() {
        let c = GrammarCompiler::with_config(
            Arc::new(test_vocabulary(600)),
            CompilerConfig::default().with_lint_mode(LintMode::Strict),
        );
        let err = c
            .compile_ebnf(
                r#"
                root ::= a
                a ::= "x" a
                "#,
                "root",
            )
            .unwrap_err();
        assert!(matches!(err, GrammarError::Lint { .. }));
        assert!(err.to_string().contains("unsatisfiable-grammar"));
        // Clean grammars still compile.
        assert!(c.compile_ebnf(r#"root ::= "ok""#, "root").is_ok());
    }

    #[test]
    fn off_mode_skips_the_lint_entirely() {
        let c = GrammarCompiler::with_config(
            Arc::new(test_vocabulary(600)),
            CompilerConfig::default().with_lint_mode(LintMode::Off),
        );
        let compiled = c
            .compile_ebnf(
                r#"
                root ::= a
                a ::= "x" a
                "#,
                "root",
            )
            .unwrap();
        assert!(compiled.lint_report().is_none());
    }

    #[test]
    fn strict_rejection_is_cached_and_fails_fast() {
        let c = GrammarCompiler::with_config(
            Arc::new(test_vocabulary(600)),
            CompilerConfig::default().with_lint_mode(LintMode::Strict),
        );
        let g = xg_grammar::parse_ebnf(
            r#"
            root ::= a
            a ::= "x" a
            "#,
            "root",
        )
        .unwrap();
        assert!(c.compile_grammar_checked(&g).is_err());
        assert!(c.compile_grammar_checked(&g).is_err());
        // One compile, one cache hit: the rejection is served from cache.
        let stats = c.local_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn lint_modes_produce_distinct_cache_keys() {
        let g = xg_grammar::parse_ebnf(r#"root ::= "a""#, "root").unwrap();
        let vocab = Arc::new(test_vocabulary(600));
        let warn = GrammarCompiler::new(Arc::clone(&vocab));
        let off = GrammarCompiler::with_config(
            Arc::clone(&vocab),
            CompilerConfig::default().with_lint_mode(LintMode::Off),
        );
        assert_ne!(warn.cache_key(&g), off.cache_key(&g));
    }

    #[test]
    fn strict_mode_rejects_dead_triggers() {
        use xg_grammar::{StructuralTag, TagContent, TagSpec};
        let c = GrammarCompiler::with_config(
            Arc::new(test_vocabulary(600)),
            CompilerConfig::default().with_lint_mode(LintMode::Strict),
        );
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<f>".into(),
            content: TagContent::Ebnf {
                // No base case: the segment can never complete.
                text: "root ::= \"x\" root".into(),
                root: "root".into(),
            },
            end: "</f>".into(),
        }]);
        let err = c.compile_tag_dispatch(&tag).unwrap_err();
        assert!(matches!(err, GrammarError::Lint { .. }));
        assert!(err.to_string().contains("dead-trigger"));
    }

    #[test]
    fn config_differences_produce_distinct_cache_entries() {
        let vocab = Arc::new(test_vocabulary(600));
        let full = GrammarCompiler::new(Arc::clone(&vocab));
        let base = GrammarCompiler::with_config(vocab, CompilerConfig::baseline());
        let g = xg_grammar::parse_ebnf(r#"root ::= "a" | "b""#, "root").unwrap();
        let a = full.compile_grammar(&g);
        let b = base.compile_grammar(&g);
        assert!(a.mask_cache().is_some());
        assert!(b.mask_cache().is_none());
    }
}
