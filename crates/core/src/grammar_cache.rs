//! A concurrent compiled-grammar cache for long-lived serving engines.
//!
//! The paper's serving story (§5, "Grammar Compiler") assumes each grammar is
//! compiled once and then shared by many concurrent requests. This module
//! provides the shared layer: an LRU cache keyed by
//! `(grammar source hash, tokenizer fingerprint, compiler configuration)`
//! with
//!
//! * **compile-once semantics under contention** — when N threads request the
//!   same uncached grammar simultaneously, exactly one runs the compiler and
//!   the others block on the same slot and receive the same
//!   [`Arc<CompiledGrammar>`] (a `Mutex`-guarded map of per-key
//!   [`OnceLock`] slots; std-only),
//! * a **byte budget** — entry sizes come from
//!   [`CompiledGrammar::memory_bytes`] (which sums the adaptive mask cache's
//!   [`NodeMaskEntry::memory_bytes`](crate::NodeMaskEntry::memory_bytes) over
//!   all automaton nodes); least-recently-used entries are evicted when the
//!   budget is exceeded. Evicted grammars stay alive for requests already
//!   holding their `Arc`,
//! * **hit/miss/eviction statistics** for serving dashboards and the
//!   `cache_serving` experiment.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use xg_core::{CompilerConfig, GrammarCache, GrammarCacheConfig};
//! use xg_tokenizer::test_vocabulary;
//!
//! let cache = GrammarCache::new(GrammarCacheConfig::default());
//! let vocab = Arc::new(test_vocabulary(600));
//! let grammar = xg_grammar::parse_ebnf(r#"root ::= "x" | "y""#, "root").unwrap();
//! let a = cache.get_or_compile(&grammar, &vocab, &CompilerConfig::default());
//! let b = cache.get_or_compile(&grammar, &vocab, &CompilerConfig::default());
//! assert!(Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use xg_grammar::Grammar;
use xg_tokenizer::Vocabulary;

use crate::compiler::{CompiledGrammar, CompilerConfig};

/// Configuration of a [`GrammarCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrammarCacheConfig {
    /// Byte budget across all cached compiled grammars (estimated with
    /// [`CompiledGrammar::memory_bytes`]). When an insertion pushes the total
    /// over the budget, least-recently-used entries are evicted. A single
    /// entry larger than the budget is still cached until the next insertion.
    pub max_bytes: usize,
    /// Maximum number of cached grammars, enforced the same way.
    pub max_entries: usize,
}

impl Default for GrammarCacheConfig {
    fn default() -> Self {
        GrammarCacheConfig {
            // Generous defaults for a serving process: a few hundred MB of
            // mask-cache data, far more distinct schemas than any workload in
            // the paper uses.
            max_bytes: 256 * 1024 * 1024,
            max_entries: 1024,
        }
    }
}

impl GrammarCacheConfig {
    /// An unbounded cache (no eviction), useful for tests and short-lived
    /// batch jobs.
    pub fn unbounded() -> Self {
        GrammarCacheConfig {
            max_bytes: usize::MAX,
            max_entries: usize::MAX,
        }
    }
}

/// Cache key of one compiled grammar: grammar source, tokenizer and compiler
/// configuration all participate, so one cache can be shared across
/// vocabularies and ablation configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GrammarCacheKey {
    grammar_hash: u64,
    vocab_fingerprint: u64,
    config_hash: u64,
}

impl GrammarCacheKey {
    /// Computes the key for a grammar / vocabulary-fingerprint / configuration
    /// triple. Use [`Vocabulary::fingerprint`] (computed once per vocabulary,
    /// it hashes every token) for the second component.
    pub fn new(grammar: &Grammar, vocab_fingerprint: u64, config: &CompilerConfig) -> Self {
        Self::with_config_hash(grammar, vocab_fingerprint, Self::config_hash(config))
    }

    /// Like [`new`](Self::new) with a pre-computed
    /// [`config_hash`](Self::config_hash) — for hot paths where the
    /// configuration is fixed and only the grammar varies per request.
    ///
    /// The grammar component is the hashcons-based
    /// [`Grammar::structural_fingerprint`]: structurally identical grammars —
    /// even independently built ones — map to the same key, and a grammar
    /// that already computed its fingerprint contributes O(1) work per key
    /// instead of re-serializing its AST.
    pub fn with_config_hash(grammar: &Grammar, vocab_fingerprint: u64, config_hash: u64) -> Self {
        GrammarCacheKey {
            grammar_hash: grammar.structural_fingerprint(),
            vocab_fingerprint,
            config_hash,
        }
    }

    /// The configuration component of the key.
    pub fn config_hash(config: &CompilerConfig) -> u64 {
        let mut hasher = DefaultHasher::new();
        format!("{config:?}").hash(&mut hasher);
        hasher.finish()
    }
}

/// Counters exposed by a [`GrammarCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrammarCacheStats {
    /// Requests answered from the cache (including requests that joined an
    /// in-flight compilation instead of starting their own).
    pub hits: u64,
    /// Requests that had to start a compilation.
    pub misses: u64,
    /// Entries evicted to stay within the byte / entry budget.
    pub evictions: u64,
    /// Estimated bytes currently held by cached grammars.
    pub current_bytes: u64,
    /// Number of cached grammars (including in-flight compilations).
    pub entries: u64,
}

impl GrammarCacheStats {
    /// Fraction of requests served without compiling, in `[0, 1]`.
    /// Returns 0 when no requests have been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier` (for per-batch reporting);
    /// gauge fields (`current_bytes`, `entries`) keep the newer value.
    pub fn delta_since(&self, earlier: &GrammarCacheStats) -> GrammarCacheStats {
        GrammarCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            current_bytes: self.current_bytes,
            entries: self.entries,
        }
    }
}

/// One cache slot. The `OnceLock` is shared with every thread waiting on the
/// same key, giving compile-once semantics without holding the map lock
/// during compilation.
struct Slot {
    cell: Arc<OnceLock<Arc<CompiledGrammar>>>,
    /// LRU clock value of the most recent access.
    last_used: u64,
    /// Estimated size; 0 while the compilation is still in flight.
    bytes: usize,
}

#[derive(Default)]
struct CacheState {
    slots: HashMap<GrammarCacheKey, Slot>,
    clock: u64,
    total_bytes: usize,
}

/// A thread-safe LRU cache of [`CompiledGrammar`]s with a byte budget and
/// compile-once semantics. See the `grammar_cache` module docs for the
/// design.
pub struct GrammarCache {
    config: GrammarCacheConfig,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for GrammarCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrammarCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl GrammarCache {
    /// Creates a cache with the given budget.
    pub fn new(config: GrammarCacheConfig) -> Self {
        GrammarCache {
            config,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The budget this cache was created with.
    pub fn config(&self) -> &GrammarCacheConfig {
        &self.config
    }

    /// Current counters. `hits`/`misses`/`evictions` are monotonically
    /// increasing; `current_bytes`/`entries` are gauges.
    pub fn stats(&self) -> GrammarCacheStats {
        let state = self.lock();
        GrammarCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            current_bytes: state.total_bytes as u64,
            entries: state.slots.len() as u64,
        }
    }

    /// Number of cached grammars (including in-flight compilations).
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Returns `true` if `key` is currently cached (or compiling). Does not
    /// count as an access for LRU purposes — callers use this to prune
    /// sidecar state (e.g. matcher pools) for evicted grammars.
    pub fn contains(&self, key: &GrammarCacheKey) -> bool {
        self.lock().slots.contains_key(key)
    }

    /// Total evictions so far (a lock-free read of the same counter
    /// [`stats`](Self::stats) reports). Sidecar caches snapshot this to skip
    /// pruning entirely while no eviction has happened.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Returns `true` if the cache holds no grammars.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached grammar (requests already holding an `Arc` keep
    /// theirs). Every removed entry counts as an eviction, so sidecar caches
    /// keyed on [`eviction_count`](Self::eviction_count) notice the purge;
    /// the hit/miss counters are not reset.
    pub fn clear(&self) {
        let mut state = self.lock();
        let removed = state.slots.len() as u64;
        state.slots.clear();
        state.total_bytes = 0;
        self.evictions.fetch_add(removed, Ordering::Relaxed);
    }

    /// Convenience wrapper around [`get_or_insert_with`](Self::get_or_insert_with)
    /// that computes the key (hashing the full vocabulary each call — callers
    /// on a hot path should hold the [`Vocabulary::fingerprint`] and build the
    /// key themselves) and compiles with [`CompiledGrammar::compile`].
    pub fn get_or_compile(
        &self,
        grammar: &Grammar,
        vocab: &Arc<Vocabulary>,
        config: &CompilerConfig,
    ) -> Arc<CompiledGrammar> {
        let key = GrammarCacheKey::new(grammar, vocab.fingerprint(), config);
        self.get_or_insert_with(key, || {
            CompiledGrammar::compile(grammar, Arc::clone(vocab), config)
        })
    }

    /// Looks up `key`, compiling with `compile` on a miss. When several
    /// threads race on the same uncached key, exactly one `compile` closure
    /// runs; the rest block until it finishes and receive the identical
    /// `Arc`. The map lock is *not* held while compiling, so requests for
    /// other grammars proceed concurrently.
    pub fn get_or_insert_with<F>(&self, key: GrammarCacheKey, compile: F) -> Arc<CompiledGrammar>
    where
        F: FnOnce() -> CompiledGrammar,
    {
        self.get_or_insert_with_outcome(key, compile).0
    }

    /// Like [`get_or_insert_with`](Self::get_or_insert_with), additionally
    /// reporting whether *this* call ran the compiler (`true`) or was served
    /// by the cache / an in-flight compilation (`false`). Callers sharing one
    /// cache use this to keep per-caller hit/miss counters — the cache-wide
    /// counters in [`stats`](Self::stats) aggregate over every sharer.
    pub fn get_or_insert_with_outcome<F>(
        &self,
        key: GrammarCacheKey,
        compile: F,
    ) -> (Arc<CompiledGrammar>, bool)
    where
        F: FnOnce() -> CompiledGrammar,
    {
        // Phase 1 (under the lock): find or create the slot for this key.
        let cell = {
            let mut state = self.lock();
            state.clock += 1;
            let clock = state.clock;
            match state.slots.get_mut(&key) {
                Some(slot) => {
                    slot.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(&slot.cell)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    state.slots.insert(
                        key,
                        Slot {
                            cell: Arc::clone(&cell),
                            last_used: clock,
                            bytes: 0,
                        },
                    );
                    cell
                }
            }
        };

        // Phase 2 (lock released): initialize the slot. `OnceLock` guarantees
        // the closure runs at most once across all racing threads.
        let mut compiled_here = false;
        let compiled = Arc::clone(cell.get_or_init(|| {
            compiled_here = true;
            Arc::new(compile())
        }));

        // Phase 3: the compiling thread accounts the entry size and enforces
        // the budget.
        if compiled_here {
            let mut state = self.lock();
            if let Some(slot) = state.slots.get_mut(&key) {
                // Account only the slot this thread initialized: if our slot
                // was evicted (or cleared) mid-compile and a different thread
                // re-inserted the key, that thread owns the new slot's
                // accounting — touching it here would double-count bytes
                // that no later eviction could ever subtract.
                if Arc::ptr_eq(&slot.cell, &cell) {
                    slot.bytes = compiled.memory_bytes();
                    state.total_bytes += slot.bytes;
                }
            }
            self.evict_over_budget(&mut state, key);
        }
        (compiled, compiled_here)
    }

    /// Evicts least-recently-used *initialized* entries until the cache is
    /// within budget. `just_inserted` is exempted so a fresh entry is not
    /// immediately bounced by its own insertion.
    fn evict_over_budget(&self, state: &mut CacheState, just_inserted: GrammarCacheKey) {
        let over = |state: &CacheState| {
            state.total_bytes > self.config.max_bytes || state.slots.len() > self.config.max_entries
        };
        while over(state) {
            let victim = state
                .slots
                .iter()
                .filter(|(k, slot)| **k != just_inserted && slot.cell.get().is_some())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                break; // Only in-flight or just-inserted entries remain.
            };
            if let Some(slot) = state.slots.remove(&victim) {
                state.total_bytes = state.total_bytes.saturating_sub(slot.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use xg_tokenizer::test_vocabulary;

    fn grammar(src: &str) -> Grammar {
        xg_grammar::parse_ebnf(src, "root").unwrap()
    }

    #[test]
    fn hit_miss_and_pointer_identity() {
        let cache = GrammarCache::new(GrammarCacheConfig::default());
        let vocab = Arc::new(test_vocabulary(600));
        let g = grammar(r#"root ::= "[" [0-9]+ "]""#);
        let cfg = CompilerConfig::default();
        let a = cache.get_or_compile(&g, &vocab, &cfg);
        let b = cache.get_or_compile(&g, &vocab, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.current_bytes > 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn structurally_shared_recompile_hits_interned_artifacts() {
        // Two *independently built* grammars with identical structure share
        // one hashcons fingerprint, so the second compile request is a pure
        // cache hit on the interned artifact (no recompilation).
        let cache = GrammarCache::new(GrammarCacheConfig::default());
        let vocab = Arc::new(test_vocabulary(600));
        let cfg = CompilerConfig::default();
        let text = r#"root ::= "[" item ("," item)* "]"
                      item ::= [0-9]+"#;
        let a = grammar(text);
        let b = grammar(text);
        assert_eq!(
            GrammarCacheKey::new(&a, vocab.fingerprint(), &cfg),
            GrammarCacheKey::new(&b, vocab.fingerprint(), &cfg)
        );
        let ca = cache.get_or_compile(&a, &vocab, &cfg);
        let cb = cache.get_or_compile(&b, &vocab, &cfg);
        assert!(Arc::ptr_eq(&ca, &cb));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn key_distinguishes_grammar_vocab_and_config() {
        let vocab_a = Arc::new(test_vocabulary(600));
        let vocab_b = Arc::new(test_vocabulary(800));
        let g1 = grammar(r#"root ::= "a""#);
        let g2 = grammar(r#"root ::= "b""#);
        let full = CompilerConfig::default();
        let base = CompilerConfig::baseline();
        let reference = GrammarCacheKey::new(&g1, vocab_a.fingerprint(), &full);
        assert_eq!(
            reference,
            GrammarCacheKey::new(&g1, vocab_a.fingerprint(), &full)
        );
        assert_ne!(
            reference,
            GrammarCacheKey::new(&g2, vocab_a.fingerprint(), &full)
        );
        assert_ne!(
            reference,
            GrammarCacheKey::new(&g1, vocab_b.fingerprint(), &full)
        );
        assert_ne!(
            reference,
            GrammarCacheKey::new(&g1, vocab_a.fingerprint(), &base)
        );
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let vocab = Arc::new(test_vocabulary(600));
        let cfg = CompilerConfig::default();
        // Budget sized to hold roughly one compiled grammar.
        let probe = GrammarCache::new(GrammarCacheConfig::unbounded());
        let size = probe
            .get_or_compile(&grammar(r#"root ::= "a" [0-9]+"#), &vocab, &cfg)
            .memory_bytes();
        let cache = GrammarCache::new(GrammarCacheConfig {
            max_bytes: size + size / 2,
            max_entries: usize::MAX,
        });
        let g1 = grammar(r#"root ::= "a" [0-9]+"#);
        let g2 = grammar(r#"root ::= "b" [0-9]+"#);
        let g3 = grammar(r#"root ::= "c" [0-9]+"#);
        let first = cache.get_or_compile(&g1, &vocab, &cfg);
        cache.get_or_compile(&g2, &vocab, &cfg);
        cache.get_or_compile(&g3, &vocab, &cfg);
        let stats = cache.stats();
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        assert!(stats.current_bytes <= (size + size / 2) as u64);
        // The evicted grammar is still usable by holders of the Arc...
        assert!(first.memory_bytes() > 0);
        // ...and re-requesting it recompiles (a new miss, new pointer).
        let misses_before = cache.stats().misses;
        let again = cache.get_or_compile(&g1, &vocab, &cfg);
        assert_eq!(cache.stats().misses, misses_before + 1);
        assert!(!Arc::ptr_eq(&first, &again));
    }

    #[test]
    fn entry_cap_is_enforced() {
        let vocab = Arc::new(test_vocabulary(600));
        let cfg = CompilerConfig::default();
        let cache = GrammarCache::new(GrammarCacheConfig {
            max_bytes: usize::MAX,
            max_entries: 2,
        });
        for src in [
            r#"root ::= "a""#,
            r#"root ::= "b""#,
            r#"root ::= "c""#,
            r#"root ::= "d""#,
        ] {
            cache.get_or_compile(&grammar(src), &vocab, &cfg);
        }
        assert!(cache.len() <= 2);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let vocab = Arc::new(test_vocabulary(600));
        let cache = GrammarCache::new(GrammarCacheConfig::default());
        cache.get_or_compile(
            &grammar(r#"root ::= "a""#),
            &vocab,
            &CompilerConfig::default(),
        );
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().current_bytes, 0);
    }

    #[test]
    fn concurrent_requests_compile_once() {
        let vocab = Arc::new(test_vocabulary(600));
        let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
        let g = Arc::new(grammar(r#"root ::= "{" [a-z]* "}""#));
        let compiles = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let key = GrammarCacheKey::new(&g, vocab.fingerprint(), &CompilerConfig::default());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (cache, g, vocab, compiles, barrier) = (
                    Arc::clone(&cache),
                    Arc::clone(&g),
                    Arc::clone(&vocab),
                    Arc::clone(&compiles),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_insert_with(key, || {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        CompiledGrammar::compile(&g, Arc::clone(&vocab), &CompilerConfig::default())
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, threads as u64 - 1);
    }
}
