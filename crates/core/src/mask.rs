//! Token bitmask: one bit per vocabulary entry, set when the token is
//! allowed at the next decoding step.
//!
//! This is the object handed to the sampler (Figure 2 of the paper): invalid
//! tokens have their logits forced to `-inf` before softmax.

use xg_tokenizer::TokenId;

/// A dense bitmask over the vocabulary.
///
/// # Examples
///
/// ```
/// use xg_core::TokenBitmask;
/// use xg_tokenizer::TokenId;
///
/// let mut mask = TokenBitmask::new_all_rejected(100);
/// mask.allow(TokenId(3));
/// assert!(mask.is_allowed(TokenId(3)));
/// assert!(!mask.is_allowed(TokenId(4)));
/// assert_eq!(mask.count_allowed(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBitmask {
    words: Vec<u64>,
    vocab_size: usize,
}

impl TokenBitmask {
    /// Creates a mask with every token rejected.
    pub fn new_all_rejected(vocab_size: usize) -> Self {
        TokenBitmask {
            words: vec![0; vocab_size.div_ceil(64)],
            vocab_size,
        }
    }

    /// Creates a mask with every token allowed.
    pub fn new_all_allowed(vocab_size: usize) -> Self {
        let mut mask = Self::new_all_rejected(vocab_size);
        mask.allow_all();
        mask
    }

    /// Vocabulary size this mask covers.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Allows every token.
    pub fn allow_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.clear_padding();
    }

    /// Rejects every token.
    pub fn reject_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    fn clear_padding(&mut self) {
        let extra = self.words.len() * 64 - self.vocab_size;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Allows a single token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    #[inline]
    pub fn allow(&mut self, token: TokenId) {
        assert!(token.index() < self.vocab_size, "token id out of range");
        self.words[token.index() / 64] |= 1u64 << (token.index() % 64);
    }

    /// Rejects a single token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    #[inline]
    pub fn reject(&mut self, token: TokenId) {
        assert!(token.index() < self.vocab_size, "token id out of range");
        self.words[token.index() / 64] &= !(1u64 << (token.index() % 64));
    }

    /// Returns `true` if the token is allowed.
    #[inline]
    pub fn is_allowed(&self, token: TokenId) -> bool {
        if token.index() >= self.vocab_size {
            return false;
        }
        self.words[token.index() / 64] & (1u64 << (token.index() % 64)) != 0
    }

    /// Number of allowed tokens.
    pub fn count_allowed(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the allowed token ids.
    pub fn allowed_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            let mut out = Vec::new();
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(TokenId((wi * 64 + bit) as u32));
                bits &= bits - 1;
            }
            out
        })
    }

    /// In-place union with another mask.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn union_with(&mut self, other: &TokenBitmask) {
        assert_eq!(self.vocab_size, other.vocab_size, "mask size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with another mask.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn intersect_with(&mut self, other: &TokenBitmask) {
        assert_eq!(self.vocab_size, other.vocab_size, "mask size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Raw 64-bit words of the mask (for the engine's masked sampling).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap memory used by the mask in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_reject_roundtrip() {
        let mut m = TokenBitmask::new_all_rejected(130);
        assert_eq!(m.count_allowed(), 0);
        m.allow(TokenId(0));
        m.allow(TokenId(64));
        m.allow(TokenId(129));
        assert_eq!(m.count_allowed(), 3);
        assert!(m.is_allowed(TokenId(129)));
        m.reject(TokenId(64));
        assert_eq!(m.count_allowed(), 2);
        assert!(!m.is_allowed(TokenId(64)));
    }

    #[test]
    fn all_allowed_respects_vocab_size() {
        let m = TokenBitmask::new_all_allowed(70);
        assert_eq!(m.count_allowed(), 70);
        assert!(!m.is_allowed(TokenId(70)));
        assert!(!m.is_allowed(TokenId(1000)));
    }

    #[test]
    fn allowed_tokens_iterates_in_order() {
        let mut m = TokenBitmask::new_all_rejected(200);
        for id in [5u32, 63, 64, 65, 199] {
            m.allow(TokenId(id));
        }
        let ids: Vec<u32> = m.allowed_tokens().map(|t| t.0).collect();
        assert_eq!(ids, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = TokenBitmask::new_all_rejected(100);
        let mut b = TokenBitmask::new_all_rejected(100);
        a.allow(TokenId(1));
        a.allow(TokenId(2));
        b.allow(TokenId(2));
        b.allow(TokenId(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_allowed(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count_allowed(), 1);
        assert!(i.is_allowed(TokenId(2)));
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn union_size_mismatch_panics() {
        let mut a = TokenBitmask::new_all_rejected(10);
        let b = TokenBitmask::new_all_rejected(20);
        a.union_with(&b);
    }

    #[test]
    fn memory_is_proportional_to_vocab() {
        let m = TokenBitmask::new_all_rejected(128_000);
        assert_eq!(m.memory_bytes(), 128_000usize.div_ceil(64) * 8);
    }

    #[test]
    fn all_rejected_construction_is_empty() {
        for size in [0, 1, 63, 64, 65, 128, 1000] {
            let m = TokenBitmask::new_all_rejected(size);
            assert_eq!(m.vocab_size(), size);
            assert_eq!(m.count_allowed(), 0);
            assert_eq!(m.allowed_tokens().count(), 0);
            assert!(!m.is_allowed(TokenId(0)));
        }
    }

    #[test]
    fn all_allowed_construction_is_full_at_word_boundaries() {
        // Sizes straddling the u64-word boundary exercise the padding mask.
        for size in [1, 63, 64, 65, 127, 128, 129] {
            let m = TokenBitmask::new_all_allowed(size);
            assert_eq!(m.count_allowed(), size, "size {size}");
            let ids: Vec<u32> = m.allowed_tokens().map(|t| t.0).collect();
            assert_eq!(ids, (0..size as u32).collect::<Vec<_>>(), "size {size}");
            // Padding bits past the vocabulary must stay clear.
            assert!(!m.is_allowed(TokenId(size as u32)));
        }
    }

    #[test]
    fn allow_all_and_reject_all_transition_cleanly() {
        let mut m = TokenBitmask::new_all_rejected(100);
        m.allow_all();
        assert_eq!(m.count_allowed(), 100);
        assert_eq!(m.allowed_tokens().count(), 100);
        m.reject_all();
        assert_eq!(m.count_allowed(), 0);
        assert_eq!(m.allowed_tokens().count(), 0);
        // After reject_all, selective allows work again.
        m.allow(TokenId(99));
        assert_eq!(m.count_allowed(), 1);
        assert_eq!(m.allowed_tokens().map(|t| t.0).collect::<Vec<_>>(), [99]);
    }

    #[test]
    fn count_allowed_matches_iteration_under_mixed_updates() {
        let mut m = TokenBitmask::new_all_rejected(300);
        for id in (0..300).step_by(7) {
            m.allow(TokenId(id));
        }
        for id in (0..300).step_by(21) {
            m.reject(TokenId(id));
        }
        let via_iter = m.allowed_tokens().count();
        assert_eq!(m.count_allowed(), via_iter);
        for token in m.allowed_tokens() {
            assert!(m.is_allowed(token));
        }
    }

    #[test]
    fn empty_vocabulary_masks_are_consistent() {
        let rejected = TokenBitmask::new_all_rejected(0);
        let allowed = TokenBitmask::new_all_allowed(0);
        assert_eq!(rejected.count_allowed(), 0);
        assert_eq!(allowed.count_allowed(), 0);
        assert_eq!(allowed.allowed_tokens().count(), 0);
    }

    #[test]
    #[should_panic(expected = "token id out of range")]
    fn allow_out_of_range_panics() {
        let mut m = TokenBitmask::new_all_rejected(64);
        m.allow(TokenId(64));
    }
}
