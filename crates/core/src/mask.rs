//! Token bitmask: one bit per vocabulary entry, set when the token is
//! allowed at the next decoding step.
//!
//! This is the object handed to the sampler (Figure 2 of the paper): invalid
//! tokens have their logits forced to `-inf` before softmax.

use xg_tokenizer::TokenId;

/// A dense bitmask over the vocabulary.
///
/// # Examples
///
/// ```
/// use xg_core::TokenBitmask;
/// use xg_tokenizer::TokenId;
///
/// let mut mask = TokenBitmask::new_all_rejected(100);
/// mask.allow(TokenId(3));
/// assert!(mask.is_allowed(TokenId(3)));
/// assert!(!mask.is_allowed(TokenId(4)));
/// assert_eq!(mask.count_allowed(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBitmask {
    words: Vec<u64>,
    vocab_size: usize,
}

impl TokenBitmask {
    /// Creates a mask with every token rejected.
    pub fn new_all_rejected(vocab_size: usize) -> Self {
        TokenBitmask {
            words: vec![0; vocab_size.div_ceil(64)],
            vocab_size,
        }
    }

    /// Creates a mask with every token allowed.
    pub fn new_all_allowed(vocab_size: usize) -> Self {
        let mut mask = Self::new_all_rejected(vocab_size);
        mask.allow_all();
        mask
    }

    /// Vocabulary size this mask covers.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Allows every token.
    pub fn allow_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.clear_padding();
    }

    /// Rejects every token.
    pub fn reject_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    fn clear_padding(&mut self) {
        let extra = self.words.len() * 64 - self.vocab_size;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Allows a single token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    #[inline]
    pub fn allow(&mut self, token: TokenId) {
        assert!(token.index() < self.vocab_size, "token id out of range");
        self.words[token.index() / 64] |= 1u64 << (token.index() % 64);
    }

    /// Rejects a single token.
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of range.
    #[inline]
    pub fn reject(&mut self, token: TokenId) {
        assert!(token.index() < self.vocab_size, "token id out of range");
        self.words[token.index() / 64] &= !(1u64 << (token.index() % 64));
    }

    /// Returns `true` if the token is allowed.
    #[inline]
    pub fn is_allowed(&self, token: TokenId) -> bool {
        if token.index() >= self.vocab_size {
            return false;
        }
        self.words[token.index() / 64] & (1u64 << (token.index() % 64)) != 0
    }

    /// Number of allowed tokens.
    pub fn count_allowed(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the allowed token ids.
    pub fn allowed_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            let mut out = Vec::new();
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(TokenId((wi * 64 + bit) as u32));
                bits &= bits - 1;
            }
            out
        })
    }

    /// In-place union with another mask.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn union_with(&mut self, other: &TokenBitmask) {
        assert_eq!(self.vocab_size, other.vocab_size, "mask size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with another mask.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn intersect_with(&mut self, other: &TokenBitmask) {
        assert_eq!(self.vocab_size, other.vocab_size, "mask size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Raw 64-bit words of the mask (for the engine's masked sampling).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap memory used by the mask in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    // -- Bulk word-level kernels -------------------------------------------
    //
    // The per-token `allow`/`reject` calls cost a bounds check, a shift and a
    // read-modify-write each; at 128k–256k vocabularies the mask fill is the
    // per-token serving hot path (Figure 9), so the operations below work on
    // whole `u64` words with straight-line inner loops the compiler can
    // vectorize. All of them preserve the padding invariant (bits past
    // `vocab_size` in the last word stay clear).

    /// Overwrites this mask with the contents of `other` (word-level copy).
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn copy_from(&mut self, other: &TokenBitmask) {
        assert_eq!(self.vocab_size, other.vocab_size, "mask size mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Allows the contiguous id run `[start, start + len)` — whole words in
    /// the interior, masked edits at the two fringe words.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the vocabulary.
    pub fn allow_run(&mut self, start: TokenId, len: usize) {
        let (first, last) = self.run_bounds(start, len);
        if len == 0 {
            return;
        }
        let lo = start.index();
        let hi = lo + len; // exclusive
        if first == last {
            // Entire run inside one word.
            let bits = (u64::MAX >> (64 - len)) << (lo % 64);
            self.words[first] |= bits;
            return;
        }
        self.words[first] |= u64::MAX << (lo % 64);
        for w in &mut self.words[first + 1..last] {
            *w = u64::MAX;
        }
        let tail = hi % 64;
        self.words[last] |= if tail == 0 {
            u64::MAX
        } else {
            u64::MAX >> (64 - tail)
        };
        self.clear_padding();
    }

    /// Rejects the contiguous id run `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the vocabulary.
    pub fn reject_run(&mut self, start: TokenId, len: usize) {
        let (first, last) = self.run_bounds(start, len);
        if len == 0 {
            return;
        }
        let lo = start.index();
        let hi = lo + len;
        if first == last {
            let bits = (u64::MAX >> (64 - len)) << (lo % 64);
            self.words[first] &= !bits;
            return;
        }
        self.words[first] &= !(u64::MAX << (lo % 64));
        for w in &mut self.words[first + 1..last] {
            *w = 0;
        }
        let tail = hi % 64;
        self.words[last] &= if tail == 0 {
            0
        } else {
            !(u64::MAX >> (64 - tail))
        };
    }

    fn run_bounds(&self, start: TokenId, len: usize) -> (usize, usize) {
        let lo = start.index();
        let hi = lo.checked_add(len).expect("token run overflows");
        assert!(hi <= self.vocab_size, "token run out of range");
        if len == 0 {
            return (0, 0);
        }
        (lo / 64, (hi - 1) / 64)
    }

    /// Allows every token in `tokens` (any order, duplicates fine) in one
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of range.
    pub fn allow_many(&mut self, tokens: &[TokenId]) {
        let n = self.vocab_size;
        for &t in tokens {
            let i = t.index();
            assert!(i < n, "token id out of range");
            self.words[i >> 6] |= 1u64 << (i & 63);
        }
    }

    /// Rejects every token in `tokens` (any order, duplicates fine) in one
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of range.
    pub fn reject_many(&mut self, tokens: &[TokenId]) {
        let n = self.vocab_size;
        for &t in tokens {
            let i = t.index();
            assert!(i < n, "token id out of range");
            self.words[i >> 6] &= !(1u64 << (i & 63));
        }
    }
}

/// A batch of token bitmasks in *transposed* (word-major) layout.
///
/// Where `Vec<TokenBitmask>` stores each lane's words contiguously, the batch
/// stores, for each word index, the words of **all lanes** next to each other
/// (`words[word_idx * lanes + lane]`). Broadcasting a shared base mask — the
/// common case when many lanes sit in the same automaton state — then writes
/// `lanes` consecutive words per source word, and per-lane touch-ups remain
/// O(1) per token. One pass over the adaptive token-mask cache entry thus
/// serves the whole batch.
///
/// # Examples
///
/// ```
/// use xg_core::{MaskBatch, TokenBitmask};
/// use xg_tokenizer::TokenId;
///
/// let mut base = TokenBitmask::new_all_rejected(100);
/// base.allow(TokenId(7));
/// let mut batch = MaskBatch::new(4, 100);
/// batch.broadcast(&base);
/// batch.allow(2, TokenId(9)); // lane-specific touch-up
/// assert!(batch.is_allowed(0, TokenId(7)));
/// assert!(batch.is_allowed(2, TokenId(9)));
/// assert!(!batch.is_allowed(1, TokenId(9)));
/// assert_eq!(batch.extract_lane(2).count_allowed(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskBatch {
    /// `words[word_idx * lanes + lane]`.
    words: Vec<u64>,
    lanes: usize,
    words_per_lane: usize,
    vocab_size: usize,
}

impl MaskBatch {
    /// Creates a batch of `lanes` all-rejected masks over `vocab_size`.
    pub fn new(lanes: usize, vocab_size: usize) -> Self {
        let words_per_lane = vocab_size.div_ceil(64);
        MaskBatch {
            words: vec![0; words_per_lane * lanes],
            lanes,
            words_per_lane,
            vocab_size,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Vocabulary size each lane covers.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Copies `base` into **every** lane — the one-pass batched fill. The
    /// inner loop writes `lanes` contiguous words per source word.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary sizes differ.
    pub fn broadcast(&mut self, base: &TokenBitmask) {
        assert_eq!(self.vocab_size, base.vocab_size(), "mask size mismatch");
        let lanes = self.lanes;
        for (wi, &w) in base.words().iter().enumerate() {
            let row = &mut self.words[wi * lanes..(wi + 1) * lanes];
            for slot in row {
                *slot = w;
            }
        }
    }

    /// Allows one token in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane or token id is out of range.
    #[inline]
    pub fn allow(&mut self, lane: usize, token: TokenId) {
        let i = token.index();
        assert!(lane < self.lanes, "lane out of range");
        assert!(i < self.vocab_size, "token id out of range");
        self.words[(i >> 6) * self.lanes + lane] |= 1u64 << (i & 63);
    }

    /// Rejects one token in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane or token id is out of range.
    #[inline]
    pub fn reject(&mut self, lane: usize, token: TokenId) {
        let i = token.index();
        assert!(lane < self.lanes, "lane out of range");
        assert!(i < self.vocab_size, "token id out of range");
        self.words[(i >> 6) * self.lanes + lane] &= !(1u64 << (i & 63));
    }

    /// Returns `true` if the token is allowed in the lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range.
    #[inline]
    pub fn is_allowed(&self, lane: usize, token: TokenId) -> bool {
        assert!(lane < self.lanes, "lane out of range");
        let i = token.index();
        if i >= self.vocab_size {
            return false;
        }
        self.words[(i >> 6) * self.lanes + lane] & (1u64 << (i & 63)) != 0
    }

    /// Gathers one lane back into a standalone [`TokenBitmask`].
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range.
    pub fn extract_lane(&self, lane: usize) -> TokenBitmask {
        assert!(lane < self.lanes, "lane out of range");
        let mut out = TokenBitmask::new_all_rejected(self.vocab_size);
        for wi in 0..self.words_per_lane {
            out.words[wi] = self.words[wi * self.lanes + lane];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_reject_roundtrip() {
        let mut m = TokenBitmask::new_all_rejected(130);
        assert_eq!(m.count_allowed(), 0);
        m.allow(TokenId(0));
        m.allow(TokenId(64));
        m.allow(TokenId(129));
        assert_eq!(m.count_allowed(), 3);
        assert!(m.is_allowed(TokenId(129)));
        m.reject(TokenId(64));
        assert_eq!(m.count_allowed(), 2);
        assert!(!m.is_allowed(TokenId(64)));
    }

    #[test]
    fn all_allowed_respects_vocab_size() {
        let m = TokenBitmask::new_all_allowed(70);
        assert_eq!(m.count_allowed(), 70);
        assert!(!m.is_allowed(TokenId(70)));
        assert!(!m.is_allowed(TokenId(1000)));
    }

    #[test]
    fn allowed_tokens_iterates_in_order() {
        let mut m = TokenBitmask::new_all_rejected(200);
        for id in [5u32, 63, 64, 65, 199] {
            m.allow(TokenId(id));
        }
        let ids: Vec<u32> = m.allowed_tokens().map(|t| t.0).collect();
        assert_eq!(ids, vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = TokenBitmask::new_all_rejected(100);
        let mut b = TokenBitmask::new_all_rejected(100);
        a.allow(TokenId(1));
        a.allow(TokenId(2));
        b.allow(TokenId(2));
        b.allow(TokenId(3));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_allowed(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.count_allowed(), 1);
        assert!(i.is_allowed(TokenId(2)));
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn union_size_mismatch_panics() {
        let mut a = TokenBitmask::new_all_rejected(10);
        let b = TokenBitmask::new_all_rejected(20);
        a.union_with(&b);
    }

    #[test]
    fn memory_is_proportional_to_vocab() {
        let m = TokenBitmask::new_all_rejected(128_000);
        assert_eq!(m.memory_bytes(), 128_000usize.div_ceil(64) * 8);
    }

    #[test]
    fn all_rejected_construction_is_empty() {
        for size in [0, 1, 63, 64, 65, 128, 1000] {
            let m = TokenBitmask::new_all_rejected(size);
            assert_eq!(m.vocab_size(), size);
            assert_eq!(m.count_allowed(), 0);
            assert_eq!(m.allowed_tokens().count(), 0);
            assert!(!m.is_allowed(TokenId(0)));
        }
    }

    #[test]
    fn all_allowed_construction_is_full_at_word_boundaries() {
        // Sizes straddling the u64-word boundary exercise the padding mask.
        for size in [1, 63, 64, 65, 127, 128, 129] {
            let m = TokenBitmask::new_all_allowed(size);
            assert_eq!(m.count_allowed(), size, "size {size}");
            let ids: Vec<u32> = m.allowed_tokens().map(|t| t.0).collect();
            assert_eq!(ids, (0..size as u32).collect::<Vec<_>>(), "size {size}");
            // Padding bits past the vocabulary must stay clear.
            assert!(!m.is_allowed(TokenId(size as u32)));
        }
    }

    #[test]
    fn allow_all_and_reject_all_transition_cleanly() {
        let mut m = TokenBitmask::new_all_rejected(100);
        m.allow_all();
        assert_eq!(m.count_allowed(), 100);
        assert_eq!(m.allowed_tokens().count(), 100);
        m.reject_all();
        assert_eq!(m.count_allowed(), 0);
        assert_eq!(m.allowed_tokens().count(), 0);
        // After reject_all, selective allows work again.
        m.allow(TokenId(99));
        assert_eq!(m.count_allowed(), 1);
        assert_eq!(m.allowed_tokens().map(|t| t.0).collect::<Vec<_>>(), [99]);
    }

    #[test]
    fn count_allowed_matches_iteration_under_mixed_updates() {
        let mut m = TokenBitmask::new_all_rejected(300);
        for id in (0..300).step_by(7) {
            m.allow(TokenId(id));
        }
        for id in (0..300).step_by(21) {
            m.reject(TokenId(id));
        }
        let via_iter = m.allowed_tokens().count();
        assert_eq!(m.count_allowed(), via_iter);
        for token in m.allowed_tokens() {
            assert!(m.is_allowed(token));
        }
    }

    #[test]
    fn empty_vocabulary_masks_are_consistent() {
        let rejected = TokenBitmask::new_all_rejected(0);
        let allowed = TokenBitmask::new_all_allowed(0);
        assert_eq!(rejected.count_allowed(), 0);
        assert_eq!(allowed.count_allowed(), 0);
        assert_eq!(allowed.allowed_tokens().count(), 0);
    }

    #[test]
    #[should_panic(expected = "token id out of range")]
    fn allow_out_of_range_panics() {
        let mut m = TokenBitmask::new_all_rejected(64);
        m.allow(TokenId(64));
    }

    #[test]
    fn runs_match_per_token_loops() {
        // Every (start, len) combination across word boundaries, including
        // empty runs and runs ending exactly at the vocabulary edge.
        let vocab = 200;
        for start in [0usize, 1, 63, 64, 65, 100, 127, 128, 199] {
            for len in [0usize, 1, 2, 63, 64, 65, 72] {
                if start + len > vocab {
                    continue;
                }
                let mut kernel = TokenBitmask::new_all_rejected(vocab);
                kernel.allow_run(TokenId(start as u32), len);
                let mut serial = TokenBitmask::new_all_rejected(vocab);
                for t in start..start + len {
                    serial.allow(TokenId(t as u32));
                }
                assert_eq!(kernel, serial, "allow_run({start}, {len})");

                let mut kernel = TokenBitmask::new_all_allowed(vocab);
                kernel.reject_run(TokenId(start as u32), len);
                let mut serial = TokenBitmask::new_all_allowed(vocab);
                for t in start..start + len {
                    serial.reject(TokenId(t as u32));
                }
                assert_eq!(kernel, serial, "reject_run({start}, {len})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "token run out of range")]
    fn allow_run_past_vocab_panics() {
        let mut m = TokenBitmask::new_all_rejected(100);
        m.allow_run(TokenId(90), 11);
    }

    #[test]
    fn many_ops_match_per_token_loops() {
        let ids: Vec<TokenId> = [170u32, 3, 64, 3, 65, 169, 0]
            .iter()
            .map(|&i| TokenId(i))
            .collect();
        let mut bulk = TokenBitmask::new_all_rejected(171);
        bulk.allow_many(&ids);
        let mut serial = TokenBitmask::new_all_rejected(171);
        for &t in &ids {
            serial.allow(t);
        }
        assert_eq!(bulk, serial);
        let mut bulk = TokenBitmask::new_all_allowed(171);
        bulk.reject_many(&ids);
        let mut serial = TokenBitmask::new_all_allowed(171);
        for &t in &ids {
            serial.reject(t);
        }
        assert_eq!(bulk, serial);
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = TokenBitmask::new_all_allowed(130);
        let mut b = TokenBitmask::new_all_rejected(130);
        b.allow(TokenId(129));
        a.copy_from(&b);
        assert_eq!(a, b);
        assert_eq!(a.count_allowed(), 1);
    }

    #[test]
    fn batch_broadcast_and_extract_roundtrip() {
        let mut base = TokenBitmask::new_all_rejected(130);
        base.allow_run(TokenId(10), 70);
        let mut batch = MaskBatch::new(3, 130);
        batch.broadcast(&base);
        for lane in 0..3 {
            assert_eq!(batch.extract_lane(lane), base, "lane {lane}");
        }
        batch.allow(1, TokenId(129));
        batch.reject(2, TokenId(10));
        assert_eq!(batch.extract_lane(0), base);
        assert_eq!(batch.extract_lane(1).count_allowed(), 71);
        assert_eq!(batch.extract_lane(2).count_allowed(), 69);
        assert!(batch.is_allowed(1, TokenId(129)));
        assert!(!batch.is_allowed(0, TokenId(129)));
    }
}
