//! Execution of the byte-level PDA over persistent stacks.
//!
//! This module contains the low-level stepping machinery shared by the
//! preprocessing phase (classifying tokens per automaton node for the
//! adaptive token mask cache) and the runtime phase (checking
//! context-dependent tokens against the full stack, and advancing the
//! matcher when a token is accepted).

use std::collections::HashSet;

use xg_automata::{Pda, PdaEdge};

use crate::persistent_stack::{PersistentStackTree, StackHandle};

/// Hard cap on the number of parallel stacks tracked at once. Grammars that
/// exceed it are pathological; exceeding the cap degrades to tracking a
/// subset (documented behaviour, never observed for the evaluated grammars).
pub const MAX_PARALLEL_STACKS: usize = 512;

/// Expands a set of stack heads into their epsilon closure: every
/// configuration reachable without consuming a byte, by entering referenced
/// rules (push) or returning from completed rules (pop).
///
/// `on_popout` is invoked for every configuration that reaches the final node
/// of the *bottom* frame — i.e. that could pop out of the frame the matching
/// started in, which the caller interprets as either "needs parent context"
/// (preprocessing) or "the whole grammar can terminate here" (runtime).
pub fn closure(
    pda: &Pda,
    tree: &mut PersistentStackTree,
    heads: &[StackHandle],
    mut on_popout: impl FnMut(StackHandle),
) -> Vec<StackHandle> {
    let mut seen: HashSet<StackHandle> = HashSet::with_capacity(heads.len() * 2);
    let mut queue: Vec<StackHandle> = Vec::with_capacity(heads.len() * 2);
    let mut out: Vec<StackHandle> = Vec::with_capacity(heads.len() * 2);
    for &h in heads {
        if seen.insert(h) {
            queue.push(h);
        }
    }
    while let Some(h) = queue.pop() {
        out.push(h);
        if out.len() >= MAX_PARALLEL_STACKS {
            break;
        }
        let top = tree.top(h).expect("stack heads always carry a top node");
        let is_final = pda.node(top).is_final;
        // Expand rule references (push). Collect edges first to appease the
        // borrow checker (tree is mutated while pushing).
        let rule_edges: Vec<(u32, xg_automata::NodeId)> = pda
            .node(top)
            .edges
            .iter()
            .filter_map(|e| match e {
                PdaEdge::Rule { rule, target } => Some((rule.0, *target)),
                PdaEdge::Bytes { .. } => None,
            })
            .collect();
        for (rule, ret) in rule_edges {
            let with_return = tree.replace_top(h, ret);
            let child = tree.push(with_return, pda.rule(xg_automata::PdaRuleId(rule)).start);
            if seen.insert(child) {
                queue.push(child);
            }
        }
        // Return to the parent rule (pop), or report a pop-out of the bottom
        // frame.
        if is_final {
            if tree.depth(h) > 1 {
                let popped = tree.pop(h);
                if seen.insert(popped) {
                    queue.push(popped);
                }
            } else {
                on_popout(h);
            }
        }
    }
    out
}

/// Advances a set of stack heads over one byte. Returns the deduplicated set
/// of surviving heads (empty when the byte is not matchable).
pub fn advance_byte(
    pda: &Pda,
    tree: &mut PersistentStackTree,
    heads: &[StackHandle],
    byte: u8,
    on_popout: impl FnMut(StackHandle),
) -> Vec<StackHandle> {
    let expanded = closure(pda, tree, heads, on_popout);
    let mut seen: HashSet<StackHandle> = HashSet::with_capacity(expanded.len());
    let mut out: Vec<StackHandle> = Vec::with_capacity(expanded.len());
    for h in expanded {
        let top = tree.top(h).expect("stack heads always carry a top node");
        let byte_edges: Vec<xg_automata::NodeId> = pda
            .node(top)
            .edges
            .iter()
            .filter_map(|e| match e {
                PdaEdge::Bytes { range, target } if range.contains(byte) => Some(*target),
                _ => None,
            })
            .collect();
        for target in byte_edges {
            let nh = tree.replace_top(h, target);
            if seen.insert(nh) {
                out.push(nh);
            }
        }
        if out.len() >= MAX_PARALLEL_STACKS {
            break;
        }
    }
    out
}

/// Returns `true` if, without consuming more bytes, some stack can pop out of
/// its bottom frame (for a matcher whose bottom frame is the root rule this
/// means the generated text is a complete sentence).
pub fn can_pop_out(pda: &Pda, tree: &mut PersistentStackTree, heads: &[StackHandle]) -> bool {
    let mut can = false;
    let _ = closure(pda, tree, heads, |_| can = true);
    can
}

/// A resumable byte-matching trail: the sequence of stack-head sets after
/// each consumed byte, kept so that matching can be rolled back to any prefix
/// length in O(1).
///
/// This is the mechanism of paper §3.3: when checking a sorted list of tokens
/// (during preprocessing, or the context-dependent tokens of one stack at
/// runtime), adjacent tokens share long prefixes; the trail rolls back to the
/// shared prefix instead of re-matching it.
#[derive(Debug)]
pub struct TokenTrail {
    /// `states[i]` = heads after consuming `i` bytes (`states[0]` = initial).
    states: Vec<Vec<StackHandle>>,
    /// `popout[i]` = while advancing from `states[i]`, some configuration
    /// could pop out of the bottom frame (so the remainder starting at byte
    /// offset `i` would have to be matched by parent context).
    popout: Vec<bool>,
    /// Bytes consumed so far (the current prefix).
    prefix: Vec<u8>,
    /// Total number of bytes actually advanced (for the §3.3 statistic).
    bytes_advanced: u64,
}

impl TokenTrail {
    /// Creates a trail starting from the given heads.
    pub fn new(initial: Vec<StackHandle>) -> Self {
        TokenTrail {
            states: vec![initial],
            popout: Vec::new(),
            prefix: Vec::new(),
            bytes_advanced: 0,
        }
    }

    /// Current prefix length in bytes.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// Rolls the trail back so that only `len` bytes remain matched.
    pub fn rollback_to(&mut self, len: usize) {
        debug_assert!(len <= self.prefix.len());
        self.prefix.truncate(len);
        self.states.truncate(len + 1);
        self.popout.truncate(len);
    }

    /// Advances the trail by one byte. Returns `true` if at least one stack
    /// survived.
    pub fn advance(&mut self, pda: &Pda, tree: &mut PersistentStackTree, byte: u8) -> bool {
        let current = self.states.last().expect("states is never empty");
        let mut popout_here = false;
        let next = if current.is_empty() {
            Vec::new()
        } else {
            advance_byte(pda, tree, current, byte, |_| popout_here = true)
        };
        self.bytes_advanced += 1;
        self.prefix.push(byte);
        self.popout.push(popout_here);
        let alive = !next.is_empty();
        self.states.push(next);
        alive
    }

    /// Matches `token` assuming the trail currently holds a prefix of it of
    /// length `keep` (the caller computes the longest common prefix with the
    /// previously matched token). Returns the final state's liveness.
    pub fn match_token(
        &mut self,
        pda: &Pda,
        tree: &mut PersistentStackTree,
        token: &[u8],
        keep: usize,
    ) -> bool {
        self.rollback_to(keep);
        let mut alive = !self.current_heads().is_empty();
        for &b in &token[keep..] {
            alive = self.advance(pda, tree, b);
            // Keep advancing even when dead: pop-out offsets recorded earlier
            // still apply, and later tokens sharing a longer prefix need the
            // states to exist. Dead states advance to dead states cheaply.
            if !alive && self.prefix.len() >= token.len() {
                break;
            }
            if !alive {
                // Fill the remaining positions with dead states without
                // doing automaton work.
                while self.prefix.len() < token.len() {
                    self.prefix.push(token[self.prefix.len()]);
                    self.popout.push(false);
                    self.states.push(Vec::new());
                }
                break;
            }
        }
        alive && self.prefix.len() == token.len()
    }

    /// Heads after the full current prefix.
    pub fn current_heads(&self) -> &[StackHandle] {
        self.states.last().expect("states is never empty")
    }

    /// Byte offsets `o < len` at which a pop-out of the bottom frame was
    /// possible (the remainder `token[o..]` would be matched by the parent
    /// context). Only offsets within the current prefix are reported.
    pub fn popout_offsets(&self) -> impl Iterator<Item = usize> + '_ {
        self.popout
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| if p { Some(i) } else { None })
    }

    /// Total number of bytes advanced over the lifetime of the trail
    /// (counting only real automaton work, not rolled-back reuse).
    pub fn bytes_advanced(&self) -> u64 {
        self.bytes_advanced
    }
}

/// Longest common prefix length of two byte strings.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_automata::{build_pda, PdaBuildOptions};
    use xg_grammar::parse_ebnf;

    fn json_pda() -> Pda {
        build_pda(
            &xg_grammar::builtin::json_grammar(),
            &PdaBuildOptions::default(),
        )
    }

    fn start_heads(pda: &Pda, tree: &mut PersistentStackTree) -> Vec<StackHandle> {
        vec![tree.push(StackHandle::ROOT, pda.root_start())]
    }

    #[test]
    fn advance_byte_matches_simple_matcher() {
        let pda = json_pda();
        let mut tree = PersistentStackTree::new();
        let mut heads = start_heads(&pda, &mut tree);
        let input = br#"{"a": [1, {"b": null}]}"#;
        let mut simple = xg_automata::SimpleMatcher::new(&pda);
        for &b in input.iter() {
            heads = advance_byte(&pda, &mut tree, &heads, b, |_| {});
            let simple_alive = simple.advance_byte(b) == xg_automata::StepResult::Alive;
            assert_eq!(!heads.is_empty(), simple_alive, "divergence at byte {b}");
        }
        assert!(can_pop_out(&pda, &mut tree, &heads));
    }

    #[test]
    fn rejection_matches_simple_matcher() {
        let pda = json_pda();
        let mut tree = PersistentStackTree::new();
        let mut heads = start_heads(&pda, &mut tree);
        for &b in br#"{"a" 1}"#.iter() {
            heads = advance_byte(&pda, &mut tree, &heads, b, |_| {});
            if heads.is_empty() {
                break;
            }
        }
        assert!(heads.is_empty());
    }

    #[test]
    fn trail_rollback_reuses_prefixes() {
        let pda = json_pda();
        let mut tree = PersistentStackTree::new();
        let heads = start_heads(&pda, &mut tree);
        let mut trail = TokenTrail::new(heads);
        // Match two tokens sharing the prefix `{"na`.
        assert!(trail.match_token(&pda, &mut tree, br#"{"name"#, 0));
        let advanced_first = trail.bytes_advanced();
        let lcp = common_prefix_len(br#"{"name"#, br#"{"nam_x"#);
        assert!(trail.match_token(&pda, &mut tree, br#"{"nam_x"#, lcp));
        // Only the divergent suffix was re-matched.
        assert_eq!(trail.bytes_advanced(), advanced_first + (7 - lcp) as u64);
    }

    #[test]
    fn trail_records_popout_offsets() {
        // str is referenced from a bracketed context; matching `"ab"]` from
        // the str rule start pops out after the closing quote (offset 4).
        let g = parse_ebnf(
            r#"
            root ::= "[" str "]"
            str ::= "\"" [a-z]* "\""
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(
            &g,
            &PdaBuildOptions {
                inline_rules: false,
                ..Default::default()
            },
        );
        let str_start = pda
            .rules()
            .iter()
            .find(|r| r.name == "str")
            .map(|r| r.start)
            .expect("str rule exists");
        let mut tree = PersistentStackTree::new();
        let head = tree.push(StackHandle::ROOT, str_start);
        let mut trail = TokenTrail::new(vec![head]);
        let alive = trail.match_token(&pda, &mut tree, b"\"ab\"]", 0);
        // The token is not matchable locally (the `]` belongs to the parent)…
        assert!(!alive);
        // …but a pop-out at offset 4 was recorded (remainder `]`).
        let offsets: Vec<usize> = trail.popout_offsets().collect();
        assert_eq!(offsets, vec![4]);
    }

    #[test]
    fn dead_trail_can_still_be_extended_and_rolled_back() {
        let pda = json_pda();
        let mut tree = PersistentStackTree::new();
        let heads = start_heads(&pda, &mut tree);
        let mut trail = TokenTrail::new(heads);
        assert!(!trail.match_token(&pda, &mut tree, b"{x}", 0));
        // Next token shares the prefix `{` only; after rollback it matches.
        assert!(trail.match_token(&pda, &mut tree, b"{}", 1));
    }

    #[test]
    fn closure_reports_termination_via_popout() {
        let g = parse_ebnf(r#"root ::= "ab""#, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        let mut tree = PersistentStackTree::new();
        let mut heads = vec![tree.push(StackHandle::ROOT, pda.root_start())];
        assert!(!can_pop_out(&pda, &mut tree, &heads));
        for &b in b"ab" {
            heads = advance_byte(&pda, &mut tree, &heads, b, |_| {});
        }
        assert!(can_pop_out(&pda, &mut tree, &heads));
    }
}
