//! A pool of reusable [`GrammarMatcher`]s for one compiled grammar.
//!
//! A serving engine creates one matcher per request lane. Matcher creation is
//! cheap but not free (it allocates a fresh persistent stack tree), and under
//! heavy traffic the same grammar serves thousands of requests, so lanes draw
//! matchers from a shared pool and return them when the request finishes. The
//! pool resets a matcher before handing it out, so acquired matchers are
//! always positioned at the start of the grammar.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::compiler::CompiledGrammar;
use crate::matcher::GrammarMatcher;

/// A thread-safe pool of [`GrammarMatcher`]s bound to one
/// [`CompiledGrammar`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{GrammarCompiler, MatcherPool};
/// use xg_tokenizer::test_vocabulary;
///
/// let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(600)));
/// let compiled = compiler.compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")?;
/// let pool = MatcherPool::new(compiled);
/// let matcher = pool.acquire();
/// pool.release(matcher);
/// assert_eq!(pool.created(), 1);
/// let _again = pool.acquire(); // reuses the pooled matcher
/// assert_eq!(pool.created(), 1);
/// # Ok::<(), xg_grammar::GrammarError>(())
/// ```
#[derive(Debug)]
pub struct MatcherPool {
    compiled: Arc<CompiledGrammar>,
    idle: Mutex<Vec<GrammarMatcher>>,
    max_idle: usize,
    created: AtomicU64,
    reused: AtomicU64,
}

impl MatcherPool {
    /// Default cap on idle matchers retained by the pool.
    pub const DEFAULT_MAX_IDLE: usize = 256;

    /// Creates a pool for `compiled` with the default idle cap.
    pub fn new(compiled: Arc<CompiledGrammar>) -> Self {
        Self::with_max_idle(compiled, Self::DEFAULT_MAX_IDLE)
    }

    /// Creates a pool retaining at most `max_idle` idle matchers; matchers
    /// released beyond the cap are dropped.
    pub fn with_max_idle(compiled: Arc<CompiledGrammar>, max_idle: usize) -> Self {
        MatcherPool {
            compiled,
            idle: Mutex::new(Vec::new()),
            max_idle,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The compiled grammar this pool serves.
    pub fn compiled(&self) -> &Arc<CompiledGrammar> {
        &self.compiled
    }

    /// Takes a matcher positioned at the start of the grammar: a reset pooled
    /// matcher when one is idle, a freshly constructed one otherwise.
    pub fn acquire(&self) -> GrammarMatcher {
        let pooled = self.lock().pop();
        match pooled {
            Some(mut matcher) => {
                matcher.reset();
                self.reused.fetch_add(1, Ordering::Relaxed);
                matcher
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                GrammarMatcher::new(Arc::clone(&self.compiled))
            }
        }
    }

    /// Returns a matcher to the pool. Matchers built for a different compiled
    /// grammar or with a non-default rollback window (acquired matchers must
    /// be indistinguishable from `GrammarMatcher::new`), and matchers beyond
    /// the idle cap, are dropped instead.
    pub fn release(&self, matcher: GrammarMatcher) {
        if !Arc::ptr_eq(matcher.compiled(), &self.compiled)
            || matcher.max_rollback() != crate::DEFAULT_MAX_ROLLBACK_TOKENS
        {
            return;
        }
        let mut idle = self.lock();
        if idle.len() < self.max_idle {
            idle.push(matcher);
        }
    }

    /// Number of matchers currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.lock().len()
    }

    /// Total matchers constructed by this pool.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Total acquisitions served by reusing a pooled matcher.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<GrammarMatcher>> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerConfig, GrammarCompiler};
    use crate::mask::TokenBitmask;
    use xg_tokenizer::test_vocabulary;

    fn pool() -> (Arc<xg_tokenizer::Vocabulary>, MatcherPool) {
        let vocab = Arc::new(test_vocabulary(600));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        (vocab, MatcherPool::new(compiled))
    }

    #[test]
    fn released_matchers_are_reset_before_reuse() {
        let (vocab, pool) = pool();
        let mut matcher = pool.acquire();
        matcher.accept_bytes(b"[12").unwrap();
        pool.release(matcher);
        let mut reused = pool.acquire();
        assert_eq!(pool.reused(), 1);
        // The reused matcher is indistinguishable from a fresh one: counters
        // cleared and only '[' allowed at the start.
        assert_eq!(reused.stats(), crate::MatcherStats::default());
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        reused.fill_next_token_bitmask(&mut mask);
        for t in mask.allowed_tokens() {
            assert_eq!(vocab.token_bytes(t)[0], b'[');
        }
    }

    #[test]
    fn foreign_and_overflow_releases_are_dropped() {
        let (vocab, pool) = pool();
        // A matcher from a different compiled grammar is rejected.
        let other = GrammarCompiler::with_config(Arc::clone(&vocab), CompilerConfig::baseline())
            .compile_ebnf(r#"root ::= "x""#, "root")
            .unwrap();
        pool.release(GrammarMatcher::new(other));
        assert_eq!(pool.idle_count(), 0);
        // So is one with a non-default rollback window.
        pool.release(GrammarMatcher::with_max_rollback(
            Arc::clone(pool.compiled()),
            0,
        ));
        assert_eq!(pool.idle_count(), 0);
        // The idle cap bounds retained matchers.
        let tiny = MatcherPool::with_max_idle(Arc::clone(pool.compiled()), 1);
        let a = tiny.acquire();
        let b = tiny.acquire();
        tiny.release(a);
        tiny.release(b);
        assert_eq!(tiny.idle_count(), 1);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let (_vocab, pool) = pool();
        let pool = Arc::new(pool);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let mut m = pool.acquire();
                        m.accept_bytes(b"[1]").unwrap();
                        pool.release(m);
                    }
                });
            }
        });
        assert_eq!(pool.created() + pool.reused(), 32);
        assert!(pool.created() <= 4);
    }
}
