//! A pool of reusable [`ConstraintMatcher`]s for one compiled constraint.
//!
//! A serving engine creates one matcher per request lane. Matcher creation is
//! cheap but not free (it allocates fresh per-request state), and under heavy
//! traffic the same constraint serves thousands of requests, so lanes draw
//! matchers from a shared pool and return them when the request finishes. The
//! pool resets a matcher before handing it out, so acquired matchers are
//! always positioned at the start of the constraint.
//!
//! The pool is generic over [`ConstraintFactory`], so one type recycles
//! grammar matchers ([`CompiledGrammar`](crate::CompiledGrammar)),
//! tag-dispatch matchers
//! ([`CompiledTagDispatch`](crate::CompiledTagDispatch)), and — through the
//! per-trigger pools tag dispatch embeds — the inner matchers opened for
//! every tagged segment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::constraint::{ConstraintFactory, ConstraintMatcher};

/// A thread-safe pool of [`ConstraintMatcher`]s bound to one
/// [`ConstraintFactory`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{GrammarCompiler, MatcherPool};
/// use xg_tokenizer::test_vocabulary;
///
/// let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(600)));
/// let compiled = compiler.compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")?;
/// let pool = MatcherPool::new(compiled);
/// let matcher = pool.acquire();
/// pool.release(matcher);
/// assert_eq!(pool.created(), 1);
/// let _again = pool.acquire(); // reuses the pooled matcher
/// assert_eq!(pool.created(), 1);
/// # Ok::<(), xg_grammar::GrammarError>(())
/// ```
#[derive(Debug)]
pub struct MatcherPool {
    factory: Arc<dyn ConstraintFactory>,
    /// Rollback window of every matcher this pool creates and recycles.
    max_rollback: usize,
    idle: Mutex<Vec<Box<dyn ConstraintMatcher>>>,
    max_idle: usize,
    created: AtomicU64,
    reused: AtomicU64,
}

impl MatcherPool {
    /// Default cap on idle matchers retained by the pool.
    pub const DEFAULT_MAX_IDLE: usize = 256;

    /// Creates a pool for `factory` with the default idle cap and rollback
    /// window.
    pub fn new(factory: Arc<dyn ConstraintFactory>) -> Self {
        Self::with_max_idle(factory, Self::DEFAULT_MAX_IDLE)
    }

    /// Creates a pool retaining at most `max_idle` idle matchers; matchers
    /// released beyond the cap are dropped.
    pub fn with_max_idle(factory: Arc<dyn ConstraintFactory>, max_idle: usize) -> Self {
        Self::with_rollback_window(factory, max_idle, crate::DEFAULT_MAX_ROLLBACK_TOKENS)
    }

    /// Creates a pool whose matchers carry an explicit rollback window (e.g.
    /// the effectively-unbounded window tag dispatch gives per-segment inner
    /// matchers, which it trims externally).
    pub fn with_rollback_window(
        factory: Arc<dyn ConstraintFactory>,
        max_idle: usize,
        max_rollback: usize,
    ) -> Self {
        MatcherPool {
            factory,
            max_rollback,
            idle: Mutex::new(Vec::new()),
            max_idle,
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// The compiled constraint this pool serves.
    pub fn factory(&self) -> &Arc<dyn ConstraintFactory> {
        &self.factory
    }

    /// Identity of the compiled constraint this pool serves (its
    /// [`ConstraintFactory::factory_key`]).
    pub fn factory_key(&self) -> usize {
        self.factory.factory_key()
    }

    /// The rollback window of matchers created by this pool.
    pub fn max_rollback(&self) -> usize {
        self.max_rollback
    }

    /// Takes a matcher positioned at the start of the constraint: a reset
    /// pooled matcher when one is idle, a freshly constructed one otherwise.
    pub fn acquire(&self) -> Box<dyn ConstraintMatcher> {
        let pooled = self.lock().pop();
        match pooled {
            Some(mut matcher) => {
                matcher.reset();
                self.reused.fetch_add(1, Ordering::Relaxed);
                matcher
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&self.factory).new_matcher(self.max_rollback)
            }
        }
    }

    /// Returns a matcher to the pool. Matchers built from a different
    /// compiled constraint or with a different rollback window (acquired
    /// matchers must be indistinguishable from freshly created ones), and
    /// matchers beyond the idle cap, are dropped instead.
    pub fn release(&self, matcher: Box<dyn ConstraintMatcher>) {
        if matcher.factory_key() != self.factory.factory_key()
            || matcher.max_rollback() != self.max_rollback
        {
            return;
        }
        let mut idle = self.lock();
        if idle.len() < self.max_idle {
            idle.push(matcher);
        }
    }

    /// Number of matchers currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.lock().len()
    }

    /// Total matchers constructed by this pool.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Total acquisitions served by reusing a pooled matcher.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Box<dyn ConstraintMatcher>>> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerConfig, GrammarCompiler};
    use crate::constraint::ConstraintStats;
    use crate::mask::TokenBitmask;
    use xg_tokenizer::test_vocabulary;

    fn pool() -> (Arc<xg_tokenizer::Vocabulary>, MatcherPool) {
        let vocab = Arc::new(test_vocabulary(600));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        (vocab, MatcherPool::new(compiled))
    }

    #[test]
    fn released_matchers_are_reset_before_reuse() {
        let (vocab, pool) = pool();
        let mut matcher = pool.acquire();
        matcher.accept_bytes(b"[12").unwrap();
        pool.release(matcher);
        let mut reused = pool.acquire();
        assert_eq!(pool.reused(), 1);
        // The reused matcher is indistinguishable from a fresh one: counters
        // cleared and only '[' allowed at the start.
        assert_eq!(reused.stats(), ConstraintStats::default());
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        reused.fill_next_token_bitmask(&mut mask);
        for t in mask.allowed_tokens() {
            assert_eq!(vocab.token_bytes(t)[0], b'[');
        }
    }

    #[test]
    fn foreign_and_overflow_releases_are_dropped() {
        let (vocab, pool) = pool();
        // A matcher from a different compiled grammar is rejected.
        let other = GrammarCompiler::with_config(Arc::clone(&vocab), CompilerConfig::baseline())
            .compile_ebnf(r#"root ::= "x""#, "root")
            .unwrap();
        pool.release(MatcherPool::new(other).acquire());
        assert_eq!(pool.idle_count(), 0);
        // So is one with a different rollback window.
        let zero_window =
            MatcherPool::with_rollback_window(Arc::clone(pool.factory()), 4, 0).acquire();
        pool.release(zero_window);
        assert_eq!(pool.idle_count(), 0);
        // The idle cap bounds retained matchers.
        let tiny = MatcherPool::with_max_idle(Arc::clone(pool.factory()), 1);
        let a = tiny.acquire();
        let b = tiny.acquire();
        tiny.release(a);
        tiny.release(b);
        assert_eq!(tiny.idle_count(), 1);
    }

    #[test]
    fn pool_recycles_structural_tag_matchers_too() {
        use xg_grammar::{StructuralTag, TagContent, TagSpec};

        let vocab = Arc::new(test_vocabulary(600));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let dispatch = compiler.compile_tag_dispatch(&tag).unwrap();
        let pool = MatcherPool::new(dispatch);
        let mut matcher = pool.acquire();
        matcher.accept_bytes(b"hi <n>42</n>").unwrap();
        pool.release(matcher);
        let mut again = pool.acquire();
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
        // The recycled matcher starts from free text again.
        assert!(again.can_terminate());
        again.accept_bytes(b"<n>7</n>").unwrap();
        assert!(again.can_terminate());
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let (_vocab, pool) = pool();
        let pool = Arc::new(pool);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let mut m = pool.acquire();
                        m.accept_bytes(b"[1]").unwrap();
                        pool.release(m);
                    }
                });
            }
        });
        assert_eq!(pool.created() + pool.reused(), 32);
        assert!(pool.created() <= 4);
    }
}
