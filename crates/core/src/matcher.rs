//! The grammar matcher: the runtime half of the engine.
//!
//! A [`GrammarMatcher`] tracks the matching stacks of one generation request.
//! Each decoding step it produces a [`TokenBitmask`] (mostly by reading the
//! adaptive token mask cache and resolving the few context-dependent tokens
//! against the full stack), and after sampling it consumes the chosen token
//! to advance the stacks. It also supports O(1) rollback of recent tokens and
//! jump-forward string detection (Appendix B).

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use xg_automata::PdaEdge;
use xg_tokenizer::TokenId;

use crate::compiler::CompiledGrammar;
use crate::constraint::{ConstraintFactory, ConstraintMatcher, ConstraintStats};
use crate::error::{AcceptError, RollbackError};
use crate::executor::{advance_byte, can_pop_out, common_prefix_len, TokenTrail};
use crate::mask::TokenBitmask;
use crate::mask_cache::NodeMaskEntry;
use crate::persistent_stack::{PersistentStackTree, StackHandle};

/// Default number of recently accepted tokens that can be rolled back.
pub const DEFAULT_MAX_ROLLBACK_TOKENS: usize = 32;

/// Runtime statistics of a matcher, used by the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatcherStats {
    /// Number of masks generated.
    pub masks_generated: u64,
    /// Number of tokens accepted.
    pub tokens_accepted: u64,
    /// Context-dependent tokens checked at runtime across all masks.
    pub context_dependent_checked: u64,
    /// Tokens whose validity was read directly from the cache.
    pub context_independent_hits: u64,
    /// Bytes accepted through [`GrammarMatcher::accept_bytes`] — text that
    /// advanced the matcher without per-token sampling (jump-forward
    /// injections and any caller-seeded prefixes).
    pub bytes_forced: u64,
}

/// The incremental grammar matcher for one generation request.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{GrammarCompiler, GrammarMatcher, TokenBitmask};
/// use xg_tokenizer::test_vocabulary;
///
/// let vocab = Arc::new(test_vocabulary(600));
/// let compiler = GrammarCompiler::new(Arc::clone(&vocab));
/// let compiled = compiler.compile_builtin_json();
/// let mut matcher = GrammarMatcher::new(compiled);
///
/// let mut mask = TokenBitmask::new_all_rejected(vocab.len());
/// matcher.fill_next_token_bitmask(&mut mask);
/// assert!(mask.count_allowed() > 0);
/// ```
#[derive(Debug)]
pub struct GrammarMatcher {
    compiled: Arc<CompiledGrammar>,
    tree: PersistentStackTree,
    heads: Vec<StackHandle>,
    /// Snapshots of `heads` *before* each accepted token, newest last. A
    /// deque so that trimming the oldest snapshot is O(1) — with a `Vec`,
    /// every accepted token beyond the window paid an O(window) `remove(0)`.
    history: VecDeque<Vec<StackHandle>>,
    max_rollback: usize,
    terminated: bool,
    stats: MatcherStats,
}

impl GrammarMatcher {
    /// Creates a matcher with the default rollback window.
    pub fn new(compiled: Arc<CompiledGrammar>) -> Self {
        Self::with_max_rollback(compiled, DEFAULT_MAX_ROLLBACK_TOKENS)
    }

    /// Creates a matcher that can roll back up to `max_rollback` recently
    /// accepted tokens.
    pub fn with_max_rollback(compiled: Arc<CompiledGrammar>, max_rollback: usize) -> Self {
        let mut tree = PersistentStackTree::new();
        let start = tree.push(StackHandle::ROOT, compiled.pda().root_start());
        GrammarMatcher {
            compiled,
            tree,
            heads: vec![start],
            history: VecDeque::new(),
            max_rollback,
            terminated: false,
            stats: MatcherStats::default(),
        }
    }

    /// The compiled grammar this matcher runs.
    pub fn compiled(&self) -> &Arc<CompiledGrammar> {
        &self.compiled
    }

    /// Runtime statistics.
    pub fn stats(&self) -> MatcherStats {
        self.stats
    }

    /// Number of parallel matching stacks currently alive.
    pub fn stack_count(&self) -> usize {
        self.heads.len()
    }

    /// Returns `true` if end-of-sequence has been accepted.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Returns `true` if the text consumed so far is a complete sentence of
    /// the grammar (end-of-sequence would be accepted now).
    pub fn can_terminate(&mut self) -> bool {
        if self.terminated {
            return false;
        }
        can_pop_out(self.compiled.pda(), &mut self.tree, &self.heads)
    }

    /// Resets the matcher to the start of the grammar, clearing all history
    /// and statistics (a recycled matcher is indistinguishable from a fresh
    /// one, which [`MatcherPool`](crate::MatcherPool) relies on).
    pub fn reset(&mut self) {
        self.tree = PersistentStackTree::new();
        let start = self
            .tree
            .push(StackHandle::ROOT, self.compiled.pda().root_start());
        self.heads = vec![start];
        self.history.clear();
        self.terminated = false;
        self.stats = MatcherStats::default();
    }

    // -----------------------------------------------------------------
    // Mask generation
    // -----------------------------------------------------------------

    /// Fills `mask` with the set of tokens allowed at the next decoding step.
    ///
    /// # Panics
    ///
    /// Panics if the mask's vocabulary size differs from the compiled
    /// grammar's vocabulary.
    pub fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
        let vocab = Arc::clone(self.compiled.vocabulary());
        assert_eq!(
            mask.vocab_size(),
            vocab.len(),
            "mask size must match the vocabulary"
        );
        mask.reject_all();
        self.stats.masks_generated += 1;
        if self.terminated {
            return;
        }

        let compiled = Arc::clone(&self.compiled);
        if compiled.mask_cache().is_some() {
            self.fill_mask_with_cache(&compiled, mask);
        } else {
            self.fill_mask_naive(&compiled, mask);
        }

        // Special tokens are never produced by the grammar; EOS is allowed
        // exactly when the structure is complete.
        for special in vocab.special_ids() {
            mask.reject(special);
        }
        if let Some(eos) = vocab.eos() {
            if self.can_terminate() {
                mask.allow(eos);
            }
        }
    }

    /// Mask generation using the adaptive token mask cache and the
    /// set-based merge of Algorithm 1.
    fn fill_mask_with_cache(&mut self, compiled: &CompiledGrammar, mask: &mut TokenBitmask) {
        let cache = compiled.mask_cache().expect("checked by caller");
        let vocab = compiled.vocabulary();

        if self.heads.len() == 1 {
            // Fast path: single stack, write the mask directly. The
            // context-independent part is filled with the word-level bulk
            // kernels; only the context-dependent tokens need per-token work.
            let head = self.heads[0];
            let top = self.tree.top(head).expect("heads carry a top node");
            let entry = cache.entry(top);
            Self::fill_certain(entry, mask);
            let resolved = self.resolve_uncertain(compiled, head, entry.uncertain());
            for (i, &t) in entry.uncertain().iter().enumerate() {
                if resolved[i] {
                    mask.allow(t);
                }
            }
            self.stats.context_independent_hits += Self::certain_count(entry, vocab.len());
            return;
        }

        // Multiple parallel stacks: Algorithm 1. `partial_rej = None` encodes
        // "the whole vocabulary".
        let mut partial_acc: HashSet<TokenId> = HashSet::new();
        let mut partial_rej: Option<HashSet<TokenId>> = None;
        let heads = self.heads.clone();
        for head in heads {
            let top = self.tree.top(head).expect("heads carry a top node");
            let entry = cache.entry(top);
            let resolved = self.resolve_uncertain(compiled, head, entry.uncertain());
            match entry {
                NodeMaskEntry::AcceptHeavy {
                    rejected,
                    uncertain,
                } => {
                    // This stack rejects `rejected ∪ {unresolved uncertain}`.
                    let mut stack_rej: HashSet<TokenId> = rejected.iter().copied().collect();
                    for (i, &t) in uncertain.iter().enumerate() {
                        if !resolved[i] {
                            stack_rej.insert(t);
                        }
                    }
                    partial_rej = Some(match partial_rej.take() {
                        None => stack_rej,
                        Some(prev) => prev.intersection(&stack_rej).copied().collect(),
                    });
                    self.stats.context_independent_hits +=
                        (vocab.len() - rejected.len() - uncertain.len()) as u64;
                }
                NodeMaskEntry::RejectHeavy {
                    accepted,
                    uncertain,
                } => {
                    partial_acc.extend(accepted.iter().copied());
                    for (i, &t) in uncertain.iter().enumerate() {
                        if resolved[i] {
                            partial_acc.insert(t);
                        }
                    }
                    self.stats.context_independent_hits += accepted.len() as u64;
                }
                NodeMaskEntry::Bitset {
                    accepted,
                    uncertain,
                } => {
                    partial_acc.extend(accepted.allowed_tokens());
                    for (i, &t) in uncertain.iter().enumerate() {
                        if resolved[i] {
                            partial_acc.insert(t);
                        }
                    }
                    self.stats.context_independent_hits += accepted.count_allowed() as u64;
                }
            }
        }
        // Final mask: rejected = partial_rej \ partial_acc; everything else is
        // allowed (when no accept-heavy stack was seen, allowed = partial_acc).
        match partial_rej {
            Some(rej) => {
                mask.allow_all();
                for t in rej {
                    if !partial_acc.contains(&t) {
                        mask.reject(t);
                    }
                }
            }
            None => {
                for t in partial_acc {
                    mask.allow(t);
                }
            }
        }
    }

    /// Writes the *context-independent* portion of a cache entry into `mask`
    /// using the bulk word kernels. Context-dependent tokens are left
    /// rejected for the caller to resolve. `mask` must start all-rejected.
    fn fill_certain(entry: &NodeMaskEntry, mask: &mut TokenBitmask) {
        match entry {
            NodeMaskEntry::AcceptHeavy {
                rejected,
                uncertain,
            } => {
                mask.allow_all();
                mask.reject_many(rejected);
                mask.reject_many(uncertain);
            }
            NodeMaskEntry::RejectHeavy { accepted, .. } => {
                mask.allow_many(accepted);
            }
            NodeMaskEntry::Bitset { accepted, .. } => {
                mask.copy_from(accepted);
            }
        }
    }

    /// Number of tokens whose validity the entry answers without runtime
    /// checks (the `context_independent_hits` statistic).
    fn certain_count(entry: &NodeMaskEntry, vocab_len: usize) -> u64 {
        match entry {
            NodeMaskEntry::AcceptHeavy {
                rejected,
                uncertain,
            } => (vocab_len - rejected.len() - uncertain.len()) as u64,
            NodeMaskEntry::RejectHeavy { accepted, .. } => accepted.len() as u64,
            NodeMaskEntry::Bitset { accepted, .. } => accepted.count_allowed() as u64,
        }
    }

    /// Key identifying the shared component of this matcher's next mask.
    ///
    /// Two matchers returning the same key sit on the same automaton node of
    /// the same compiled grammar with a single stack each: their next masks
    /// differ only in the context-dependent tokens and the EOS bit, so one
    /// [`fill_mask_base`](Self::fill_mask_base) pass over the token-mask
    /// cache entry can serve all of them. Returns `None` when no shared base
    /// exists (multiple stacks, no mask cache, or already terminated).
    pub fn mask_batch_key(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        if self.terminated || self.heads.len() != 1 || self.compiled.mask_cache().is_none() {
            return None;
        }
        let top = self.tree.top(self.heads[0])?;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (Arc::as_ptr(&self.compiled) as usize).hash(&mut h);
        top.0.hash(&mut h);
        Some(h.finish())
    }

    /// Fills `base` with the context-independent portion of the next mask —
    /// the part shared by every matcher with the same
    /// [`mask_batch_key`](Self::mask_batch_key). Context-dependent tokens are
    /// rejected in the base; EOS/special handling is left to
    /// [`fill_next_token_bitmask_from_base`](Self::fill_next_token_bitmask_from_base).
    ///
    /// Returns `false` (leaving `base` untouched) when this matcher has no
    /// shared base (see [`mask_batch_key`](Self::mask_batch_key)).
    pub fn fill_mask_base(&mut self, base: &mut TokenBitmask) -> bool {
        if self.mask_batch_key().is_none() {
            return false;
        }
        assert_eq!(
            base.vocab_size(),
            self.compiled.vocabulary().len(),
            "mask size must match the vocabulary"
        );
        let compiled = Arc::clone(&self.compiled);
        let cache = compiled.mask_cache().expect("checked by mask_batch_key");
        let top = self
            .tree
            .top(self.heads[0])
            .expect("heads carry a top node");
        base.reject_all();
        Self::fill_certain(cache.entry(top), base);
        true
    }

    /// Like [`fill_next_token_bitmask`](Self::fill_next_token_bitmask), but
    /// starting from a shared `base` produced by
    /// [`fill_mask_base`](Self::fill_mask_base) on a matcher with the same
    /// [`mask_batch_key`](Self::mask_batch_key): the context-independent
    /// portion is a word-level copy, and only this matcher's
    /// context-dependent tokens and EOS bit are computed. The result is
    /// bit-for-bit identical to a full fill.
    ///
    /// # Panics
    ///
    /// Panics if the mask or base size differs from the vocabulary, or if
    /// this matcher has no [`mask_batch_key`](Self::mask_batch_key) (callers
    /// group lanes by key before using the base path).
    pub fn fill_next_token_bitmask_from_base(
        &mut self,
        mask: &mut TokenBitmask,
        base: &TokenBitmask,
    ) {
        let vocab = Arc::clone(self.compiled.vocabulary());
        assert_eq!(
            mask.vocab_size(),
            vocab.len(),
            "mask size must match the vocabulary"
        );
        assert!(
            self.mask_batch_key().is_some(),
            "matcher has no shared mask base"
        );
        self.stats.masks_generated += 1;
        mask.copy_from(base);
        let compiled = Arc::clone(&self.compiled);
        let cache = compiled.mask_cache().expect("checked by mask_batch_key");
        let head = self.heads[0];
        let top = self.tree.top(head).expect("heads carry a top node");
        let entry = cache.entry(top);
        let resolved = self.resolve_uncertain(&compiled, head, entry.uncertain());
        for (i, &t) in entry.uncertain().iter().enumerate() {
            if resolved[i] {
                mask.allow(t);
            }
        }
        self.stats.context_independent_hits += Self::certain_count(entry, vocab.len());
        for special in vocab.special_ids() {
            mask.reject(special);
        }
        if let Some(eos) = vocab.eos() {
            if self.can_terminate() {
                mask.allow(eos);
            }
        }
    }

    /// Mask generation without the cache: every token is checked against the
    /// full stack (the "PDA baseline" of the ablation study). Tokens are still
    /// checked in sorted order to share prefixes.
    fn fill_mask_naive(&mut self, compiled: &CompiledGrammar, mask: &mut TokenBitmask) {
        let vocab = Arc::clone(compiled.vocabulary());
        let sorted_ids: Vec<TokenId> = compiled.sorted_vocabulary().ids().to_vec();
        let pda = compiled.pda();
        let mut trail = TokenTrail::new(self.heads.clone());
        let mut prev: &[u8] = &[];
        for &token in &sorted_ids {
            let bytes = vocab.token_bytes(token);
            let keep = common_prefix_len(prev, bytes);
            let ok = trail.match_token(pda, &mut self.tree, bytes, keep);
            if ok {
                mask.allow(token);
            }
            prev = bytes;
            self.stats.context_dependent_checked += 1;
        }
    }

    /// Resolves the context-dependent tokens of one stack by matching them
    /// against the full stack, reusing shared prefixes between consecutive
    /// tokens. Returns one boolean per uncertain token (true = allowed).
    fn resolve_uncertain(
        &mut self,
        compiled: &CompiledGrammar,
        head: StackHandle,
        uncertain: &[TokenId],
    ) -> Vec<bool> {
        if uncertain.is_empty() {
            return Vec::new();
        }
        let vocab = Arc::clone(compiled.vocabulary());
        let pda = compiled.pda();
        let mut out = Vec::with_capacity(uncertain.len());
        let mut trail = TokenTrail::new(vec![head]);
        let mut prev: &[u8] = &[];
        for &token in uncertain {
            let bytes = vocab.token_bytes(token);
            let keep = common_prefix_len(prev, bytes);
            out.push(trail.match_token(pda, &mut self.tree, bytes, keep));
            prev = bytes;
            self.stats.context_dependent_checked += 1;
        }
        out
    }

    // -----------------------------------------------------------------
    // Advancing and rolling back
    // -----------------------------------------------------------------

    /// Accepts a sampled token, advancing the matcher state.
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] (leaving the state unchanged) when the
    /// token violates the grammar, is unknown, is a non-EOS special token, or
    /// when EOS is offered before the structure is complete.
    pub fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let vocab = Arc::clone(self.compiled.vocabulary());
        if token.index() >= vocab.len() {
            return Err(AcceptError::UnknownToken { token });
        }
        if vocab.is_special(token) {
            if Some(token) == vocab.eos() {
                if self.can_terminate() {
                    self.push_history();
                    self.terminated = true;
                    self.stats.tokens_accepted += 1;
                    return Ok(());
                }
                return Err(AcceptError::CannotTerminate);
            }
            return Err(AcceptError::SpecialTokenRejected { token });
        }
        let bytes = vocab.token_bytes(token).to_vec();
        let compiled = Arc::clone(&self.compiled);
        let mut heads = self.heads.clone();
        for (i, &b) in bytes.iter().enumerate() {
            heads = advance_byte(compiled.pda(), &mut self.tree, &heads, b, |_| {});
            if heads.is_empty() {
                return Err(AcceptError::TokenRejected {
                    token,
                    matched_bytes: i,
                });
            }
        }
        self.push_history();
        self.heads = self.canonicalize_heads(&compiled, heads);
        self.stats.tokens_accepted += 1;
        Ok(())
    }

    /// Verifies a speculative k-token draft in one call: accepts tokens from
    /// `tokens` in order until one is rejected, and returns the length of the
    /// accepted prefix. The matcher ends advanced by exactly that prefix —
    /// byte-identical to a token-by-token [`accept_token`](Self::accept_token)
    /// loop — and each accepted token remains an individual rollback unit
    /// (persistent-stack snapshot), so a caller can
    /// [`rollback`](Self::rollback) any suffix of the draft afterwards.
    ///
    /// This is the fast path for speculative decoding: the per-call setup
    /// (vocabulary and grammar handles) is hoisted out of the loop and the
    /// first rejected byte stops the scan without unwinding, so verifying a
    /// draft costs one call instead of k.
    pub fn accept_tokens_speculative(&mut self, tokens: &[TokenId]) -> usize {
        let vocab = Arc::clone(self.compiled.vocabulary());
        let compiled = Arc::clone(&self.compiled);
        let mut accepted = 0;
        for &token in tokens {
            if self.terminated || token.index() >= vocab.len() {
                break;
            }
            if vocab.is_special(token) {
                if Some(token) == vocab.eos() && self.can_terminate() {
                    self.push_history();
                    self.terminated = true;
                    self.stats.tokens_accepted += 1;
                    accepted += 1;
                    continue;
                }
                break;
            }
            let bytes = vocab.token_bytes(token);
            let mut heads = self.heads.clone();
            let mut ok = true;
            for &b in bytes {
                heads = advance_byte(compiled.pda(), &mut self.tree, &heads, b, |_| {});
                if heads.is_empty() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            self.push_history();
            self.heads = self.canonicalize_heads(&compiled, heads);
            self.stats.tokens_accepted += 1;
            accepted += 1;
        }
        accepted
    }

    /// Eagerly pops completed rules whose final node has no further local
    /// edges: such a node carries no information beyond "return to the
    /// parent", so replacing it with the parent frame keeps stack tops on
    /// informative nodes (whose cache entries have few context-dependent
    /// tokens) without changing the recognized language.
    fn canonicalize_heads(
        &mut self,
        compiled: &CompiledGrammar,
        heads: Vec<StackHandle>,
    ) -> Vec<StackHandle> {
        let pda = compiled.pda();
        let mut out = Vec::with_capacity(heads.len());
        let mut seen = HashSet::new();
        for mut h in heads {
            loop {
                let top = self.tree.top(h).expect("heads carry a top node");
                let node = pda.node(top);
                if node.is_final && node.edges.is_empty() && self.tree.depth(h) > 1 {
                    h = self.tree.pop(h);
                } else {
                    break;
                }
            }
            if seen.insert(h) {
                out.push(h);
            }
        }
        out
    }

    /// Accepts a raw string (used by jump-forward decoding, Appendix B, where
    /// deterministic text is appended without sampling). The string is
    /// recorded as a single rollback unit.
    ///
    /// # Errors
    ///
    /// Returns [`AcceptError::BytesRejected`] (reporting how many bytes
    /// matched before failing) if the bytes violate the grammar; the state is
    /// unchanged.
    pub fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let compiled = Arc::clone(&self.compiled);
        let mut heads = self.heads.clone();
        for (i, &b) in bytes.iter().enumerate() {
            heads = advance_byte(compiled.pda(), &mut self.tree, &heads, b, |_| {});
            if heads.is_empty() {
                return Err(AcceptError::BytesRejected { matched_bytes: i });
            }
        }
        self.push_history();
        self.heads = self.canonicalize_heads(&compiled, heads);
        self.stats.bytes_forced += bytes.len() as u64;
        Ok(())
    }

    fn push_history(&mut self) {
        if self.max_rollback == 0 {
            return;
        }
        self.history.push_back(self.heads.clone());
        if self.history.len() > self.max_rollback {
            self.history.pop_front();
        }
    }

    /// Number of accepted tokens that can currently be rolled back.
    pub fn rollback_window(&self) -> usize {
        self.history.len()
    }

    /// The maximum rollback window this matcher was created with.
    pub fn max_rollback(&self) -> usize {
        self.max_rollback
    }

    /// Rolls back the last `num_tokens` accepted tokens (or jump-forward
    /// strings). Rollback is O(1) per token: it only restores stack handles
    /// saved in the persistent stack tree.
    ///
    /// # Errors
    ///
    /// Returns a [`RollbackError`] if more tokens are requested than the
    /// rollback window holds; the state is unchanged.
    pub fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
        if num_tokens == 0 {
            return Ok(());
        }
        if num_tokens > self.history.len() {
            return Err(RollbackError {
                requested: num_tokens,
                available: self.history.len(),
            });
        }
        // The state before the k-th most recent token is the k-th entry from
        // the back of the history.
        let target = self.history.len() - num_tokens;
        self.heads = self.history[target].clone();
        self.history.truncate(target);
        self.terminated = false;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Jump-forward decoding support
    // -----------------------------------------------------------------

    /// Finds the longest string that is *forced* by the grammar from the
    /// current position: while exactly one next byte is possible (and the
    /// grammar cannot terminate instead), that byte is appended. The matcher
    /// state is not modified.
    ///
    /// The result always ends on a complete UTF-8 character boundary: when
    /// the forced bytes stop in the middle of a multi-byte codepoint (e.g.
    /// two alternatives share a lead byte), the trailing incomplete sequence
    /// is trimmed rather than handed to the tokenizer, which could not
    /// re-tokenize a split codepoint.
    pub fn find_jump_forward_string(&mut self) -> Vec<u8> {
        const MAX_JUMP_FORWARD_BYTES: usize = 512;
        let compiled = Arc::clone(&self.compiled);
        let pda = compiled.pda();
        let mut heads = self.heads.clone();
        let mut out = Vec::new();
        if self.terminated {
            return out;
        }
        loop {
            if out.len() >= MAX_JUMP_FORWARD_BYTES {
                break;
            }
            // If the grammar can terminate here, the next byte is not forced.
            if can_pop_out(pda, &mut self.tree, &heads) {
                break;
            }
            let Some(byte) = Self::sole_next_byte(pda, &mut self.tree, &heads) else {
                break;
            };
            let next = advance_byte(pda, &mut self.tree, &heads, byte, |_| {});
            if next.is_empty() {
                break;
            }
            out.push(byte);
            heads = next;
        }
        // Trim to the last complete character boundary.
        if let Err(e) = std::str::from_utf8(&out) {
            out.truncate(e.valid_up_to());
        }
        out
    }

    /// Like [`find_jump_forward_string`](Self::find_jump_forward_string), but
    /// returned as a `String` (the forced bytes are always trimmed to a
    /// complete UTF-8 prefix, so the conversion cannot fail).
    pub fn find_jump_forward_str(&mut self) -> String {
        String::from_utf8(self.find_jump_forward_string())
            .expect("forced string is trimmed to a valid UTF-8 boundary")
    }

    /// Returns the unique next byte if exactly one byte value can be consumed
    /// from the given heads, or `None` if zero or more than one byte is
    /// possible.
    fn sole_next_byte(
        pda: &xg_automata::Pda,
        tree: &mut PersistentStackTree,
        heads: &[StackHandle],
    ) -> Option<u8> {
        let expanded = crate::executor::closure(pda, tree, heads, |_| {});
        let mut candidate: Option<u8> = None;
        for h in expanded {
            let top = tree.top(h).expect("heads carry a top node");
            for edge in &pda.node(top).edges {
                if let PdaEdge::Bytes { range, .. } = edge {
                    if range.lo != range.hi {
                        return None;
                    }
                    match candidate {
                        None => candidate = Some(range.lo),
                        Some(existing) if existing == range.lo => {}
                        Some(_) => return None,
                    }
                }
            }
        }
        candidate
    }
}

impl ConstraintMatcher for GrammarMatcher {
    fn vocabulary(&self) -> &Arc<xg_tokenizer::Vocabulary> {
        self.compiled.vocabulary()
    }

    fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
        GrammarMatcher::fill_next_token_bitmask(self, mask);
    }

    fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
        GrammarMatcher::accept_token(self, token)
    }

    fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError> {
        GrammarMatcher::accept_bytes(self, bytes)
    }

    fn accept_tokens_speculative(&mut self, tokens: &[TokenId]) -> usize {
        GrammarMatcher::accept_tokens_speculative(self, tokens)
    }

    fn mask_batch_key(&self) -> Option<u64> {
        GrammarMatcher::mask_batch_key(self)
    }

    fn fill_mask_base(&mut self, base: &mut TokenBitmask) -> bool {
        GrammarMatcher::fill_mask_base(self, base)
    }

    fn fill_next_token_bitmask_from_base(&mut self, mask: &mut TokenBitmask, base: &TokenBitmask) {
        GrammarMatcher::fill_next_token_bitmask_from_base(self, mask, base)
    }

    fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
        GrammarMatcher::rollback(self, num_tokens)
    }

    fn rollback_window(&self) -> usize {
        GrammarMatcher::rollback_window(self)
    }

    fn max_rollback(&self) -> usize {
        GrammarMatcher::max_rollback(self)
    }

    fn find_jump_forward_string(&mut self) -> Vec<u8> {
        GrammarMatcher::find_jump_forward_string(self)
    }

    fn can_terminate(&mut self) -> bool {
        GrammarMatcher::can_terminate(self)
    }

    fn is_terminated(&self) -> bool {
        GrammarMatcher::is_terminated(self)
    }

    fn reset(&mut self) {
        GrammarMatcher::reset(self);
    }

    fn stats(&self) -> ConstraintStats {
        ConstraintStats {
            masks_generated: self.stats.masks_generated,
            tokens_accepted: self.stats.tokens_accepted,
            bytes_forced: self.stats.bytes_forced,
        }
    }

    fn trim_history(&mut self, keep: usize) {
        while self.history.len() > keep {
            self.history.pop_front();
        }
    }

    fn factory_key(&self) -> usize {
        ConstraintFactory::factory_key(&*self.compiled)
    }
}

impl ConstraintFactory for CompiledGrammar {
    fn new_matcher(self: Arc<Self>, max_rollback: usize) -> Box<dyn ConstraintMatcher> {
        Box::new(GrammarMatcher::with_max_rollback(self, max_rollback))
    }

    fn vocabulary(&self) -> &Arc<xg_tokenizer::Vocabulary> {
        CompiledGrammar::vocabulary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerConfig, GrammarCompiler};
    use std::sync::Arc;
    use xg_tokenizer::{test_vocabulary, Vocabulary};

    fn setup(grammar: &str) -> (Arc<Vocabulary>, GrammarMatcher) {
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_ebnf(grammar, "root").unwrap();
        (vocab, GrammarMatcher::new(compiled))
    }

    fn token_for(vocab: &Vocabulary, bytes: &[u8]) -> TokenId {
        vocab
            .iter()
            .find(|(_, t)| *t == bytes)
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                panic!(
                    "token {:?} not in vocabulary",
                    String::from_utf8_lossy(bytes)
                )
            })
    }

    #[test]
    fn mask_agrees_with_naive_full_scan() {
        // The cached mask must equal the mask produced by checking every
        // token against the full stack.
        let vocab = Arc::new(test_vocabulary(800));
        let grammar = xg_grammar::builtin::json_grammar();
        let cached = GrammarCompiler::new(Arc::clone(&vocab)).compile_grammar(&grammar);
        let naive = GrammarCompiler::with_config(
            Arc::clone(&vocab),
            CompilerConfig {
                enable_mask_cache: false,
                ..Default::default()
            },
        )
        .compile_grammar(&grammar);
        let mut m_cached = GrammarMatcher::new(cached);
        let mut m_naive = GrammarMatcher::new(naive);
        let mut mask_cached = TokenBitmask::new_all_rejected(vocab.len());
        let mut mask_naive = TokenBitmask::new_all_rejected(vocab.len());

        let prefix = br#"{"name": ["a", 1"#;
        for step in 0..=prefix.len() {
            m_cached.fill_next_token_bitmask(&mut mask_cached);
            m_naive.fill_next_token_bitmask(&mut mask_naive);
            assert_eq!(
                mask_cached, mask_naive,
                "masks diverge after {step} bytes of prefix"
            );
            if step < prefix.len() {
                m_cached.accept_bytes(&prefix[step..step + 1]).unwrap();
                m_naive.accept_bytes(&prefix[step..step + 1]).unwrap();
            }
        }
    }

    #[test]
    fn accept_token_rejects_invalid_tokens() {
        let (vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let open = token_for(&vocab, b"[");
        let digit = token_for(&vocab, b"7");
        let alpha = token_for(&vocab, b"x");
        matcher.accept_token(open).unwrap();
        assert!(matches!(
            matcher.accept_token(alpha),
            Err(AcceptError::TokenRejected { .. })
        ));
        matcher.accept_token(digit).unwrap();
        assert_eq!(matcher.stats().tokens_accepted, 2);
    }

    #[test]
    fn eos_only_allowed_when_complete() {
        let (vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let eos = vocab.eos().unwrap();
        assert!(matches!(
            matcher.accept_token(eos),
            Err(AcceptError::CannotTerminate)
        ));
        for tok in [&b"["[..], b"4", b"2", b"]"] {
            matcher.accept_token(token_for(&vocab, tok)).unwrap();
        }
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(eos));
        matcher.accept_token(eos).unwrap();
        assert!(matcher.is_terminated());
        assert!(matches!(
            matcher.accept_token(token_for(&vocab, b"1")),
            Err(AcceptError::AlreadyTerminated)
        ));
    }

    #[test]
    fn mask_only_allows_grammatical_tokens() {
        let (vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        // Every allowed token must start with '['.
        for t in mask.allowed_tokens() {
            let bytes = vocab.token_bytes(t);
            assert_eq!(bytes[0], b'[', "unexpected allowed token {:?}", bytes);
        }
        assert!(mask.count_allowed() > 0);
        // BOS is never allowed.
        assert!(!mask.is_allowed(TokenId(0)));
    }

    #[test]
    fn rollback_restores_previous_state() {
        let (vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let open = token_for(&vocab, b"[");
        let digit = token_for(&vocab, b"3");
        let close = token_for(&vocab, b"]");
        matcher.accept_token(open).unwrap();
        matcher.accept_token(digit).unwrap();
        matcher.accept_token(close).unwrap();
        assert!(matcher.can_terminate());
        // Roll back the `]` and one digit, then take a different path.
        matcher.rollback(2).unwrap();
        assert!(!matcher.can_terminate());
        matcher.accept_token(token_for(&vocab, b"9")).unwrap();
        matcher.accept_token(close).unwrap();
        assert!(matcher.can_terminate());
        // Rolling back more than the window is an error.
        assert!(matcher.rollback(100).is_err());
    }

    #[test]
    fn rollback_after_eos_reopens_the_matcher() {
        let (vocab, mut matcher) = setup(r#"root ::= "ok""#);
        matcher.accept_bytes(b"ok").unwrap();
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        assert!(matcher.is_terminated());
        matcher.rollback(1).unwrap();
        assert!(!matcher.is_terminated());
        assert!(matcher.can_terminate());
    }

    #[test]
    fn jump_forward_finds_forced_strings() {
        // After `{`, the schema-like grammar forces the literal key.
        let (_vocab, mut matcher) = setup(r#"root ::= "{\"name\": \"" [a-z]+ "\"}""#);
        let jump = matcher.find_jump_forward_string();
        assert_eq!(jump, b"{\"name\": \"".to_vec());
        // The state is unchanged by the search.
        assert_eq!(matcher.stats().tokens_accepted, 0);
        matcher.accept_bytes(&jump).unwrap();
        // Inside [a-z]+ nothing is forced.
        assert!(matcher.find_jump_forward_string().is_empty());
    }

    #[test]
    fn accept_bytes_reports_rejection_with_matched_prefix() {
        let (_vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let err = matcher.accept_bytes(b"[12x").unwrap_err();
        assert_eq!(err, AcceptError::BytesRejected { matched_bytes: 3 });
        // The failed call left the state unchanged: the valid prefix still
        // matches from the start.
        matcher.accept_bytes(b"[12]").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn rollback_window_trims_oldest_snapshots() {
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_ebnf(r#"root ::= [0-9]+"#, "root").unwrap();
        let mut matcher = GrammarMatcher::with_max_rollback(compiled, 3);
        for _ in 0..10 {
            matcher.accept_token(token_for(&vocab, b"5")).unwrap();
        }
        assert_eq!(matcher.rollback_window(), 3);
        assert!(matcher.rollback(4).is_err());
        matcher.rollback(3).unwrap();
        assert_eq!(matcher.rollback_window(), 0);
        // 7 tokens remain accepted; the matcher still continues correctly.
        matcher.accept_token(token_for(&vocab, b"9")).unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn rollback_across_jump_forward_units() {
        // Tokens and jump-forward strings are interleaved rollback units.
        let (vocab, mut matcher) = setup(r#"root ::= "{\"id\": " [0-9]+ "}""#);
        let jump = matcher.find_jump_forward_string();
        assert_eq!(jump, b"{\"id\": ".to_vec());
        matcher.accept_bytes(&jump).unwrap(); // unit 1 (jump-forward)
        matcher.accept_token(token_for(&vocab, b"4")).unwrap(); // unit 2
        matcher.accept_token(token_for(&vocab, b"2")).unwrap(); // unit 3
        assert_eq!(matcher.rollback_window(), 3);
        // Roll back across the jump-forward unit to the very start.
        matcher.rollback(3).unwrap();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        for t in mask.allowed_tokens() {
            assert_eq!(vocab.token_bytes(t)[0], b'{');
        }
        // The same jump is forced again and the run completes.
        assert_eq!(matcher.find_jump_forward_string(), jump);
        matcher.accept_bytes(&jump).unwrap();
        matcher.accept_token(token_for(&vocab, b"7")).unwrap();
        matcher.accept_token(token_for(&vocab, b"}")).unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn jump_forward_never_splits_utf8_codepoints() {
        // α (0xCE 0xB1) and β (0xCE 0xB2) share the lead byte 0xCE: the raw
        // forced bytes end mid-codepoint and must be trimmed to nothing.
        let (_vocab, mut matcher) = setup(r#"root ::= "α" | "β""#);
        assert!(matcher.find_jump_forward_string().is_empty());
        assert_eq!(matcher.find_jump_forward_str(), "");
        // A fully forced multi-byte string is returned whole.
        let (_vocab, mut matcher) = setup(r#"root ::= "héllo" [0-9]"#);
        assert_eq!(matcher.find_jump_forward_str(), "héllo");
        // A forced literal whose *continuation* diverges mid-codepoint keeps
        // the complete-character prefix only.
        let (_vocab, mut matcher) = setup(r#"root ::= "x" ("α" | "β")"#);
        assert_eq!(matcher.find_jump_forward_str(), "x");
    }

    #[test]
    fn reset_returns_to_initial_state() {
        let (vocab, mut matcher) = setup(r#"root ::= "[" [0-9]+ "]""#);
        matcher.accept_token(token_for(&vocab, b"[")).unwrap();
        matcher.reset();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        for t in mask.allowed_tokens() {
            assert_eq!(vocab.token_bytes(t)[0], b'[');
        }
    }

    #[test]
    fn base_fill_is_bit_identical_to_full_fill() {
        // Two lanes in the same automaton state: one exports the shared
        // base, both fill from it, and the results must equal a full fill.
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_builtin_json();
        let mut a = GrammarMatcher::new(Arc::clone(&compiled));
        let mut b = GrammarMatcher::new(compiled);
        a.accept_bytes(br#"{"k": ["#).unwrap();
        b.accept_bytes(br#"{"k": ["#).unwrap();
        assert_eq!(a.mask_batch_key(), b.mask_batch_key());
        assert!(a.mask_batch_key().is_some());

        let mut base = TokenBitmask::new_all_rejected(vocab.len());
        assert!(a.fill_mask_base(&mut base));
        let mut from_base_a = TokenBitmask::new_all_rejected(vocab.len());
        let mut from_base_b = TokenBitmask::new_all_rejected(vocab.len());
        a.fill_next_token_bitmask_from_base(&mut from_base_a, &base);
        b.fill_next_token_bitmask_from_base(&mut from_base_b, &base);

        let mut full = TokenBitmask::new_all_rejected(vocab.len());
        a.fill_next_token_bitmask(&mut full);
        assert_eq!(from_base_a, full);
        assert_eq!(from_base_b, full);
    }

    #[test]
    fn batch_key_distinguishes_states_and_grammars() {
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let json = compiler.compile_builtin_json();
        let other = compiler
            .compile_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root")
            .unwrap();
        let mut a = GrammarMatcher::new(Arc::clone(&json));
        let mut b = GrammarMatcher::new(Arc::clone(&json));
        let c = GrammarMatcher::new(other);
        assert_eq!(a.mask_batch_key(), b.mask_batch_key());
        assert_ne!(a.mask_batch_key(), c.mask_batch_key());
        b.accept_bytes(b"{").unwrap();
        assert_ne!(a.mask_batch_key(), b.mask_batch_key());
        // A terminated matcher has no shared base.
        a.accept_bytes(b"{}").unwrap();
        a.accept_token(vocab.eos().unwrap()).unwrap();
        assert_eq!(a.mask_batch_key(), None);
    }

    #[test]
    fn speculative_accepts_longest_prefix_byte_identically() {
        let (vocab, mut spec) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let (_vocab2, mut serial) = setup(r#"root ::= "[" [0-9]+ "]""#);
        let draft: Vec<TokenId> = [&b"["[..], b"1", b"2", b"3", b"4", b"]", b"x", b"5"]
            .iter()
            .map(|b| token_for(&vocab, b))
            .collect();
        let accepted = spec.accept_tokens_speculative(&draft);
        // Token-by-token reference loop.
        let mut reference = 0;
        for &t in &draft {
            if serial.accept_token(t).is_err() {
                break;
            }
            reference += 1;
        }
        assert_eq!(accepted, reference);
        assert_eq!(accepted, 6); // "[1234]" then "x" is rejected
                                 // Byte-identical state: same next mask, same rollback window.
        let mut m_spec = TokenBitmask::new_all_rejected(vocab.len());
        let mut m_serial = TokenBitmask::new_all_rejected(vocab.len());
        spec.fill_next_token_bitmask(&mut m_spec);
        serial.fill_next_token_bitmask(&mut m_serial);
        assert_eq!(m_spec, m_serial);
        assert_eq!(spec.rollback_window(), serial.rollback_window());
        // Each draft token is its own rollback unit.
        spec.rollback(2).unwrap();
        serial.rollback(2).unwrap();
        spec.fill_next_token_bitmask(&mut m_spec);
        serial.fill_next_token_bitmask(&mut m_serial);
        assert_eq!(m_spec, m_serial);
    }

    #[test]
    fn speculative_handles_eos_and_termination() {
        let (vocab, mut matcher) = setup(r#"root ::= "ok""#);
        let eos = vocab.eos().unwrap();
        let draft = [
            token_for(&vocab, b"o"),
            token_for(&vocab, b"k"),
            eos,
            token_for(&vocab, b"o"),
        ];
        // EOS is accepted once the structure completes; nothing after it.
        assert_eq!(matcher.accept_tokens_speculative(&draft), 3);
        assert!(matcher.is_terminated());
        // On a terminated matcher nothing is accepted.
        assert_eq!(matcher.accept_tokens_speculative(&draft), 0);
    }

    #[test]
    fn terminated_matcher_allows_nothing() {
        let (vocab, mut matcher) = setup(r#"root ::= "ok""#);
        matcher.accept_bytes(b"ok").unwrap();
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        matcher.fill_next_token_bitmask(&mut mask);
        assert_eq!(mask.count_allowed(), 0);
    }
}
