//! A bounded LRU cache of compiled structural-tag dispatches.
//!
//! [`GrammarCompiler::compile_tag_dispatch`](crate::GrammarCompiler::compile_tag_dispatch)
//! memoizes whole compiled tool registries so a serving batch that re-submits
//! its registry skips the schema-to-grammar conversion, combined-grammar
//! construction and trigger-scanner build. The memo used to be an unbounded
//! `HashMap` with a clear-on-overflow escape hatch; a process facing
//! *churning* registries (agentic sessions registering and retiring tools
//! every few turns) leaked compiled artifacts without bound, and the
//! occasional full clear threw away every live registry at once.
//!
//! [`TagDispatchCache`] applies the same discipline as
//! [`GrammarCache`](crate::GrammarCache): a byte budget fed by
//! [`CompiledTagDispatch::memory_bytes`], an entry cap, least-recently-used
//! eviction, and hit/miss/eviction counters. The eviction counter doubles as
//! a cheap change signal for sidecar caches (per-registry matcher pools in
//! `xg-baselines`): while it is unchanged, nothing was evicted and pruning
//! can be skipped entirely.
//!
//! Keys are the full `Debug` rendering of the [`StructuralTag`] description
//! (stored whole — a truncated hash could silently alias two registries).
//! Insertion keeps the *first* dispatch stored under a key, so concurrent
//! identical compiles that race past the lookup still end up sharing one
//! `Arc`.
//!
//! [`StructuralTag`]: xg_grammar::StructuralTag

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::tag_dispatch::CompiledTagDispatch;

/// Configuration of a [`TagDispatchCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagDispatchCacheConfig {
    /// Byte budget across all cached dispatches, estimated with
    /// [`CompiledTagDispatch::memory_bytes`]. When an insertion pushes the
    /// total over the budget, least-recently-used entries are evicted. A
    /// single entry larger than the budget is still cached until the next
    /// insertion.
    pub max_bytes: usize,
    /// Maximum number of cached dispatches, enforced the same way.
    pub max_entries: usize,
}

impl Default for TagDispatchCacheConfig {
    fn default() -> Self {
        TagDispatchCacheConfig {
            // A dispatch pins one compiled grammar per trigger, so the byte
            // budget is the real bound; the entry cap mirrors the old memo
            // cap as a backstop for registries with tiny sub-grammars.
            max_bytes: 64 * 1024 * 1024,
            max_entries: 64,
        }
    }
}

impl TagDispatchCacheConfig {
    /// An unbounded cache (no eviction), for tests and short-lived jobs.
    pub fn unbounded() -> Self {
        TagDispatchCacheConfig {
            max_bytes: usize::MAX,
            max_entries: usize::MAX,
        }
    }
}

/// Counters exposed by a [`TagDispatchCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagDispatchCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the caller then compiles and inserts).
    pub misses: u64,
    /// Entries evicted to stay within the byte / entry budget.
    pub evictions: u64,
    /// Estimated bytes currently held by cached dispatches.
    pub current_bytes: u64,
    /// Number of cached dispatches.
    pub entries: u64,
}

impl TagDispatchCacheStats {
    /// Fraction of lookups served from the cache, in `[0, 1]` (0 when no
    /// lookups have been made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    dispatch: Arc<CompiledTagDispatch>,
    /// LRU clock value of the most recent access.
    last_used: u64,
    bytes: usize,
}

#[derive(Default)]
struct CacheState {
    slots: HashMap<String, Slot>,
    clock: u64,
    total_bytes: usize,
}

/// A thread-safe LRU cache of [`CompiledTagDispatch`]es with a byte budget.
/// See the module docs for the design.
pub struct TagDispatchCache {
    config: TagDispatchCacheConfig,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for TagDispatchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagDispatchCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl TagDispatchCache {
    /// Creates a cache with the given budget.
    pub fn new(config: TagDispatchCacheConfig) -> Self {
        TagDispatchCache {
            config,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The budget this cache was created with.
    pub fn config(&self) -> &TagDispatchCacheConfig {
        &self.config
    }

    /// Current counters. `hits`/`misses`/`evictions` are monotonically
    /// increasing; `current_bytes`/`entries` are gauges.
    pub fn stats(&self) -> TagDispatchCacheStats {
        let state = self.lock();
        TagDispatchCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            current_bytes: state.total_bytes as u64,
            entries: state.slots.len() as u64,
        }
    }

    /// Number of cached dispatches.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Returns `true` if the cache holds no dispatches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions so far (a lock-free read of the counter
    /// [`stats`](Self::stats) reports). Sidecar caches snapshot this to skip
    /// pruning entirely while no eviction has happened.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every cached dispatch (holders of an `Arc` keep theirs). Every
    /// removed entry counts as an eviction, so sidecar caches keyed on
    /// [`eviction_count`](Self::eviction_count) notice the purge; the
    /// hit/miss counters are not reset.
    pub fn clear(&self) {
        let mut state = self.lock();
        let removed = state.slots.len() as u64;
        state.slots.clear();
        state.total_bytes = 0;
        self.evictions.fetch_add(removed, Ordering::Relaxed);
    }

    /// Looks up `key`, counting a hit or miss and refreshing the entry's LRU
    /// position on a hit. On a miss the caller compiles the dispatch and
    /// stores it with [`insert`](Self::insert).
    pub fn get(&self, key: &str) -> Option<Arc<CompiledTagDispatch>> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        match state.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.dispatch))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns `true` if `key` is currently cached, without counting a
    /// hit/miss or touching the LRU position. Admission control uses this to
    /// classify cache-hit admissions.
    pub fn peek(&self, key: &str) -> bool {
        self.lock().slots.contains_key(key)
    }

    /// Returns `true` if some cached dispatch has this factory identity (see
    /// [`ConstraintFactory::factory_key`](crate::ConstraintFactory::factory_key)).
    /// Sidecar caches keyed per compiled dispatch use this to prune state
    /// for evicted registries.
    pub fn contains_factory(&self, factory_key: usize) -> bool {
        self.lock()
            .slots
            .values()
            .any(|slot| crate::ConstraintFactory::factory_key(&*slot.dispatch) == factory_key)
    }

    /// Stores `dispatch` under `key` and returns the cached instance. When a
    /// concurrent identical compile raced past the lookup and inserted
    /// first, the *first-stored* dispatch wins and is returned, so every
    /// caller shares one `Arc`. Inserting may evict least-recently-used
    /// entries to stay within budget (the key just inserted is exempt).
    pub fn insert(
        &self,
        key: String,
        dispatch: Arc<CompiledTagDispatch>,
    ) -> Arc<CompiledTagDispatch> {
        let mut state = self.lock();
        state.clock += 1;
        let clock = state.clock;
        if let Some(slot) = state.slots.get_mut(&key) {
            slot.last_used = clock;
            return Arc::clone(&slot.dispatch);
        }
        let bytes = dispatch.memory_bytes() + key.len();
        let stored = Arc::clone(&dispatch);
        state.slots.insert(
            key.clone(),
            Slot {
                dispatch,
                last_used: clock,
                bytes,
            },
        );
        state.total_bytes += bytes;
        self.evict_over_budget(&mut state, &key);
        stored
    }

    /// Evicts least-recently-used entries until the cache is within budget.
    /// `just_inserted` is exempted so a fresh entry is not immediately
    /// bounced by its own insertion.
    fn evict_over_budget(&self, state: &mut CacheState, just_inserted: &str) {
        let over = |state: &CacheState| {
            state.total_bytes > self.config.max_bytes || state.slots.len() > self.config.max_entries
        };
        while over(state) {
            let victim = state
                .slots
                .iter()
                .filter(|(k, _)| k.as_str() != just_inserted)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                break; // Only the just-inserted entry remains.
            };
            if let Some(slot) = state.slots.remove(&victim) {
                state.total_bytes = state.total_bytes.saturating_sub(slot.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GrammarCompiler;
    use xg_grammar::{StructuralTag, TagContent, TagSpec};
    use xg_tokenizer::test_vocabulary;

    fn tag(name: &str) -> StructuralTag {
        StructuralTag::new(vec![TagSpec {
            begin: format!("<{name}>"),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: format!("</{name}>"),
        }])
    }

    fn compile(compiler: &GrammarCompiler, name: &str) -> Arc<CompiledTagDispatch> {
        compiler.compile_tag_dispatch(&tag(name)).unwrap()
    }

    #[test]
    fn get_insert_and_lru_eviction() {
        let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(512)));
        let cache = TagDispatchCache::new(TagDispatchCacheConfig {
            max_bytes: usize::MAX,
            max_entries: 2,
        });
        let a = compile(&compiler, "a");
        let b = compile(&compiler, "b");
        let c = compile(&compiler, "c");
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), Arc::clone(&a));
        cache.insert("b".into(), Arc::clone(&b));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), Arc::clone(&c));
        assert!(cache.peek("a"));
        assert!(!cache.peek("b"), "LRU entry must be evicted");
        assert!(cache.peek("c"));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.current_bytes > 0);
    }

    #[test]
    fn byte_budget_is_enforced() {
        let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(512)));
        let a = compile(&compiler, "a");
        let budget = a.memory_bytes() + a.memory_bytes() / 2;
        let cache = TagDispatchCache::new(TagDispatchCacheConfig {
            max_bytes: budget,
            max_entries: usize::MAX,
        });
        cache.insert("a".into(), a);
        cache.insert("b".into(), compile(&compiler, "b"));
        cache.insert("c".into(), compile(&compiler, "c"));
        let stats = cache.stats();
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        assert!(stats.current_bytes <= budget as u64);
    }

    #[test]
    fn insert_keeps_the_first_stored_dispatch() {
        let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(512)));
        let cache = TagDispatchCache::new(TagDispatchCacheConfig::default());
        let first = cache.insert("k".into(), compile(&compiler, "a"));
        // A racing identical compile produced its own Arc; the cache keeps
        // the first and hands it back.
        let second_arc = {
            let fresh = GrammarCompiler::new(Arc::new(test_vocabulary(512)));
            compile(&fresh, "a")
        };
        let second = cache.insert("k".into(), second_arc);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn factory_membership_and_clear() {
        let compiler = GrammarCompiler::new(Arc::new(test_vocabulary(512)));
        let cache = TagDispatchCache::new(TagDispatchCacheConfig::default());
        let a = compile(&compiler, "a");
        let key = crate::ConstraintFactory::factory_key(&*a);
        cache.insert("a".into(), Arc::clone(&a));
        assert!(cache.contains_factory(key));
        assert!(!cache.contains_factory(key.wrapping_add(1)));
        let evictions_before = cache.eviction_count();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.eviction_count(), evictions_before + 1);
        assert!(!cache.contains_factory(key));
        assert_eq!(cache.stats().current_bytes, 0);
    }
}
