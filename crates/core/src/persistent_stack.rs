//! Persistent execution stack (paper §3.3).
//!
//! All matching stacks — the parallel stacks of the current step, the stacks
//! of previous steps kept for rollback, and the transient stacks explored
//! while checking context-dependent tokens — are stored in a single tree.
//! Every stack is a path from the root to one of its nodes, identified by a
//! [`StackHandle`] pointing at the path's deepest node (the stack *top*).
//!
//! Pushing is memoized: pushing the same automaton node onto the same parent
//! always returns the same handle, so logically equal stacks share storage
//! and can be deduplicated by comparing handles. Branching a stack (grammar
//! ambiguity, speculative decoding trees) and rolling back to an earlier step
//! are both O(1): they only manipulate handles, never copy stack contents.

use xg_automata::NodeId;

/// Handle to a stack stored in a [`PersistentStackTree`]: the index of the
/// stack's top node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackHandle(u32);

impl StackHandle {
    /// The empty stack (the tree root sentinel).
    pub const ROOT: StackHandle = StackHandle(0);

    /// Returns the raw index (mainly for statistics and debugging).
    pub fn raw(self) -> u32 {
        self.0
    }
}

#[derive(Debug, Clone)]
struct TreeNode {
    parent: u32,
    /// The automaton node stored in this stack element. Meaningless for the
    /// root sentinel.
    node: NodeId,
    /// Children indices, used to memoize pushes.
    children: Vec<u32>,
    depth: u32,
}

/// The tree holding every persistent stack.
///
/// # Examples
///
/// ```
/// use xg_core::{PersistentStackTree, StackHandle};
/// use xg_automata::NodeId;
///
/// let mut tree = PersistentStackTree::new();
/// let a = tree.push(StackHandle::ROOT, NodeId(1));
/// let b = tree.push(a, NodeId(2));
/// let b_again = tree.push(a, NodeId(2));
/// assert_eq!(b, b_again);             // memoized: equal stacks share storage
/// assert_eq!(tree.top(b), Some(NodeId(2)));
/// assert_eq!(tree.pop(b), a);         // O(1) pop
/// assert_eq!(tree.depth(b), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PersistentStackTree {
    nodes: Vec<TreeNode>,
}

impl Default for PersistentStackTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistentStackTree {
    /// Creates a tree containing only the root sentinel (the empty stack).
    pub fn new() -> Self {
        PersistentStackTree {
            nodes: vec![TreeNode {
                parent: 0,
                node: NodeId(u32::MAX),
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// Pushes `node` on top of the stack `parent`, returning the handle of
    /// the new stack. Memoized: repeated pushes of the same node on the same
    /// parent return the same handle.
    pub fn push(&mut self, parent: StackHandle, node: NodeId) -> StackHandle {
        let parent_idx = parent.0 as usize;
        for &child in &self.nodes[parent_idx].children {
            if self.nodes[child as usize].node == node {
                return StackHandle(child);
            }
        }
        let idx = self.nodes.len() as u32;
        let depth = self.nodes[parent_idx].depth + 1;
        self.nodes.push(TreeNode {
            parent: parent.0,
            node,
            children: Vec::new(),
            depth,
        });
        self.nodes[parent_idx].children.push(idx);
        StackHandle(idx)
    }

    /// Pops the top element, returning the handle of the remaining stack.
    ///
    /// # Panics
    ///
    /// Panics if called on the empty stack.
    pub fn pop(&self, handle: StackHandle) -> StackHandle {
        assert!(handle != StackHandle::ROOT, "cannot pop the empty stack");
        StackHandle(self.nodes[handle.0 as usize].parent)
    }

    /// Returns the top automaton node of the stack, or `None` for the empty
    /// stack.
    pub fn top(&self, handle: StackHandle) -> Option<NodeId> {
        if handle == StackHandle::ROOT {
            None
        } else {
            Some(self.nodes[handle.0 as usize].node)
        }
    }

    /// Replaces the top element (pop + push), returning the new handle.
    ///
    /// # Panics
    ///
    /// Panics if called on the empty stack.
    pub fn replace_top(&mut self, handle: StackHandle, node: NodeId) -> StackHandle {
        let parent = self.pop(handle);
        self.push(parent, node)
    }

    /// Number of elements in the stack identified by `handle`.
    pub fn depth(&self, handle: StackHandle) -> usize {
        self.nodes[handle.0 as usize].depth as usize
    }

    /// Materializes the stack as a vector (bottom first, top last). Intended
    /// for tests and debugging output.
    pub fn stack_to_vec(&self, handle: StackHandle) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.depth(handle));
        let mut cur = handle;
        while cur != StackHandle::ROOT {
            out.push(self.nodes[cur.0 as usize].node);
            cur = StackHandle(self.nodes[cur.0 as usize].parent);
        }
        out.reverse();
        out
    }

    /// Number of tree nodes allocated (shared across all stacks), including
    /// the root sentinel.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if only the root sentinel exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Approximate heap memory used by the tree, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TreeNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_top_depth() {
        let mut tree = PersistentStackTree::new();
        let a = tree.push(StackHandle::ROOT, NodeId(10));
        let b = tree.push(a, NodeId(20));
        let c = tree.push(b, NodeId(30));
        assert_eq!(tree.depth(c), 3);
        assert_eq!(tree.top(c), Some(NodeId(30)));
        assert_eq!(
            tree.stack_to_vec(c),
            vec![NodeId(10), NodeId(20), NodeId(30)]
        );
        assert_eq!(tree.pop(c), b);
        assert_eq!(tree.pop(b), a);
        assert_eq!(tree.pop(a), StackHandle::ROOT);
        assert_eq!(tree.top(StackHandle::ROOT), None);
    }

    #[test]
    fn memoized_push_shares_nodes() {
        let mut tree = PersistentStackTree::new();
        let a1 = tree.push(StackHandle::ROOT, NodeId(1));
        let a2 = tree.push(StackHandle::ROOT, NodeId(1));
        assert_eq!(a1, a2);
        assert_eq!(tree.len(), 2);
        let b1 = tree.push(a1, NodeId(2));
        let b2 = tree.push(a2, NodeId(2));
        assert_eq!(b1, b2);
        assert_eq!(tree.len(), 3);
        // A different node creates a branch, not a copy of the shared prefix.
        let c = tree.push(a1, NodeId(3));
        assert_ne!(c, b1);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn branching_does_not_copy_prefixes() {
        let mut tree = PersistentStackTree::new();
        // Simulate a deep shared stack with many branches at the top, as
        // created by grammar ambiguity.
        let mut deep = StackHandle::ROOT;
        for i in 0..100 {
            deep = tree.push(deep, NodeId(i));
        }
        let before = tree.len();
        for j in 0..50 {
            let _branch = tree.push(deep, NodeId(1000 + j));
        }
        // Only one node per branch was allocated.
        assert_eq!(tree.len(), before + 50);
    }

    #[test]
    fn replace_top_behaves_like_pop_push() {
        let mut tree = PersistentStackTree::new();
        let a = tree.push(StackHandle::ROOT, NodeId(1));
        let b = tree.push(a, NodeId(2));
        let c = tree.replace_top(b, NodeId(5));
        assert_eq!(tree.stack_to_vec(c), vec![NodeId(1), NodeId(5)]);
        assert_eq!(tree.pop(c), a);
    }

    #[test]
    #[should_panic(expected = "cannot pop the empty stack")]
    fn popping_root_panics() {
        let tree = PersistentStackTree::new();
        let _ = tree.pop(StackHandle::ROOT);
    }

    #[test]
    fn rollback_is_just_keeping_old_handles() {
        let mut tree = PersistentStackTree::new();
        let step0 = tree.push(StackHandle::ROOT, NodeId(1));
        let step1 = tree.replace_top(step0, NodeId(2));
        let step2 = tree.push(step1, NodeId(3));
        // "Rolling back" to step0 requires no tree mutation at all.
        assert_eq!(tree.stack_to_vec(step0), vec![NodeId(1)]);
        assert_eq!(tree.stack_to_vec(step2), vec![NodeId(2), NodeId(3)]);
    }
}
