//! Tag-dispatch matching: free text interleaved with grammar-constrained
//! tagged segments.
//!
//! This is the runtime for [`StructuralTag`] descriptions (the agentic
//! tool-calling scenario): a [`StructuralTagMatcher`] passes free text
//! through *unconstrained* — the token mask is all-allowed and costs no
//! automaton work — while scanning the emitted bytes for trigger strings.
//! When a trigger completes, the matcher dispatches into the compiled
//! combined grammar of that trigger (remainder of the begin tag, the content
//! grammar, the end tag) and constrains decoding token by token until the
//! segment closes, then returns to free text. Rollback works across mode
//! boundaries: rolling back into a closed segment re-opens it, and rolling
//! back across a segment's opening returns to free-text scanning with the
//! trigger state restored.
//!
//! Compilation lives on [`GrammarCompiler::compile_tag_dispatch`]: every
//! per-trigger combined grammar goes through the ordinary compile path, so
//! repeated tool schemas hit the shared [`GrammarCache`](crate::GrammarCache)
//! like any other grammar.

use std::collections::VecDeque;
use std::sync::Arc;

use xg_grammar::{GrammarError, StructuralTag};
use xg_tokenizer::{TokenId, Vocabulary};

use crate::compiler::{CompiledGrammar, GrammarCompiler};
use crate::error::{AcceptError, RollbackError};
use crate::mask::TokenBitmask;
use crate::matcher::{GrammarMatcher, DEFAULT_MAX_ROLLBACK_TOKENS};

/// One compiled trigger: the byte string scanned for in free text plus the
/// combined grammar that takes over once it fires.
#[derive(Debug)]
pub struct CompiledTrigger {
    trigger: Vec<u8>,
    grammar: Arc<CompiledGrammar>,
}

impl CompiledTrigger {
    /// The trigger byte string.
    pub fn trigger(&self) -> &[u8] {
        &self.trigger
    }

    /// The compiled combined grammar dispatched to by this trigger.
    pub fn grammar(&self) -> &Arc<CompiledGrammar> {
        &self.grammar
    }
}

/// A [`StructuralTag`] compiled against a vocabulary: the trigger strings and
/// their combined grammars, ready to instantiate [`StructuralTagMatcher`]s.
#[derive(Debug)]
pub struct CompiledTagDispatch {
    triggers: Vec<CompiledTrigger>,
    vocab: Arc<Vocabulary>,
}

impl CompiledTagDispatch {
    /// The compiled triggers, in `StructuralTag::effective_triggers` order.
    pub fn triggers(&self) -> &[CompiledTrigger] {
        &self.triggers
    }

    /// The vocabulary the sub-grammars were compiled against.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Advances the free-text trigger scan by one byte. `pending` holds the
    /// longest suffix of the emitted text that is a proper prefix of some
    /// trigger; returns the index of a trigger that just completed, if any.
    ///
    /// Tracking a single candidate suffix is complete because validation
    /// rejects triggers that occur inside one another: a completed trigger
    /// hidden in the middle of `pending` would imply it is an infix of the
    /// trigger `pending` is a prefix of.
    fn advance_scan(&self, pending: &mut Vec<u8>, byte: u8) -> Option<usize> {
        pending.push(byte);
        loop {
            if let Some(idx) = self
                .triggers
                .iter()
                .position(|t| t.trigger == pending.as_slice())
            {
                pending.clear();
                return Some(idx);
            }
            if self
                .triggers
                .iter()
                .any(|t| t.trigger.starts_with(pending.as_slice()))
            {
                return None;
            }
            if pending.is_empty() {
                return None;
            }
            // Drop the oldest byte and retry: a trigger may start inside the
            // suffix we have been tracking.
            pending.remove(0);
        }
    }

    /// Scan state after a trigger completion that was *not* dispatched
    /// (cancelled mid-token dispatch): the emitted text ends with the full
    /// trigger string, so the pending suffix is the longest proper suffix of
    /// that trigger that is a proper prefix of some trigger.
    fn reseed_pending(&self, trigger_idx: usize) -> Vec<u8> {
        let trigger = &self.triggers[trigger_idx].trigger;
        for start in 1..trigger.len() {
            let suffix = &trigger[start..];
            if self
                .triggers
                .iter()
                .any(|t| t.trigger.len() > suffix.len() && t.trigger.starts_with(suffix))
            {
                return suffix.to_vec();
            }
        }
        Vec::new()
    }
}

impl GrammarCompiler {
    /// Compiles a [`StructuralTag`] description: every trigger's combined
    /// grammar (begin-tag remainder, content, end tag over the dispatched
    /// tags) runs through the ordinary cached compile path, so shared tool
    /// schemas are compiled once per [`GrammarCache`](crate::GrammarCache).
    /// The dispatch description itself is memoized per compiler, so serving
    /// batches that re-submit the same tool registry skip the
    /// schema-to-grammar conversion and combined-grammar construction too.
    ///
    /// # Errors
    ///
    /// Returns the structural-tag validation error or the content grammars'
    /// parse/conversion errors.
    pub fn compile_tag_dispatch(
        &self,
        tag: &StructuralTag,
    ) -> Result<Arc<CompiledTagDispatch>, GrammarError> {
        // The description holds serde_json values and grammars with no Hash
        // impls; their Debug rendering is deterministic and captures every
        // distinguishing field, so it serves as the memo key (stored in
        // full — a truncated hash could silently alias two registries).
        let key = format!("{tag:?}");
        if let Some(hit) = self.tag_dispatch_memo().lock().unwrap().get(&key) {
            return Ok(Arc::clone(hit));
        }
        let grammars = tag.build_trigger_grammars()?;
        let mut triggers = Vec::with_capacity(grammars.len());
        for (trigger, grammar) in grammars {
            triggers.push(CompiledTrigger {
                trigger: trigger.into_bytes(),
                grammar: self.compile_grammar(&grammar),
            });
        }
        let compiled = Arc::new(CompiledTagDispatch {
            triggers,
            vocab: Arc::clone(self.vocabulary()),
        });
        let mut memo = self.tag_dispatch_memo().lock().unwrap();
        // The memo pins its compiled grammars beyond the GrammarCache's
        // budget, so keep it small: a serving process sees a handful of tool
        // registries, and a full reset on overflow just costs a rebuild.
        if memo.len() >= TAG_DISPATCH_MEMO_CAP {
            memo.clear();
        }
        // Concurrent identical compiles may race past the lookup above; the
        // underlying grammars still compile once (GrammarCache), and keeping
        // the first-inserted dispatch makes every caller share one Arc.
        Ok(Arc::clone(memo.entry(key).or_insert(compiled)))
    }
}

/// Upper bound on memoized structural-tag compilations per compiler.
const TAG_DISPATCH_MEMO_CAP: usize = 64;

/// Runtime statistics of a [`StructuralTagMatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagDispatchStats {
    /// Masks generated while in free-text mode (all-allowed, no mask work).
    pub free_masks: u64,
    /// Masks generated while inside a tagged segment (constrained).
    pub tag_masks: u64,
    /// Tokens accepted in total.
    pub tokens_accepted: u64,
    /// Tagged segments opened.
    pub tags_opened: u64,
    /// Tagged segments closed.
    pub tags_closed: u64,
}

/// The matcher's current high-level mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Emitting unconstrained free text (scanning for triggers).
    FreeText,
    /// Inside the tagged segment of the given trigger index.
    Tagged {
        /// Index into [`CompiledTagDispatch::triggers`].
        trigger: usize,
    },
}

/// Internal mode state; [`ModeState::Free`] carries the trigger-scan suffix.
#[derive(Debug, Clone)]
enum ModeState {
    Free { pending: Vec<u8> },
    Tagged { seg: usize },
}

/// A tagged segment's runtime state. The matcher is dropped (`None`) once no
/// rollback snapshot can reach the segment any more.
#[derive(Debug)]
struct TagSegment {
    trigger: usize,
    matcher: Option<GrammarMatcher>,
    /// Inner rollback units accepted so far (one per byte fed).
    units: usize,
}

/// State of the matcher *before* an accepted token, for rollback.
#[derive(Debug, Clone)]
struct Snapshot {
    mode: ModeState,
    /// Inner units of the then-current segment (0 when `mode` is free).
    units: usize,
    segments_len: usize,
}

/// The incremental matcher for a compiled structural tag: unconstrained free
/// text, trigger dispatch, constrained tagged segments, and rollback across
/// all of it.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{GrammarCompiler, StructuralTagMatcher, TokenBitmask};
/// use xg_grammar::{StructuralTag, TagContent, TagSpec};
/// use xg_tokenizer::test_vocabulary;
///
/// let vocab = Arc::new(test_vocabulary(600));
/// let compiler = GrammarCompiler::new(Arc::clone(&vocab));
/// let tag = StructuralTag::new(vec![TagSpec {
///     begin: "<n>".into(),
///     content: TagContent::Ebnf { text: "root ::= [0-9]+".into(), root: "root".into() },
///     end: "</n>".into(),
/// }]);
/// let compiled = compiler.compile_tag_dispatch(&tag)?;
/// let mut matcher = StructuralTagMatcher::new(compiled);
///
/// // Free text: the mask is all-allowed.
/// let mut mask = TokenBitmask::new_all_rejected(vocab.len());
/// matcher.fill_next_token_bitmask(&mut mask);
/// assert!(mask.count_allowed() > vocab.len() - 8);
/// # Ok::<(), xg_grammar::GrammarError>(())
/// ```
#[derive(Debug)]
pub struct StructuralTagMatcher {
    compiled: Arc<CompiledTagDispatch>,
    mode: ModeState,
    segments: Vec<TagSegment>,
    history: VecDeque<Snapshot>,
    max_rollback: usize,
    terminated: bool,
    stats: TagDispatchStats,
}

impl StructuralTagMatcher {
    /// Creates a matcher with the default rollback window.
    pub fn new(compiled: Arc<CompiledTagDispatch>) -> Self {
        Self::with_max_rollback(compiled, DEFAULT_MAX_ROLLBACK_TOKENS)
    }

    /// Creates a matcher that can roll back up to `max_rollback` recently
    /// accepted tokens, including across tag boundaries.
    pub fn with_max_rollback(compiled: Arc<CompiledTagDispatch>, max_rollback: usize) -> Self {
        StructuralTagMatcher {
            compiled,
            mode: ModeState::Free {
                pending: Vec::new(),
            },
            segments: Vec::new(),
            history: VecDeque::new(),
            max_rollback,
            terminated: false,
            stats: TagDispatchStats::default(),
        }
    }

    /// The compiled structural tag this matcher runs.
    pub fn compiled(&self) -> &Arc<CompiledTagDispatch> {
        &self.compiled
    }

    /// Runtime statistics.
    pub fn stats(&self) -> TagDispatchStats {
        self.stats
    }

    /// The matcher's current mode.
    pub fn mode(&self) -> DispatchMode {
        match &self.mode {
            ModeState::Free { .. } => DispatchMode::FreeText,
            ModeState::Tagged { seg } => DispatchMode::Tagged {
                trigger: self.segments[*seg].trigger,
            },
        }
    }

    /// Returns `true` if end-of-sequence has been accepted.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Returns `true` if end-of-sequence would be accepted now: free text can
    /// always end, a tagged segment must be closed first.
    pub fn can_terminate(&self) -> bool {
        !self.terminated && matches!(self.mode, ModeState::Free { .. })
    }

    /// Number of accepted tokens that can currently be rolled back.
    pub fn rollback_window(&self) -> usize {
        self.history.len()
    }

    /// Resets the matcher to free text at the start of the stream.
    pub fn reset(&mut self) {
        self.mode = ModeState::Free {
            pending: Vec::new(),
        };
        self.segments.clear();
        self.history.clear();
        self.terminated = false;
        self.stats = TagDispatchStats::default();
    }

    /// Fills `mask` with the allowed next tokens: all-allowed in free text
    /// (special tokens except EOS stay rejected), the inner grammar's mask
    /// inside a tagged segment.
    ///
    /// # Panics
    ///
    /// Panics if the mask's vocabulary size differs from the compiled
    /// vocabulary.
    pub fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
        let vocab = Arc::clone(&self.compiled.vocab);
        assert_eq!(
            mask.vocab_size(),
            vocab.len(),
            "mask size must match the vocabulary"
        );
        if self.terminated {
            mask.reject_all();
            return;
        }
        match &self.mode {
            ModeState::Free { .. } => {
                // Free text passes through unconstrained: no automaton work,
                // no vocabulary scan. EOS is allowed (free text may end).
                mask.allow_all();
                for special in vocab.special_ids() {
                    if Some(special) != vocab.eos() {
                        mask.reject(special);
                    }
                }
                self.stats.free_masks += 1;
            }
            ModeState::Tagged { seg } => {
                let seg = *seg;
                self.segments[seg]
                    .matcher
                    .as_mut()
                    .expect("the current segment is never pruned")
                    .fill_next_token_bitmask(mask);
                self.stats.tag_masks += 1;
            }
        }
    }

    /// Accepts a sampled token, advancing free-text scanning and/or the
    /// current segment's grammar. A single token may cross mode boundaries
    /// (close a tag and resume prose, or complete a trigger and start the
    /// constrained segment in the same token). A token that completes a
    /// trigger and then immediately contradicts the tag's grammar is kept as
    /// plain free text (the dispatch is cancelled) — the all-allowed
    /// free-text mask promised the token was acceptable.
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] (leaving the state unchanged) when a byte
    /// violates the grammar of a segment that was already open when the call
    /// started, the token is unknown or a non-EOS special token, or EOS is
    /// offered inside an unclosed tag.
    pub fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let vocab = Arc::clone(&self.compiled.vocab);
        if token.index() >= vocab.len() {
            return Err(AcceptError::UnknownToken { token });
        }
        if vocab.is_special(token) {
            if Some(token) == vocab.eos() {
                if self.can_terminate() {
                    self.push_history();
                    self.terminated = true;
                    self.stats.tokens_accepted += 1;
                    return Ok(());
                }
                return Err(AcceptError::CannotTerminate);
            }
            return Err(AcceptError::SpecialTokenRejected { token });
        }
        let snapshot = self.snapshot();
        let stats = self.stats;
        let bytes = vocab.token_bytes(token).to_vec();
        match self.advance_bytes_across_modes(&bytes, &snapshot) {
            Ok(()) => {
                self.push_history_snapshot(snapshot);
                self.stats.tokens_accepted += 1;
                Ok(())
            }
            Err(matched_bytes) => {
                self.restore(&snapshot);
                self.stats = stats;
                Err(AcceptError::TokenRejected {
                    token,
                    matched_bytes,
                })
            }
        }
    }

    /// Accepts raw bytes as one rollback unit (jump-forward-style forced
    /// text), crossing mode boundaries like
    /// [`accept_token`](Self::accept_token).
    ///
    /// # Errors
    ///
    /// Returns [`AcceptError::BytesRejected`] (leaving the state unchanged)
    /// when a byte violates the grammar of a segment that was already open
    /// when the call started (like [`accept_token`](Self::accept_token), a
    /// dispatch opened *and* contradicted within this call is cancelled and
    /// kept as free text instead).
    pub fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let snapshot = self.snapshot();
        let stats = self.stats;
        match self.advance_bytes_across_modes(bytes, &snapshot) {
            Ok(()) => {
                self.push_history_snapshot(snapshot);
                Ok(())
            }
            Err(matched_bytes) => {
                self.restore(&snapshot);
                self.stats = stats;
                Err(AcceptError::BytesRejected { matched_bytes })
            }
        }
    }

    /// Rolls back the last `num_tokens` accepted tokens, restoring segment
    /// state across tag boundaries (a rollback into a closed segment re-opens
    /// it; a rollback across a segment's opening discards the segment and
    /// restores the free-text scan).
    ///
    /// # Errors
    ///
    /// Returns a [`RollbackError`] if more tokens are requested than the
    /// rollback window holds; the state is unchanged.
    pub fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
        if num_tokens == 0 {
            return Ok(());
        }
        if num_tokens > self.history.len() {
            return Err(RollbackError {
                requested: num_tokens,
                available: self.history.len(),
            });
        }
        let target = self.history.len() - num_tokens;
        let snapshot = self.history[target].clone();
        self.restore(&snapshot);
        self.history.truncate(target);
        self.terminated = false;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    fn snapshot(&self) -> Snapshot {
        let units = match &self.mode {
            ModeState::Free { .. } => 0,
            ModeState::Tagged { seg } => self.segments[*seg].units,
        };
        Snapshot {
            mode: self.mode.clone(),
            units,
            segments_len: self.segments.len(),
        }
    }

    fn restore(&mut self, snapshot: &Snapshot) {
        self.segments.truncate(snapshot.segments_len);
        if let ModeState::Tagged { seg } = &snapshot.mode {
            let segment = &mut self.segments[*seg];
            let delta = segment.units - snapshot.units;
            if delta > 0 {
                segment
                    .matcher
                    .as_mut()
                    .expect("segments reachable from snapshots are never pruned")
                    .rollback(delta)
                    .expect("inner matchers keep their full per-byte history");
                segment.units = snapshot.units;
            }
        }
        self.mode = snapshot.mode.clone();
    }

    /// Advances over `bytes`, switching modes as triggers fire and segments
    /// close. On failure returns the number of bytes matched; the caller
    /// restores the pre-call snapshot (`base`, the state at call entry).
    ///
    /// The free-text mask promises that *any* token is acceptable, so a
    /// dispatch that both opens **within this call** and immediately
    /// contradicts the tag grammar in the same call must not reject the
    /// token: the completed trigger is treated as plain prose instead
    /// (the byte position is recorded in `suppressed` and the call replays
    /// from `base` without dispatching there). Only bytes violating a
    /// segment that was already open when the call started are a real
    /// rejection — that segment's constraint was visible in the mask.
    fn advance_bytes_across_modes(&mut self, bytes: &[u8], base: &Snapshot) -> Result<(), usize> {
        let base_stats = self.stats;
        let mut suppressed: Vec<usize> = Vec::new();
        'attempt: loop {
            // Position of the trigger completion that opened the currently
            // innermost segment, when that happened during this call.
            let mut opened_at: Option<usize> = None;
            for (i, &b) in bytes.iter().enumerate() {
                match &mut self.mode {
                    ModeState::Free { pending } => {
                        if let Some(trigger) = self.compiled.advance_scan(pending, b) {
                            if suppressed.contains(&i) {
                                *pending = self.compiled.reseed_pending(trigger);
                            } else {
                                self.open_segment(trigger);
                                opened_at = Some(i);
                            }
                        }
                    }
                    ModeState::Tagged { seg } => {
                        let seg = *seg;
                        let segment = &mut self.segments[seg];
                        let matcher = segment
                            .matcher
                            .as_mut()
                            .expect("the current segment is never pruned");
                        if matcher.accept_bytes(&[b]).is_err() {
                            if let Some(pos) = opened_at {
                                suppressed.push(pos);
                                self.restore(base);
                                self.stats = base_stats;
                                continue 'attempt;
                            }
                            return Err(i);
                        }
                        segment.units += 1;
                        if matcher.can_terminate() {
                            self.close_segment();
                        }
                    }
                }
            }
            return Ok(());
        }
    }

    /// Opens a tagged segment for `trigger`, immediately closing it again if
    /// its combined grammar is already complete (pathological nullable tags).
    fn open_segment(&mut self, trigger: usize) {
        // Inner matchers keep one rollback unit per byte. The window is
        // nominally unbounded so the matcher never self-trims; instead
        // `prune_unreachable_segments` trims it after every accepted token to
        // exactly the units the outer rollback window can still reach.
        let mut matcher = GrammarMatcher::with_max_rollback(
            Arc::clone(self.compiled.triggers[trigger].grammar()),
            usize::MAX,
        );
        self.stats.tags_opened += 1;
        if matcher.can_terminate() {
            self.stats.tags_closed += 1;
            self.mode = ModeState::Free {
                pending: Vec::new(),
            };
            return;
        }
        self.segments.push(TagSegment {
            trigger,
            matcher: Some(matcher),
            units: 0,
        });
        self.mode = ModeState::Tagged {
            seg: self.segments.len() - 1,
        };
    }

    fn close_segment(&mut self) {
        self.stats.tags_closed += 1;
        self.mode = ModeState::Free {
            pending: Vec::new(),
        };
    }

    fn push_history_snapshot(&mut self, snapshot: Snapshot) {
        if self.max_rollback > 0 {
            self.history.push_back(snapshot);
            if self.history.len() > self.max_rollback {
                self.history.pop_front();
            }
        }
        // Prune even with rollback disabled: with no snapshots retained,
        // every closed segment becomes unreachable immediately. (Pruned
        // entries keep their slim `TagSegment` slot — snapshots index
        // segments by position — but drop the matcher, which owns the
        // memory.)
        self.prune_unreachable_segments();
    }

    fn push_history(&mut self) {
        let snapshot = self.snapshot();
        self.push_history_snapshot(snapshot);
    }

    /// Drops the inner matchers of segments that no rollback snapshot (nor
    /// the current mode) can reach any more, so long multi-call generations
    /// do not accumulate one live matcher per closed tool call — and trims
    /// each reachable segment's per-byte history down to the oldest unit any
    /// snapshot can still roll back to, so a single long segment does not
    /// accumulate history beyond the outer rollback window either.
    fn prune_unreachable_segments(&mut self) {
        // needed[seg] = the smallest `units` value any retained snapshot (or
        // the current mode) could restore the segment to; None = unreachable.
        let mut needed: Vec<Option<usize>> = vec![None; self.segments.len()];
        if let ModeState::Tagged { seg } = &self.mode {
            needed[*seg] = Some(self.segments[*seg].units);
        }
        for snap in &self.history {
            if let ModeState::Tagged { seg } = &snap.mode {
                let entry = needed[*seg].get_or_insert(snap.units);
                *entry = (*entry).min(snap.units);
            }
        }
        for (segment, need) in self.segments.iter_mut().zip(needed) {
            match need {
                None => segment.matcher = None,
                Some(min_units) => {
                    if let Some(matcher) = segment.matcher.as_mut() {
                        matcher.trim_history_to(segment.units - min_units);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_grammar::{TagContent, TagSpec};
    use xg_tokenizer::test_vocabulary;

    fn number_tag() -> StructuralTag {
        StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }])
    }

    fn setup(tag: &StructuralTag) -> (Arc<Vocabulary>, StructuralTagMatcher) {
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(tag).unwrap();
        (vocab, StructuralTagMatcher::new(compiled))
    }

    fn token_for(vocab: &Vocabulary, bytes: &[u8]) -> TokenId {
        vocab
            .iter()
            .find(|(_, t)| *t == bytes)
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                panic!(
                    "token {:?} not in vocabulary",
                    String::from_utf8_lossy(bytes)
                )
            })
    }

    fn drive_bytes(vocab: &Vocabulary, matcher: &mut StructuralTagMatcher, text: &[u8]) {
        for &b in text {
            matcher.accept_token(token_for(vocab, &[b])).unwrap();
        }
    }

    #[test]
    fn free_text_is_unconstrained_and_tags_constrain() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        // Free text: everything non-special is allowed, EOS included.
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"z")));
        assert!(mask.is_allowed(vocab.eos().unwrap()));
        assert_eq!(matcher.mode(), DispatchMode::FreeText);

        drive_bytes(&vocab, &mut matcher, b"some prose <n>");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });

        // Inside the tag only digits are allowed.
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"7")));
        assert!(!mask.is_allowed(token_for(&vocab, b"z")));
        assert!(!mask.is_allowed(vocab.eos().unwrap()));
        assert!(!matcher.can_terminate());

        drive_bytes(&vocab, &mut matcher, b"42</n>");
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.can_terminate());

        drive_bytes(&vocab, &mut matcher, b" done");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        assert!(matcher.is_terminated());
        let stats = matcher.stats();
        assert_eq!(stats.tags_opened, 1);
        assert_eq!(stats.tags_closed, 1);
    }

    #[test]
    fn invalid_bytes_inside_a_tag_are_rejected_atomically() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>1");
        let bad = token_for(&vocab, b"x");
        assert!(matches!(
            matcher.accept_token(bad),
            Err(AcceptError::TokenRejected { .. })
        ));
        // State unchanged: the segment continues normally.
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        drive_bytes(&vocab, &mut matcher, b"2</n>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn multi_byte_tokens_cross_mode_boundaries() {
        let tag = number_tag();
        let (_vocab, mut matcher) = setup(&tag);
        // One accept_bytes call spans prose, the whole tag, and more prose.
        matcher.accept_bytes(b"hi <n>123</n> bye").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(matcher.stats().tags_opened, 1);
        assert_eq!(matcher.stats().tags_closed, 1);
        // A unit whose bytes complete the trigger but then contradict the tag
        // grammar stays free text (the all-allowed mask promised it was
        // acceptable): the dispatch is cancelled, not rejected.
        matcher.accept_bytes(b"x <n>9q").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(
            matcher.stats().tags_opened,
            1,
            "cancelled dispatch is not an open"
        );
        // A later well-formed tag still dispatches and constrains.
        matcher.accept_bytes(b" <n>1").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        // Bytes violating a segment opened by an *earlier* unit are a real
        // rejection (its constraint was visible in the mask).
        let err = matcher.accept_bytes(b"q").unwrap_err();
        assert_eq!(err, AcceptError::BytesRejected { matched_bytes: 0 });
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        matcher.accept_bytes(b"2</n>").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn free_mask_contract_holds_for_trigger_crossing_tokens() {
        // The vocabulary contains the merged token "><". With prose ending in
        // "<n" the free mask is all-allowed; sampling "><" completes the
        // trigger "<n>" and continues with '<', which [0-9]+ rejects. The
        // token must still be accepted (as prose), or the mask would lie.
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let crossing = token_for(&vocab, b"><");
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        drive_bytes(&vocab, &mut matcher, b"prose <n");
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(crossing));
        matcher.accept_token(crossing).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(matcher.stats().tags_opened, 0);
        // The cancelled trigger text is inert; a clean tag still works, and
        // rollback across the cancelled region behaves like plain free text.
        matcher.accept_bytes(b"<n>42</n>").unwrap();
        assert!(matcher.can_terminate());
        matcher.rollback(2).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
    }

    #[test]
    fn eos_is_rejected_inside_an_open_tag() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>4");
        assert!(matches!(
            matcher.accept_token(vocab.eos().unwrap()),
            Err(AcceptError::CannotTerminate)
        ));
        drive_bytes(&vocab, &mut matcher, b"</n>");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
    }

    #[test]
    fn rollback_across_tag_boundaries_restores_modes() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let mut pre_tag_mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        drive_bytes(&vocab, &mut matcher, b"ab");
        matcher.fill_next_token_bitmask(&mut pre_tag_mask);

        // Enter the tag, emit a digit: 4 tokens after the pre-tag state.
        drive_bytes(&vocab, &mut matcher, b"<n>5");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });

        // Roll back across the boundary: free text again, scan state reset.
        matcher.rollback(4).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        matcher.fill_next_token_bitmask(&mut mask);
        assert_eq!(mask, pre_tag_mask, "pre-tag mask must be restored");

        // Re-enter and close; then roll back INTO the closed segment.
        drive_bytes(&vocab, &mut matcher, b"<n>5</n>!");
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        matcher.rollback(5).unwrap(); // undo `/n>` + `!`... back inside `<n>5`
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"9")));
        // Take a different path this time.
        drive_bytes(&vocab, &mut matcher, b"77</n>");
        assert!(matcher.can_terminate());
        // Two real opens (rollback re-enters a segment, it does not re-open).
        assert_eq!(matcher.stats().tags_opened, 2);
    }

    #[test]
    fn rollback_after_eos_reopens_free_text() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"ok");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        assert!(matcher.is_terminated());
        matcher.rollback(1).unwrap();
        assert!(!matcher.is_terminated());
        assert!(matcher.can_terminate());
        assert!(matcher.rollback(100).is_err());
    }

    #[test]
    fn shared_trigger_dispatches_on_tag_names() {
        let mk = |name: &str, body: &str| TagSpec {
            begin: format!("<fn={name}>"),
            content: TagContent::Ebnf {
                text: format!("root ::= {body}"),
                root: "root".into(),
            },
            end: "</fn>".into(),
        };
        let tag = StructuralTag::with_triggers(
            vec![mk("num", "[0-9]+"), mk("word", "[a-z]+")],
            vec!["<fn=".into()],
        );
        let (vocab, mut matcher) = setup(&tag);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        drive_bytes(&vocab, &mut matcher, b"call <fn=");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        // Both tag names are still possible: `n` (num) and `w` (word).
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"n")));
        assert!(mask.is_allowed(token_for(&vocab, b"w")));
        assert!(!mask.is_allowed(token_for(&vocab, b"x")));

        // Choose `word` and check the content constraint switched with it.
        drive_bytes(&vocab, &mut matcher, b"word>");
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"a")));
        assert!(!mask.is_allowed(token_for(&vocab, b"5")));
        drive_bytes(&vocab, &mut matcher, b"hello</fn>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn trigger_scan_handles_overlapping_prefixes() {
        // Prose containing `<` and `<x` must not derail the scan for `<n>`.
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"a < b <x <<n>");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        drive_bytes(&vocab, &mut matcher, b"1</n>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn closed_segments_are_pruned_beyond_the_rollback_window() {
        let tag = number_tag();
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = StructuralTagMatcher::with_max_rollback(compiled, 4);
        for _ in 0..3 {
            matcher.accept_bytes(b"x <n>12</n> y").unwrap();
        }
        // Only the last snapshots are retained; earlier segments are pruned.
        let live = matcher
            .segments
            .iter()
            .filter(|s| s.matcher.is_some())
            .count();
        assert!(live <= 1, "expected pruning, {live} live segments");
        assert_eq!(matcher.stats().tags_opened, 3);
    }

    #[test]
    fn long_segments_trim_inner_history_to_the_outer_window() {
        // A segment much longer than the rollback window must not retain one
        // history entry per byte for its whole lifetime.
        let tag = number_tag();
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = StructuralTagMatcher::with_max_rollback(compiled, 4);
        matcher.accept_bytes(b"<n>").unwrap();
        for _ in 0..200 {
            matcher.accept_token(token_for(&vocab, b"7")).unwrap();
        }
        let inner_window = matcher.segments[0]
            .matcher
            .as_ref()
            .unwrap()
            .rollback_window();
        assert!(
            inner_window <= 4,
            "inner history must be bounded by the outer window, got {inner_window}"
        );
        // Rollback across the retained window still works exactly.
        matcher.rollback(4).unwrap();
        matcher.accept_bytes(b"12</n>").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn reset_returns_to_free_text() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>1");
        matcher.reset();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.can_terminate());
        assert_eq!(matcher.stats(), TagDispatchStats::default());
    }
}
