//! Tag-dispatch matching: free text interleaved with grammar-constrained
//! tagged segments.
//!
//! This is the runtime for [`StructuralTag`] descriptions (the agentic
//! tool-calling scenario): a [`StructuralTagMatcher`] passes free text
//! through *unconstrained* — the token mask is all-allowed and costs no
//! automaton work — while scanning the emitted bytes for trigger strings
//! with a precompiled [`AhoCorasick`] automaton (amortized O(1) per byte,
//! whatever the size of the tool catalog). When a trigger completes, the
//! matcher dispatches into the compiled combined grammar of that trigger
//! (remainder of the begin tag, the content grammar, the end tag) and
//! constrains decoding token by token until the segment closes, then returns
//! to free text. Rollback works across mode boundaries: rolling back into a
//! closed segment re-opens it, and rolling back across a segment's opening
//! returns to free-text scanning with the trigger state restored.
//!
//! Two boundary refinements keep tagged segments as cheap as fully
//! constrained lanes:
//!
//! * segment grammars are compiled with a *free-text continuation tail*
//!   ([`xg_grammar::append_free_text_tail`]), so the in-segment mask is the
//!   union of "continue the segment" and "close it and resume prose" — a
//!   single token spanning the end tag and following prose is admitted;
//! * [`find_jump_forward_string`](StructuralTagMatcher::find_jump_forward_string)
//!   exposes the forced bytes of the open segment (begin-tag remainder,
//!   forced schema keys, the end tag), so jump-forward decoding works inside
//!   tagged segments.
//!
//! Compilation lives on [`GrammarCompiler::compile_tag_dispatch`]: every
//! per-trigger combined grammar goes through the ordinary compile path, so
//! repeated tool schemas hit the shared [`GrammarCache`](crate::GrammarCache)
//! like any other grammar, and each trigger carries a
//! [`MatcherPool`] recycling the inner matchers its segments open.

use std::collections::VecDeque;
use std::sync::Arc;

use xg_automata::{AcState, AhoCorasick};
use xg_grammar::{DispatchDelta, GrammarError, SegmentExitPolicy, StructuralTag, TagSpec};
use xg_tokenizer::{TokenId, Vocabulary};

use crate::compiler::{CompiledGrammar, GrammarCompiler};
use crate::constraint::{ConstraintFactory, ConstraintMatcher, ConstraintStats};
use crate::error::{AcceptError, RollbackError};
use crate::mask::TokenBitmask;
use crate::matcher_pool::MatcherPool;
use crate::DEFAULT_MAX_ROLLBACK_TOKENS;

/// One compiled trigger: the byte string scanned for in free text, the
/// combined grammar that takes over once it fires, and the pool recycling the
/// per-segment matchers running that grammar.
#[derive(Debug)]
pub struct CompiledTrigger {
    trigger: Vec<u8>,
    grammar: Arc<CompiledGrammar>,
    pool: Arc<MatcherPool>,
}

impl CompiledTrigger {
    /// The trigger byte string.
    pub fn trigger(&self) -> &[u8] {
        &self.trigger
    }

    /// The compiled segment grammar dispatched to by this trigger: the
    /// combined grammar (begin-tag remainder, content, end tag) followed by
    /// the free-text continuation tail, so its masks admit tokens that close
    /// the segment and continue with prose.
    pub fn grammar(&self) -> &Arc<CompiledGrammar> {
        &self.grammar
    }

    /// The pool recycling this trigger's per-segment inner matchers.
    pub fn matcher_pool(&self) -> &Arc<MatcherPool> {
        &self.pool
    }
}

/// A [`StructuralTag`] compiled against a vocabulary: the trigger strings,
/// their combined grammars and matcher pools, and the Aho–Corasick scanner
/// over all triggers, ready to instantiate [`StructuralTagMatcher`]s.
///
/// Per-trigger state is `Arc`-shared so an incrementally updated dispatch
/// (see [`GrammarCompiler::update_tag_dispatch`]) reuses the untouched
/// triggers of its base — including their warm [`MatcherPool`]s — instead of
/// recompiling and re-pooling the whole registry.
#[derive(Debug)]
pub struct CompiledTagDispatch {
    triggers: Vec<Arc<CompiledTrigger>>,
    scanner: AhoCorasick,
    vocab: Arc<Vocabulary>,
    exit: SegmentExitPolicy,
    /// The registry description this dispatch was compiled from; deltas are
    /// applied against it.
    source: StructuralTag,
}

impl CompiledTagDispatch {
    /// The compiled triggers, in `StructuralTag::effective_triggers` order.
    pub fn triggers(&self) -> &[Arc<CompiledTrigger>] {
        &self.triggers
    }

    /// How tagged segments hand decoding back to free text (see
    /// [`SegmentExitPolicy`]).
    pub fn exit_policy(&self) -> SegmentExitPolicy {
        self.exit
    }

    /// The Aho–Corasick automaton scanning free text for all triggers at
    /// once. Pattern indices match [`triggers`](Self::triggers) order.
    pub fn scanner(&self) -> &AhoCorasick {
        &self.scanner
    }

    /// The vocabulary the sub-grammars were compiled against.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The [`StructuralTag`] description this dispatch was compiled from.
    /// [`GrammarCompiler::update_tag_dispatch`] applies registry deltas
    /// against it.
    pub fn source_tag(&self) -> &StructuralTag {
        &self.source
    }

    /// Estimated heap memory pinned by this dispatch: the per-trigger
    /// compiled segment grammars (dominant — each carries an adaptive mask
    /// cache) plus the trigger strings and the Aho–Corasick scanner. Used by
    /// [`TagDispatchCache`](crate::TagDispatchCache) to enforce its byte
    /// budget. Sub-grammars shared with the
    /// [`GrammarCache`](crate::GrammarCache) are counted here too: the
    /// dispatch pins them beyond that cache's budget, so they are this
    /// cache's responsibility for as long as the dispatch lives.
    pub fn memory_bytes(&self) -> usize {
        let grammars: usize = self
            .triggers
            .iter()
            .map(|t| t.grammar.memory_bytes() + t.trigger.len())
            .sum();
        // Each scanner state holds a 256-way transition row plus match data.
        grammars + self.scanner.state_count() * 256
    }
}

impl ConstraintFactory for CompiledTagDispatch {
    fn new_matcher(self: Arc<Self>, max_rollback: usize) -> Box<dyn ConstraintMatcher> {
        Box::new(StructuralTagMatcher::with_max_rollback(self, max_rollback))
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }
}

/// Idle cap of the per-trigger inner matcher pools: a serving process rarely
/// has more concurrently *open* segments per trigger than lanes in a batch.
const INNER_POOL_MAX_IDLE: usize = 64;

impl GrammarCompiler {
    /// Compiles a [`StructuralTag`] description: every trigger's combined
    /// grammar (begin-tag remainder, content, end tag over the dispatched
    /// tags, plus the free-text continuation tail) runs through the ordinary
    /// cached compile path, so shared tool schemas are compiled once per
    /// [`GrammarCache`](crate::GrammarCache) — *across registries too*:
    /// segment-grammar rule names depend only on the trigger's own tags, so
    /// two registries sharing a tool share its compiled sub-grammar. The
    /// dispatch as a whole is cached in this compiler's budgeted
    /// [`TagDispatchCache`](crate::TagDispatchCache), so serving batches
    /// that re-submit the same tool registry skip the schema-to-grammar
    /// conversion, combined-grammar construction and trigger-scanner build
    /// too.
    ///
    /// # Errors
    ///
    /// Returns the structural-tag validation error or the content grammars'
    /// parse/conversion errors.
    pub fn compile_tag_dispatch(
        &self,
        tag: &StructuralTag,
    ) -> Result<Arc<CompiledTagDispatch>, GrammarError> {
        // The description holds serde_json values and grammars with no Hash
        // impls; their Debug rendering is deterministic and captures every
        // distinguishing field, so it serves as the cache key (stored in
        // full — a truncated hash could silently alias two registries).
        let key = format!("{tag:?}");
        if let Some(hit) = self.dispatch_cache().get(&key) {
            return Ok(hit);
        }
        let triggers = tag.effective_triggers();
        let assignments = tag.trigger_assignments()?;
        let mut compiled_triggers = Vec::with_capacity(triggers.len());
        for (trigger, tag_indices) in triggers.iter().zip(&assignments) {
            compiled_triggers.push(self.compile_trigger_segment(tag, trigger, tag_indices)?);
        }
        Ok(self.assemble_dispatch(tag, key, compiled_triggers))
    }

    /// Incrementally recompiles a registry mutation: applies `delta` to
    /// `base`'s source description, recompiles *only* the triggers whose
    /// dispatched tag set actually changed (for [`DispatchDelta::AddTag`]
    /// with per-tag triggers, exactly one), reuses every untouched
    /// [`CompiledTrigger`] of `base` — compiled segment grammar and warm
    /// [`MatcherPool`] included — and rebuilds the Aho–Corasick scanner over
    /// the new trigger set. The result is cached like a full compile, so a
    /// later [`compile_tag_dispatch`](Self::compile_tag_dispatch) of the
    /// mutated registry (e.g. at request admission) is a cache hit.
    ///
    /// The strict-mode dead-trigger lint runs on exactly the recompiled
    /// triggers: an added tag whose segment grammar cannot terminate is
    /// rejected here just as a full compile would, while untouched triggers
    /// (already linted when `base` was compiled) are not re-analyzed.
    ///
    /// `base` should come from this compiler; a base compiled against a
    /// different vocabulary is handled gracefully by falling back to a full
    /// compile of the mutated registry.
    ///
    /// # Errors
    ///
    /// Returns [`StructuralTag`](GrammarError::StructuralTag) validation
    /// errors from [`xg_grammar::StructuralTag::apply_delta`], content
    /// grammar errors of recompiled triggers, or
    /// [`GrammarError::Lint`] (strict mode, dead added trigger).
    pub fn update_tag_dispatch(
        &self,
        base: &Arc<CompiledTagDispatch>,
        delta: &DispatchDelta,
    ) -> Result<Arc<CompiledTagDispatch>, GrammarError> {
        let next = base.source_tag().apply_delta(delta)?;
        if base.vocab.fingerprint() != self.vocabulary().fingerprint() || base.exit != next.exit {
            // A foreign base pins grammars compiled against another
            // vocabulary; reusing them would produce wrong masks.
            return self.compile_tag_dispatch(&next);
        }
        let key = format!("{next:?}");
        if let Some(hit) = self.dispatch_cache().get(&key) {
            return Ok(hit);
        }
        let old_tag = base.source_tag();
        let old_triggers = old_tag.effective_triggers();
        // `base` compiled, so its assignments validated then; `next` passed
        // `apply_delta` validation above.
        let old_assignments = old_tag.trigger_assignments()?;
        let new_triggers = next.effective_triggers();
        let new_assignments = next.trigger_assignments()?;
        let specs = |tag: &StructuralTag, indices: &[usize]| -> Vec<TagSpec> {
            indices.iter().map(|&i| tag.tags[i].clone()).collect()
        };
        let mut compiled_triggers = Vec::with_capacity(new_triggers.len());
        for (trigger, tag_indices) in new_triggers.iter().zip(&new_assignments) {
            let reusable = old_triggers
                .iter()
                .position(|t| t == trigger)
                .filter(|&old_idx| {
                    specs(old_tag, &old_assignments[old_idx]) == specs(&next, tag_indices)
                })
                .map(|old_idx| Arc::clone(&base.triggers[old_idx]));
            match reusable {
                Some(existing) => compiled_triggers.push(existing),
                None => compiled_triggers.push(self.compile_trigger_segment(
                    &next,
                    trigger,
                    tag_indices,
                )?),
            }
        }
        Ok(self.assemble_dispatch(&next, key, compiled_triggers))
    }

    /// Compiles one trigger's segment: combined grammar construction, the
    /// strict-mode dead-trigger lint, the exit-policy tail, the cached
    /// grammar compile, and a fresh inner matcher pool. Shared by the full
    /// and incremental compile paths, so the delta path lints and compiles
    /// exactly like a full compile would for the triggers it touches.
    fn compile_trigger_segment(
        &self,
        tag: &StructuralTag,
        trigger: &str,
        tag_indices: &[usize],
    ) -> Result<Arc<CompiledTrigger>, GrammarError> {
        let grammar = tag.build_grammar_for_trigger(trigger, tag_indices)?;
        // Dead-trigger lint: a trigger whose combined segment grammar cannot
        // derive any terminal string would fire and then wedge the lane (the
        // segment can never complete). In strict lint mode that fails the
        // compile up front; the free-text tail appended below cannot repair
        // an unproductive segment, so checking the strict grammar is exact.
        if self.config().lint_mode == crate::LintMode::Strict {
            let analysis = xg_grammar::analyze(&grammar);
            if analysis.has_errors() {
                return Err(GrammarError::Lint {
                    diagnostics: vec![xg_grammar::Diagnostic::new(
                        xg_grammar::DiagnosticCode::DeadTrigger,
                        None,
                        format!(
                            "trigger `{trigger}` has an unserveable segment grammar: {}",
                            analysis.error_summary()
                        ),
                    )],
                });
            }
        }
        // Eager exit: the free-text tail turns the end-of-segment mask
        // into the union with the prose continuation; acceptance is
        // untouched because the matcher closes the segment eagerly,
        // before the tail is ever entered across a token boundary.
        // Greedy exit: the grammar stays *strict* (no tail) — the
        // matcher needs its exact termination points to find the longest
        // match, and a tail would keep it terminable (and byte-hungry)
        // forever; the mask union with prose is built at mask time
        // instead, from the segment's exitability.
        let segment_grammar = match tag.exit {
            SegmentExitPolicy::Eager => xg_grammar::append_free_text_tail(&grammar),
            SegmentExitPolicy::Greedy => grammar,
        };
        let compiled = self.compile_grammar(&segment_grammar);
        let pool = Arc::new(MatcherPool::with_rollback_window(
            Arc::clone(&compiled) as Arc<dyn ConstraintFactory>,
            INNER_POOL_MAX_IDLE,
            // Inner matchers keep one rollback unit per byte. The window
            // is nominally unbounded so the matcher never self-trims;
            // `prune_unreachable_segments` trims it to exactly the units
            // the outer rollback window can still reach.
            usize::MAX,
        ));
        Ok(Arc::new(CompiledTrigger {
            trigger: trigger.as_bytes().to_vec(),
            grammar: compiled,
            pool,
        }))
    }

    /// Builds the scanner over `triggers`, wraps everything into a
    /// [`CompiledTagDispatch`] and stores it in the dispatch cache under
    /// `key`. Concurrent identical compiles may race past the lookup; the
    /// underlying grammars still compile once ([`GrammarCache`]), and the
    /// cache keeps the first-inserted dispatch so every caller shares one
    /// `Arc`.
    ///
    /// [`GrammarCache`]: crate::GrammarCache
    fn assemble_dispatch(
        &self,
        tag: &StructuralTag,
        key: String,
        triggers: Vec<Arc<CompiledTrigger>>,
    ) -> Arc<CompiledTagDispatch> {
        let patterns: Vec<Vec<u8>> = triggers.iter().map(|t| t.trigger.clone()).collect();
        let scanner = AhoCorasick::new(&patterns);
        let compiled = Arc::new(CompiledTagDispatch {
            triggers,
            scanner,
            vocab: Arc::clone(self.vocabulary()),
            exit: tag.exit,
            source: tag.clone(),
        });
        self.dispatch_cache().insert(key, compiled)
    }

    /// Returns `true` if this compiler's dispatch cache already holds the
    /// compiled form of `tag` — i.e.
    /// [`compile_tag_dispatch`](Self::compile_tag_dispatch) would be a cache
    /// hit. Probes only; compiles nothing and does not touch hit/miss
    /// counters or LRU order. Admission control uses this to classify
    /// cache-hit admissions.
    pub fn has_cached_tag_dispatch_for(&self, tag: &StructuralTag) -> bool {
        self.dispatch_cache().peek(&format!("{tag:?}"))
    }
}

/// Runtime statistics of a [`StructuralTagMatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagDispatchStats {
    /// Masks generated while in free-text mode (all-allowed, no mask work).
    pub free_masks: u64,
    /// Masks generated while inside a tagged segment (constrained).
    pub tag_masks: u64,
    /// Tokens accepted in total.
    pub tokens_accepted: u64,
    /// Tagged segments opened.
    pub tags_opened: u64,
    /// Tagged segments closed.
    pub tags_closed: u64,
    /// Segment slots dropped entirely because they fell behind the rollback
    /// window (the remaining slots are all the per-token prune pass scans).
    pub slots_dropped: u64,
    /// Bytes accepted through [`StructuralTagMatcher::accept_bytes`] — text
    /// that advanced the matcher without per-token sampling (jump-forward
    /// injections and any caller-seeded prefixes).
    pub bytes_forced: u64,
}

/// The matcher's current high-level mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Emitting unconstrained free text (scanning for triggers).
    FreeText,
    /// Inside the tagged segment of the given trigger index.
    Tagged {
        /// Index into [`CompiledTagDispatch::triggers`].
        trigger: usize,
    },
}

/// Internal mode state; [`ModeState::Free`] carries the trigger-scan
/// automaton state, [`ModeState::Tagged`] the *absolute* segment index
/// (stable across dropped slots).
#[derive(Debug, Clone, Copy)]
enum ModeState {
    Free { scan: AcState },
    Tagged { seg: usize },
}

/// A tagged segment's runtime state. The matcher is returned to its trigger's
/// pool (`None`) once no rollback snapshot can reach the segment any more.
#[derive(Debug)]
struct TagSegment {
    trigger: usize,
    matcher: Option<Box<dyn ConstraintMatcher>>,
    /// Inner rollback units accepted so far (one per byte fed).
    units: usize,
    /// Whether the inner grammar can terminate at the current position —
    /// i.e. the segment could close here. Maintained per accepted byte (and
    /// re-derived on rollback) so greedy-exit decisions and
    /// [`StructuralTagMatcher::can_terminate`] need no `&mut` probe of the
    /// inner matcher. Only meaningful under [`SegmentExitPolicy::Greedy`]
    /// (eager segments close the moment this would become `true`).
    exitable: bool,
}

/// State of the matcher *before* an accepted token, for rollback.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    mode: ModeState,
    /// Inner units of the then-current segment (0 when `mode` is free).
    units: usize,
    /// Total segments ever opened at snapshot time (`segments_base +
    /// segments.len()`), for truncating later opens on restore.
    segments_len: usize,
}

/// The incremental matcher for a compiled structural tag: unconstrained free
/// text, trigger dispatch, constrained tagged segments, and rollback across
/// all of it.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use xg_core::{GrammarCompiler, StructuralTagMatcher, TokenBitmask};
/// use xg_grammar::{StructuralTag, TagContent, TagSpec};
/// use xg_tokenizer::test_vocabulary;
///
/// let vocab = Arc::new(test_vocabulary(600));
/// let compiler = GrammarCompiler::new(Arc::clone(&vocab));
/// let tag = StructuralTag::new(vec![TagSpec {
///     begin: "<n>".into(),
///     content: TagContent::Ebnf { text: "root ::= [0-9]+".into(), root: "root".into() },
///     end: "</n>".into(),
/// }]);
/// let compiled = compiler.compile_tag_dispatch(&tag)?;
/// let mut matcher = StructuralTagMatcher::new(compiled);
///
/// // Free text: the mask is all-allowed.
/// let mut mask = TokenBitmask::new_all_rejected(vocab.len());
/// matcher.fill_next_token_bitmask(&mut mask);
/// assert!(mask.count_allowed() > vocab.len() - 8);
/// # Ok::<(), xg_grammar::GrammarError>(())
/// ```
#[derive(Debug)]
pub struct StructuralTagMatcher {
    compiled: Arc<CompiledTagDispatch>,
    mode: ModeState,
    /// Live segment slots. Slots behind the rollback window are dropped from
    /// the front; `segments_base` is the absolute index of `segments[0]`, so
    /// a request with hundreds of tool calls scans (and stores) only the
    /// handful of slots a snapshot can still reach.
    segments: VecDeque<TagSegment>,
    segments_base: usize,
    history: VecDeque<Snapshot>,
    max_rollback: usize,
    terminated: bool,
    stats: TagDispatchStats,
}

impl StructuralTagMatcher {
    /// Creates a matcher with the default rollback window.
    pub fn new(compiled: Arc<CompiledTagDispatch>) -> Self {
        Self::with_max_rollback(compiled, DEFAULT_MAX_ROLLBACK_TOKENS)
    }

    /// Creates a matcher that can roll back up to `max_rollback` recently
    /// accepted tokens, including across tag boundaries.
    pub fn with_max_rollback(compiled: Arc<CompiledTagDispatch>, max_rollback: usize) -> Self {
        let scan = compiled.scanner.start();
        StructuralTagMatcher {
            compiled,
            mode: ModeState::Free { scan },
            segments: VecDeque::new(),
            segments_base: 0,
            history: VecDeque::new(),
            max_rollback,
            terminated: false,
            stats: TagDispatchStats::default(),
        }
    }

    /// The compiled structural tag this matcher runs.
    pub fn compiled(&self) -> &Arc<CompiledTagDispatch> {
        &self.compiled
    }

    /// Runtime statistics.
    pub fn stats(&self) -> TagDispatchStats {
        self.stats
    }

    /// The maximum rollback window this matcher was created with.
    pub fn max_rollback(&self) -> usize {
        self.max_rollback
    }

    /// The matcher's current mode.
    pub fn mode(&self) -> DispatchMode {
        match &self.mode {
            ModeState::Free { .. } => DispatchMode::FreeText,
            ModeState::Tagged { seg } => DispatchMode::Tagged {
                trigger: self.seg(*seg).trigger,
            },
        }
    }

    /// Returns `true` if end-of-sequence has been accepted.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Returns `true` if end-of-sequence would be accepted now: free text can
    /// always end; a tagged segment must be closed first — except a greedy
    /// segment sitting on a termination point of its grammar, which closes
    /// on EOS.
    pub fn can_terminate(&self) -> bool {
        if self.terminated {
            return false;
        }
        match self.mode {
            ModeState::Free { .. } => true,
            ModeState::Tagged { seg } => {
                matches!(self.compiled.exit, SegmentExitPolicy::Greedy) && self.seg(seg).exitable
            }
        }
    }

    /// Number of accepted tokens that can currently be rolled back.
    pub fn rollback_window(&self) -> usize {
        self.history.len()
    }

    /// Number of segment slots currently retained (the prune pass scans only
    /// these; slots behind the rollback window are dropped entirely).
    pub fn retained_segment_slots(&self) -> usize {
        self.segments.len()
    }

    /// Resets the matcher to free text at the start of the stream, returning
    /// every live inner matcher to its trigger's pool.
    pub fn reset(&mut self) {
        self.release_segments_from(0);
        self.mode = ModeState::Free {
            scan: self.compiled.scanner.start(),
        };
        self.segments_base = 0;
        self.history.clear();
        self.terminated = false;
        self.stats = TagDispatchStats::default();
    }

    /// Fills `mask` with the allowed next tokens: all-allowed in free text
    /// (special tokens except EOS stay rejected), the segment grammar's mask
    /// inside a tagged segment.
    ///
    /// Under [`SegmentExitPolicy::Eager`] the segment grammar carries the
    /// free-text continuation tail, so near the end of a segment the mask
    /// also admits tokens that finish the end tag and continue with prose.
    /// Under [`SegmentExitPolicy::Greedy`] the segment grammar is strict;
    /// whenever it can terminate the mask is the free-text mask instead
    /// (continue-the-segment and exit-to-prose union), because
    /// [`accept_token`](Self::accept_token) closes the segment at the last
    /// terminable point when a longer match dies.
    ///
    /// # Panics
    ///
    /// Panics if the mask's vocabulary size differs from the compiled
    /// vocabulary.
    pub fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
        let vocab = Arc::clone(&self.compiled.vocab);
        assert_eq!(
            mask.vocab_size(),
            vocab.len(),
            "mask size must match the vocabulary"
        );
        if self.terminated {
            mask.reject_all();
            return;
        }
        match self.mode {
            ModeState::Free { .. } => {
                // Free text passes through unconstrained: no automaton work,
                // no vocabulary scan. EOS is allowed (free text may end).
                mask.allow_all();
                for special in vocab.special_ids() {
                    if Some(special) != vocab.eos() {
                        mask.reject(special);
                    }
                }
                self.stats.free_masks += 1;
            }
            ModeState::Tagged { seg } => {
                let greedy = matches!(self.compiled.exit, SegmentExitPolicy::Greedy);
                if greedy && self.seg(seg).exitable {
                    // The segment grammar can terminate here, so any token is
                    // acceptable: bytes the strict grammar accepts extend the
                    // segment, and the rest close it and resume as prose
                    // (`advance_bytes_across_modes` rewinds to the last
                    // exitable point when a longer match dies). The union of
                    // those outcomes is the free-text mask.
                    mask.allow_all();
                    for special in vocab.special_ids() {
                        if Some(special) != vocab.eos() {
                            mask.reject(special);
                        }
                    }
                    self.stats.tag_masks += 1;
                } else {
                    self.seg_mut(seg)
                        .matcher
                        .as_mut()
                        .expect("the current segment is never pruned")
                        .fill_next_token_bitmask(mask);
                    self.stats.tag_masks += 1;
                }
            }
        }
    }

    /// Accepts a sampled token, advancing free-text scanning and/or the
    /// current segment's grammar. A single token may cross mode boundaries
    /// (close a tag and resume prose, or complete a trigger and start the
    /// constrained segment in the same token). A token that completes a
    /// trigger and then immediately contradicts the tag's grammar is kept as
    /// plain free text (the dispatch is cancelled) — the all-allowed
    /// free-text mask promised the token was acceptable.
    ///
    /// # Errors
    ///
    /// Returns an [`AcceptError`] (leaving the state unchanged) when a byte
    /// violates the grammar of a segment that was already open when the call
    /// started, the token is unknown or a non-EOS special token, or EOS is
    /// offered inside an unclosed tag.
    pub fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let vocab = Arc::clone(&self.compiled.vocab);
        if token.index() >= vocab.len() {
            return Err(AcceptError::UnknownToken { token });
        }
        if vocab.is_special(token) {
            if Some(token) == vocab.eos() {
                if self.can_terminate() {
                    self.push_history();
                    if matches!(self.mode, ModeState::Tagged { .. }) {
                        // A greedy segment terminable here closes on EOS; the
                        // history snapshot above restores the open segment on
                        // rollback.
                        self.close_segment();
                    }
                    self.terminated = true;
                    self.stats.tokens_accepted += 1;
                    return Ok(());
                }
                return Err(AcceptError::CannotTerminate);
            }
            return Err(AcceptError::SpecialTokenRejected { token });
        }
        let snapshot = self.snapshot();
        let stats = self.stats;
        let bytes = vocab.token_bytes(token).to_vec();
        match self.advance_bytes_across_modes(&bytes, &snapshot) {
            Ok(()) => {
                self.push_history_snapshot(snapshot);
                self.stats.tokens_accepted += 1;
                Ok(())
            }
            Err(matched_bytes) => {
                self.restore(&snapshot);
                self.stats = stats;
                Err(AcceptError::TokenRejected {
                    token,
                    matched_bytes,
                })
            }
        }
    }

    /// Accepts raw bytes as one rollback unit (jump-forward-style forced
    /// text), crossing mode boundaries like
    /// [`accept_token`](Self::accept_token).
    ///
    /// # Errors
    ///
    /// Returns [`AcceptError::BytesRejected`] (leaving the state unchanged)
    /// when a byte violates the grammar of a segment that was already open
    /// when the call started (like [`accept_token`](Self::accept_token), a
    /// dispatch opened *and* contradicted within this call is cancelled and
    /// kept as free text instead).
    pub fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError> {
        if self.terminated {
            return Err(AcceptError::AlreadyTerminated);
        }
        let snapshot = self.snapshot();
        let stats = self.stats;
        match self.advance_bytes_across_modes(bytes, &snapshot) {
            Ok(()) => {
                self.push_history_snapshot(snapshot);
                self.stats.bytes_forced += bytes.len() as u64;
                Ok(())
            }
            Err(matched_bytes) => {
                self.restore(&snapshot);
                self.stats = stats;
                Err(AcceptError::BytesRejected { matched_bytes })
            }
        }
    }

    /// Rolls back the last `num_tokens` accepted tokens, restoring segment
    /// state across tag boundaries (a rollback into a closed segment re-opens
    /// it; a rollback across a segment's opening discards the segment and
    /// restores the free-text scan).
    ///
    /// # Errors
    ///
    /// Returns a [`RollbackError`] if more tokens are requested than the
    /// rollback window holds; the state is unchanged.
    pub fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
        if num_tokens == 0 {
            return Ok(());
        }
        if num_tokens > self.history.len() {
            return Err(RollbackError {
                requested: num_tokens,
                available: self.history.len(),
            });
        }
        let target = self.history.len() - num_tokens;
        let snapshot = self.history[target];
        self.restore(&snapshot);
        self.history.truncate(target);
        self.terminated = false;
        Ok(())
    }

    /// Finds the longest byte string *forced* from the current position
    /// (always trimmed to a complete UTF-8 prefix), without modifying state.
    ///
    /// Free text forces nothing (any byte is acceptable). Inside a tagged
    /// segment the forced bytes come from the segment grammar: the unmatched
    /// remainder of the begin tag, forced schema punctuation and keys, and —
    /// once the content is complete — the end tag itself. The search stops
    /// where the segment can close (the continuation is unconstrained prose,
    /// so nothing beyond the close is forced).
    pub fn find_jump_forward_string(&mut self) -> Vec<u8> {
        if self.terminated {
            return Vec::new();
        }
        match self.mode {
            ModeState::Free { .. } => Vec::new(),
            ModeState::Tagged { seg } => self
                .seg_mut(seg)
                .matcher
                .as_mut()
                .expect("the current segment is never pruned")
                .find_jump_forward_string(),
        }
    }

    /// Like [`find_jump_forward_string`](Self::find_jump_forward_string), but
    /// returned as a `String` (the forced bytes are always trimmed to a
    /// complete UTF-8 prefix, so the conversion cannot fail).
    pub fn find_jump_forward_str(&mut self) -> String {
        String::from_utf8(self.find_jump_forward_string())
            .expect("forced string is trimmed to a valid UTF-8 boundary")
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    fn seg(&self, abs: usize) -> &TagSegment {
        &self.segments[abs - self.segments_base]
    }

    fn seg_mut(&mut self, abs: usize) -> &mut TagSegment {
        let idx = abs - self.segments_base;
        &mut self.segments[idx]
    }

    /// Total segments ever opened (dropped slots included).
    fn segments_total(&self) -> usize {
        self.segments_base + self.segments.len()
    }

    fn snapshot(&self) -> Snapshot {
        let units = match &self.mode {
            ModeState::Free { .. } => 0,
            ModeState::Tagged { seg } => self.seg(*seg).units,
        };
        Snapshot {
            mode: self.mode,
            units,
            segments_len: self.segments_total(),
        }
    }

    fn restore(&mut self, snapshot: &Snapshot) {
        // Drop segments opened after the snapshot, returning their inner
        // matchers to the pools. When `segments_base` has already advanced
        // past the snapshot's total (the excess slots fell behind the
        // rollback window and were dropped from the front), this saturates to
        // clearing whatever is left.
        self.release_segments_from(snapshot.segments_len.saturating_sub(self.segments_base));
        if let ModeState::Tagged { seg } = &snapshot.mode {
            let segment = self.seg_mut(*seg);
            let delta = segment.units - snapshot.units;
            if delta > 0 {
                let matcher = segment
                    .matcher
                    .as_mut()
                    .expect("segments reachable from snapshots are never pruned");
                matcher
                    .rollback(delta)
                    .expect("inner matchers keep their full per-byte history");
                segment.units = snapshot.units;
                segment.exitable = matcher.can_terminate();
            }
        }
        self.mode = snapshot.mode;
    }

    /// Advances over `bytes`, switching modes as triggers fire and segments
    /// close. On failure returns the number of bytes matched; the caller
    /// restores the pre-call snapshot (`base`, the state at call entry).
    ///
    /// The free-text mask promises that *any* token is acceptable, so a
    /// dispatch that both opens **within this call** and immediately
    /// contradicts the tag grammar in the same call must not reject the
    /// token: the completed trigger is treated as plain prose instead
    /// (the byte position is recorded in `suppressed` and the call replays
    /// from `base` without dispatching there — the scan then continues from
    /// the automaton's match state, which tracks exactly the trigger-suffix
    /// overlaps). Only bytes violating a segment that was already open when
    /// the call started are a real rejection — that segment's constraint was
    /// visible in the mask.
    fn advance_bytes_across_modes(&mut self, bytes: &[u8], base: &Snapshot) -> Result<(), usize> {
        let compiled = Arc::clone(&self.compiled);
        let greedy = matches!(compiled.exit, SegmentExitPolicy::Greedy);
        let base_stats = self.stats;
        let mut suppressed: Vec<usize> = Vec::new();
        // Byte positions where a greedy segment is *forced* to close on the
        // current attempt: when the strict grammar dies at a point where the
        // segment cannot end, the call replays from `base` and exits at the
        // last position where it could (the longest match), handing the
        // remaining bytes back to free text. Strictly increasing across
        // attempts, so the replay loop terminates.
        let mut forced_exits: Vec<usize> = Vec::new();
        'attempt: loop {
            // Position of the trigger completion that opened the currently
            // innermost segment, when that happened during this call.
            let mut opened_at: Option<usize> = None;
            // Most recent byte index (this attempt) where the *current*
            // greedy segment could have closed; cleared on every mode
            // transition.
            let mut last_exitable: Option<usize> = None;
            let mut i = 0;
            while i < bytes.len() {
                let b = bytes[i];
                if forced_exits.contains(&i) && matches!(self.mode, ModeState::Tagged { .. }) {
                    self.close_segment();
                    last_exitable = None;
                    // Byte `i` now runs through the Free arm below.
                }
                match &mut self.mode {
                    ModeState::Free { scan } => {
                        let state = compiled.scanner.step(*scan, b);
                        *scan = state;
                        if let Some(trigger) = compiled.scanner.matched(state) {
                            if !suppressed.contains(&i) {
                                self.open_segment(trigger);
                                opened_at = Some(i);
                                last_exitable = None;
                            }
                        }
                    }
                    ModeState::Tagged { seg } => {
                        let segment = {
                            let idx = *seg - self.segments_base;
                            &mut self.segments[idx]
                        };
                        if greedy && segment.exitable {
                            last_exitable = Some(i);
                        }
                        let matcher = segment
                            .matcher
                            .as_mut()
                            .expect("the current segment is never pruned");
                        if matcher.accept_bytes(&[b]).is_err() {
                            if greedy && segment.exitable {
                                // The grammar cannot take this byte but the
                                // segment can end right here: longest match
                                // found. Close and re-run the byte as free
                                // text.
                                self.close_segment();
                                last_exitable = None;
                                continue;
                            }
                            if greedy {
                                if let Some(exit) = last_exitable {
                                    // The grammar died beyond the last point
                                    // where the segment could end: rewind and
                                    // replay, closing there instead.
                                    forced_exits.push(exit);
                                    self.restore(base);
                                    self.stats = base_stats;
                                    continue 'attempt;
                                }
                            }
                            if let Some(pos) = opened_at {
                                suppressed.push(pos);
                                self.restore(base);
                                self.stats = base_stats;
                                continue 'attempt;
                            }
                            return Err(i);
                        }
                        segment.units += 1;
                        if greedy {
                            segment.exitable = matcher.can_terminate();
                        } else if matcher.can_terminate() {
                            self.close_segment();
                            last_exitable = None;
                        }
                    }
                }
                i += 1;
            }
            return Ok(());
        }
    }

    /// Opens a tagged segment for `trigger` (drawing the inner matcher from
    /// the trigger's pool). Under the eager policy a segment whose combined
    /// grammar is already complete (pathological nullable tags) closes
    /// immediately; under the greedy policy it stays open — merely
    /// *exitable* — so longer matches still win.
    fn open_segment(&mut self, trigger: usize) {
        let pool = &self.compiled.triggers[trigger].pool;
        let mut matcher = pool.acquire();
        self.stats.tags_opened += 1;
        let exitable = matcher.can_terminate();
        if exitable && matches!(self.compiled.exit, SegmentExitPolicy::Eager) {
            pool.release(matcher);
            self.stats.tags_closed += 1;
            self.mode = ModeState::Free {
                scan: self.compiled.scanner.start(),
            };
            return;
        }
        self.segments.push_back(TagSegment {
            trigger,
            matcher: Some(matcher),
            units: 0,
            exitable,
        });
        self.mode = ModeState::Tagged {
            seg: self.segments_total() - 1,
        };
    }

    fn close_segment(&mut self) {
        self.stats.tags_closed += 1;
        self.mode = ModeState::Free {
            scan: self.compiled.scanner.start(),
        };
    }

    fn push_history_snapshot(&mut self, snapshot: Snapshot) {
        if self.max_rollback > 0 {
            self.history.push_back(snapshot);
            if self.history.len() > self.max_rollback {
                self.history.pop_front();
            }
        }
        // Prune even with rollback disabled: with no snapshots retained,
        // every closed segment becomes unreachable immediately.
        self.prune_unreachable_segments();
    }

    fn push_history(&mut self) {
        let snapshot = self.snapshot();
        self.push_history_snapshot(snapshot);
    }

    /// Returns the inner matchers of segments that no rollback snapshot (nor
    /// the current mode) can reach any more to their pools, drops the slots
    /// of the unreachable *prefix* entirely (advancing `segments_base`, so
    /// long multi-call generations neither hold nor rescan one slot per
    /// closed tool call), and trims each reachable segment's per-byte history
    /// down to the oldest unit any snapshot can still roll back to.
    fn prune_unreachable_segments(&mut self) {
        let base = self.segments_base;
        // needed[i] = the smallest `units` value any retained snapshot (or
        // the current mode) could restore segment `base + i` to; None =
        // unreachable.
        let mut needed: Vec<Option<usize>> = vec![None; self.segments.len()];
        if let ModeState::Tagged { seg } = &self.mode {
            needed[*seg - base] = Some(self.seg(*seg).units);
        }
        for snap in &self.history {
            if let ModeState::Tagged { seg } = &snap.mode {
                debug_assert!(*seg >= base, "snapshots never reference dropped slots");
                let entry = needed[*seg - base].get_or_insert(snap.units);
                *entry = (*entry).min(snap.units);
            }
        }
        let compiled = Arc::clone(&self.compiled);
        for (segment, need) in self.segments.iter_mut().zip(&needed) {
            match need {
                None => {
                    if let Some(matcher) = segment.matcher.take() {
                        compiled.triggers[segment.trigger].pool.release(matcher);
                    }
                }
                Some(min_units) => {
                    if let Some(matcher) = segment.matcher.as_mut() {
                        matcher.trim_history(segment.units - min_units);
                    }
                }
            }
        }
        // Drop the unreachable prefix outright: no snapshot indexes below the
        // first reachable slot, so those slots can never be restored (and
        // truncation on restore only pops from the back).
        let unreachable_prefix = needed
            .iter()
            .position(|n| n.is_some())
            .unwrap_or(needed.len());
        for _ in 0..unreachable_prefix {
            self.segments.pop_front();
            self.segments_base += 1;
            self.stats.slots_dropped += 1;
        }
    }

    /// Returns the inner matchers of all slots with index ≥ `from` (relative
    /// to the deque) to their pools and removes the slots.
    fn release_segments_from(&mut self, from: usize) {
        let compiled = Arc::clone(&self.compiled);
        while self.segments.len() > from {
            if let Some(seg) = self.segments.pop_back() {
                if let Some(matcher) = seg.matcher {
                    compiled.triggers[seg.trigger].pool.release(matcher);
                }
            }
        }
    }
}

impl Drop for StructuralTagMatcher {
    fn drop(&mut self) {
        // Hand the live inner matchers back to their pools, so dropping a
        // dispatching matcher (or its backend session) recycles allocations
        // for the next request.
        self.release_segments_from(0);
    }
}

impl ConstraintMatcher for StructuralTagMatcher {
    fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.compiled.vocab
    }

    fn fill_next_token_bitmask(&mut self, mask: &mut TokenBitmask) {
        StructuralTagMatcher::fill_next_token_bitmask(self, mask);
    }

    fn accept_token(&mut self, token: TokenId) -> Result<(), AcceptError> {
        StructuralTagMatcher::accept_token(self, token)
    }

    fn accept_bytes(&mut self, bytes: &[u8]) -> Result<(), AcceptError> {
        StructuralTagMatcher::accept_bytes(self, bytes)
    }

    fn rollback(&mut self, num_tokens: usize) -> Result<(), RollbackError> {
        StructuralTagMatcher::rollback(self, num_tokens)
    }

    fn rollback_window(&self) -> usize {
        StructuralTagMatcher::rollback_window(self)
    }

    fn max_rollback(&self) -> usize {
        StructuralTagMatcher::max_rollback(self)
    }

    fn find_jump_forward_string(&mut self) -> Vec<u8> {
        StructuralTagMatcher::find_jump_forward_string(self)
    }

    fn can_terminate(&mut self) -> bool {
        StructuralTagMatcher::can_terminate(self)
    }

    fn is_terminated(&self) -> bool {
        StructuralTagMatcher::is_terminated(self)
    }

    fn reset(&mut self) {
        StructuralTagMatcher::reset(self);
    }

    fn stats(&self) -> ConstraintStats {
        ConstraintStats {
            masks_generated: self.stats.free_masks + self.stats.tag_masks,
            tokens_accepted: self.stats.tokens_accepted,
            bytes_forced: self.stats.bytes_forced,
        }
    }

    fn factory_key(&self) -> usize {
        ConstraintFactory::factory_key(&*self.compiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_grammar::{TagContent, TagSpec};
    use xg_tokenizer::test_vocabulary;

    fn number_tag() -> StructuralTag {
        StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }])
    }

    fn setup(tag: &StructuralTag) -> (Arc<Vocabulary>, StructuralTagMatcher) {
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(tag).unwrap();
        (vocab, StructuralTagMatcher::new(compiled))
    }

    fn token_for(vocab: &Vocabulary, bytes: &[u8]) -> TokenId {
        vocab
            .iter()
            .find(|(_, t)| *t == bytes)
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                panic!(
                    "token {:?} not in vocabulary",
                    String::from_utf8_lossy(bytes)
                )
            })
    }

    fn drive_bytes(vocab: &Vocabulary, matcher: &mut StructuralTagMatcher, text: &[u8]) {
        for &b in text {
            matcher.accept_token(token_for(vocab, &[b])).unwrap();
        }
    }

    #[test]
    fn free_text_is_unconstrained_and_tags_constrain() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        // Free text: everything non-special is allowed, EOS included.
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"z")));
        assert!(mask.is_allowed(vocab.eos().unwrap()));
        assert_eq!(matcher.mode(), DispatchMode::FreeText);

        drive_bytes(&vocab, &mut matcher, b"some prose <n>");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });

        // Inside the tag only digits are allowed (the segment cannot close
        // before at least one digit, so the free-tail union adds nothing).
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"7")));
        assert!(!mask.is_allowed(token_for(&vocab, b"z")));
        assert!(!mask.is_allowed(vocab.eos().unwrap()));
        assert!(!matcher.can_terminate());

        drive_bytes(&vocab, &mut matcher, b"42</n>");
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.can_terminate());

        drive_bytes(&vocab, &mut matcher, b" done");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        assert!(matcher.is_terminated());
        let stats = matcher.stats();
        assert_eq!(stats.tags_opened, 1);
        assert_eq!(stats.tags_closed, 1);
    }

    #[test]
    fn boundary_masks_admit_end_tag_plus_prose_tokens() {
        // At a point where the segment can close, the mask must admit a
        // token that finishes the end tag AND continues with prose — the
        // boundary-spanning case the free-text tail exists for.
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        drive_bytes(&vocab, &mut matcher, b"<n>42</n");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        matcher.fill_next_token_bitmask(&mut mask);
        // "><" closes the tag ('>') and continues with prose ('<').
        let crossing = token_for(&vocab, b"><");
        assert!(
            mask.is_allowed(crossing),
            "end-tag+prose token must be admitted at the boundary"
        );
        matcher.accept_token(crossing).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(matcher.stats().tags_closed, 1);
        // Mid-content, a digit+prose token is still rejected (the segment
        // cannot close before the end tag).
        let mut matcher2 = StructuralTagMatcher::new(Arc::clone(matcher.compiled()));
        matcher2.accept_bytes(b"<n>4").unwrap();
        matcher2.fill_next_token_bitmask(&mut mask);
        assert!(!mask.is_allowed(token_for(&vocab, b"z")));
    }

    #[test]
    fn invalid_bytes_inside_a_tag_are_rejected_atomically() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>1");
        let bad = token_for(&vocab, b"x");
        assert!(matches!(
            matcher.accept_token(bad),
            Err(AcceptError::TokenRejected { .. })
        ));
        // State unchanged: the segment continues normally.
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        drive_bytes(&vocab, &mut matcher, b"2</n>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn multi_byte_tokens_cross_mode_boundaries() {
        let tag = number_tag();
        let (_vocab, mut matcher) = setup(&tag);
        // One accept_bytes call spans prose, the whole tag, and more prose.
        matcher.accept_bytes(b"hi <n>123</n> bye").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(matcher.stats().tags_opened, 1);
        assert_eq!(matcher.stats().tags_closed, 1);
        // A unit whose bytes complete the trigger but then contradict the tag
        // grammar stays free text (the all-allowed mask promised it was
        // acceptable): the dispatch is cancelled, not rejected.
        matcher.accept_bytes(b"x <n>9q").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(
            matcher.stats().tags_opened,
            1,
            "cancelled dispatch is not an open"
        );
        // A later well-formed tag still dispatches and constrains.
        matcher.accept_bytes(b" <n>1").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        // Bytes violating a segment opened by an *earlier* unit are a real
        // rejection (its constraint was visible in the mask).
        let err = matcher.accept_bytes(b"q").unwrap_err();
        assert_eq!(err, AcceptError::BytesRejected { matched_bytes: 0 });
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        matcher.accept_bytes(b"2</n>").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn free_mask_contract_holds_for_trigger_crossing_tokens() {
        // The vocabulary contains the merged token "><". With prose ending in
        // "<n" the free mask is all-allowed; sampling "><" completes the
        // trigger "<n>" and continues with '<', which [0-9]+ rejects. The
        // token must still be accepted (as prose), or the mask would lie.
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let crossing = token_for(&vocab, b"><");
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        drive_bytes(&vocab, &mut matcher, b"prose <n");
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(crossing));
        matcher.accept_token(crossing).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert_eq!(matcher.stats().tags_opened, 0);
        // The cancelled trigger text is inert; a clean tag still works, and
        // rollback across the cancelled region behaves like plain free text.
        matcher.accept_bytes(b"<n>42</n>").unwrap();
        assert!(matcher.can_terminate());
        matcher.rollback(2).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
    }

    #[test]
    fn eos_is_rejected_inside_an_open_tag() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>4");
        assert!(matches!(
            matcher.accept_token(vocab.eos().unwrap()),
            Err(AcceptError::CannotTerminate)
        ));
        drive_bytes(&vocab, &mut matcher, b"</n>");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
    }

    #[test]
    fn rollback_across_tag_boundaries_restores_modes() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        let mut pre_tag_mask = TokenBitmask::new_all_rejected(vocab.len());
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        drive_bytes(&vocab, &mut matcher, b"ab");
        matcher.fill_next_token_bitmask(&mut pre_tag_mask);

        // Enter the tag, emit a digit: 4 tokens after the pre-tag state.
        drive_bytes(&vocab, &mut matcher, b"<n>5");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });

        // Roll back across the boundary: free text again, scan state reset.
        matcher.rollback(4).unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        matcher.fill_next_token_bitmask(&mut mask);
        assert_eq!(mask, pre_tag_mask, "pre-tag mask must be restored");

        // Re-enter and close; then roll back INTO the closed segment.
        drive_bytes(&vocab, &mut matcher, b"<n>5</n>!");
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        matcher.rollback(5).unwrap(); // undo `/n>` + `!`... back inside `<n>5`
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"9")));
        // Take a different path this time.
        drive_bytes(&vocab, &mut matcher, b"77</n>");
        assert!(matcher.can_terminate());
        // Two real opens (rollback re-enters a segment, it does not re-open).
        assert_eq!(matcher.stats().tags_opened, 2);
    }

    #[test]
    fn rollback_after_eos_reopens_free_text() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"ok");
        matcher.accept_token(vocab.eos().unwrap()).unwrap();
        assert!(matcher.is_terminated());
        matcher.rollback(1).unwrap();
        assert!(!matcher.is_terminated());
        assert!(matcher.can_terminate());
        assert!(matcher.rollback(100).is_err());
    }

    #[test]
    fn shared_trigger_dispatches_on_tag_names() {
        let mk = |name: &str, body: &str| TagSpec {
            begin: format!("<fn={name}>"),
            content: TagContent::Ebnf {
                text: format!("root ::= {body}"),
                root: "root".into(),
            },
            end: "</fn>".into(),
        };
        let tag = StructuralTag::with_triggers(
            vec![mk("num", "[0-9]+"), mk("word", "[a-z]+")],
            vec!["<fn=".into()],
        );
        let (vocab, mut matcher) = setup(&tag);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());

        drive_bytes(&vocab, &mut matcher, b"call <fn=");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        // Both tag names are still possible: `n` (num) and `w` (word).
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"n")));
        assert!(mask.is_allowed(token_for(&vocab, b"w")));
        assert!(!mask.is_allowed(token_for(&vocab, b"x")));

        // Choose `word` and check the content constraint switched with it.
        drive_bytes(&vocab, &mut matcher, b"word>");
        matcher.fill_next_token_bitmask(&mut mask);
        assert!(mask.is_allowed(token_for(&vocab, b"a")));
        assert!(!mask.is_allowed(token_for(&vocab, b"5")));
        drive_bytes(&vocab, &mut matcher, b"hello</fn>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn trigger_scan_handles_overlapping_prefixes() {
        // Prose containing `<` and `<x` must not derail the scan for `<n>`.
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"a < b <x <<n>");
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        drive_bytes(&vocab, &mut matcher, b"1</n>");
        assert!(matcher.can_terminate());
    }

    #[test]
    fn segment_slots_behind_the_rollback_window_are_dropped() {
        // The hundreds-of-tool-calls case: every closed call's slot must be
        // dropped (not just slimmed) once no snapshot can reach it, so the
        // per-token prune pass scans O(window) slots, not O(calls).
        let tag = number_tag();
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = StructuralTagMatcher::with_max_rollback(Arc::clone(&compiled), 4);
        for _ in 0..100 {
            matcher.accept_bytes(b"x <n>12</n> y").unwrap();
        }
        assert_eq!(matcher.stats().tags_opened, 100);
        assert!(
            matcher.retained_segment_slots() <= 4,
            "expected slots behind the window to be dropped, {} retained",
            matcher.retained_segment_slots()
        );
        assert!(matcher.stats().slots_dropped >= 96);
        // The inner matchers were recycled through the trigger's pool rather
        // than constructed fresh per call.
        let pool = compiled.triggers()[0].matcher_pool();
        assert!(
            pool.created() < 10,
            "inner matchers must recycle, created {}",
            pool.created()
        );
        assert!(pool.reused() >= 90);
        // Rollback within the window still works after dropping slots.
        matcher.rollback(4).unwrap();
        matcher.accept_bytes(b"<n>7</n>").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn long_segments_trim_inner_history_to_the_outer_window() {
        // A segment much longer than the rollback window must not retain one
        // history entry per byte for its whole lifetime.
        let tag = number_tag();
        let vocab = Arc::new(test_vocabulary(800));
        let compiler = GrammarCompiler::new(Arc::clone(&vocab));
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = StructuralTagMatcher::with_max_rollback(compiled, 4);
        matcher.accept_bytes(b"<n>").unwrap();
        for _ in 0..200 {
            matcher.accept_token(token_for(&vocab, b"7")).unwrap();
        }
        let inner_window = matcher.segments[0]
            .matcher
            .as_ref()
            .unwrap()
            .rollback_window();
        assert!(
            inner_window <= 4,
            "inner history must be bounded by the outer window, got {inner_window}"
        );
        // Rollback across the retained window still works exactly.
        matcher.rollback(4).unwrap();
        matcher.accept_bytes(b"12</n>").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn jump_forward_spans_begin_tag_remainder_and_end_tag() {
        // With the shared "<fn=" trigger and a single registered tag, the
        // whole name remainder is forced right after the trigger fires.
        let tag = StructuralTag::with_triggers(
            vec![TagSpec {
                begin: "<fn=lookup>".into(),
                content: TagContent::Ebnf {
                    text: "root ::= [0-9]+".into(),
                    root: "root".into(),
                },
                end: "</fn>".into(),
            }],
            vec!["<fn=".into()],
        );
        let (_vocab, mut matcher) = setup(&tag);
        // Free text forces nothing.
        assert!(matcher.find_jump_forward_string().is_empty());
        matcher.accept_bytes(b"calling <fn=").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::Tagged { trigger: 0 });
        // The begin-tag remainder is forced.
        assert_eq!(matcher.find_jump_forward_str(), "lookup>");
        matcher.accept_bytes(b"lookup>").unwrap();
        // Inside [0-9]+ nothing is forced; after a digit the end tag is not
        // forced either (more digits remain possible)...
        assert!(matcher.find_jump_forward_string().is_empty());
        matcher.accept_bytes(b"42</").unwrap();
        // ...but mid-end-tag the remainder of the close is forced, and the
        // jump stops at the segment boundary (prose is unconstrained).
        assert_eq!(matcher.find_jump_forward_str(), "fn>");
        matcher.accept_bytes(b"fn>").unwrap();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.find_jump_forward_string().is_empty());
    }

    #[test]
    fn reset_returns_to_free_text() {
        let tag = number_tag();
        let (vocab, mut matcher) = setup(&tag);
        drive_bytes(&vocab, &mut matcher, b"<n>1");
        matcher.reset();
        assert_eq!(matcher.mode(), DispatchMode::FreeText);
        assert!(matcher.can_terminate());
        assert_eq!(matcher.stats(), TagDispatchStats::default());
        assert_eq!(matcher.retained_segment_slots(), 0);
    }
}
