//! Error types of the core engine.

use std::error::Error as StdError;
use std::fmt;

use xg_tokenizer::TokenId;

/// Errors returned by [`GrammarMatcher::accept_token`].
///
/// [`GrammarMatcher::accept_token`]: crate::GrammarMatcher::accept_token
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptError {
    /// The token's byte string cannot be matched by the grammar at the
    /// current position. The matcher state is unchanged.
    TokenRejected {
        /// The offending token.
        token: TokenId,
        /// Number of bytes of the token that were matched before failing.
        matched_bytes: usize,
    },
    /// A raw byte string (jump-forward text or a forced segment) cannot be
    /// matched by the grammar at the current position. The matcher state is
    /// unchanged.
    BytesRejected {
        /// Number of bytes that were matched before failing.
        matched_bytes: usize,
    },
    /// The token id is outside the vocabulary.
    UnknownToken {
        /// The offending token.
        token: TokenId,
    },
    /// The end-of-sequence token was offered but the grammar cannot
    /// terminate at the current position.
    CannotTerminate,
    /// A token was offered after the matcher already accepted end-of-sequence.
    AlreadyTerminated,
    /// A non-EOS special token (BOS/PAD) was offered; special tokens carry no
    /// grammar-visible bytes and are never valid mid-generation.
    SpecialTokenRejected {
        /// The offending token.
        token: TokenId,
    },
}

impl fmt::Display for AcceptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceptError::TokenRejected {
                token,
                matched_bytes,
            } => write!(
                f,
                "token {} violates the grammar (failed after {matched_bytes} bytes)",
                token.0
            ),
            AcceptError::BytesRejected { matched_bytes } => write!(
                f,
                "byte string violates the grammar (failed after {matched_bytes} bytes)"
            ),
            AcceptError::UnknownToken { token } => {
                write!(f, "token {} is outside the vocabulary", token.0)
            }
            AcceptError::CannotTerminate => {
                write!(
                    f,
                    "end-of-sequence is not allowed before the structure is complete"
                )
            }
            AcceptError::AlreadyTerminated => {
                write!(f, "the matcher already accepted end-of-sequence")
            }
            AcceptError::SpecialTokenRejected { token } => {
                write!(
                    f,
                    "special token {} is not allowed during generation",
                    token.0
                )
            }
        }
    }
}

impl StdError for AcceptError {}

/// Errors returned by [`GrammarMatcher::rollback`].
///
/// [`GrammarMatcher::rollback`]: crate::GrammarMatcher::rollback
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackError {
    /// Number of tokens that were requested to be rolled back.
    pub requested: usize,
    /// Number of tokens available in the rollback window.
    pub available: usize,
}

impl fmt::Display for RollbackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot roll back {} tokens, only {} are in the rollback window",
            self.requested, self.available
        )
    }
}

impl StdError for RollbackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AcceptError>();
        assert_send_sync::<RollbackError>();
        let e = AcceptError::TokenRejected {
            token: TokenId(42),
            matched_bytes: 3,
        };
        assert!(e.to_string().contains("42"));
        let r = RollbackError {
            requested: 5,
            available: 2,
        };
        assert!(r.to_string().contains('5'));
        assert!(r.to_string().contains('2'));
    }
}
