//! Token vocabulary: the byte strings of every token an LLM can emit.
//!
//! The grammar engine only ever consumes the *byte string* of each token
//! (paper §3: the automaton is byte level precisely so that tokens containing
//! partial UTF-8 sequences and tokens crossing grammar-element boundaries are
//! handled uniformly), so a vocabulary here is essentially `Vec<Vec<u8>>`
//! plus bookkeeping for special tokens.

use serde::{Deserialize, Serialize};

/// Identifier of a token in a [`Vocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TokenId(pub u32);

impl TokenId {
    /// Returns the id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Role of a special token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialToken {
    /// Beginning-of-sequence marker.
    Bos,
    /// End-of-sequence marker; sampling it terminates the request.
    Eos,
    /// Padding / unknown marker.
    Pad,
}

/// A token vocabulary.
///
/// # Examples
///
/// ```
/// use xg_tokenizer::{Vocabulary, TokenId};
///
/// let vocab = Vocabulary::from_tokens(vec![
///     b"hello".to_vec(),
///     b" world".to_vec(),
///     b"</s>".to_vec(),
/// ], Some(2));
/// assert_eq!(vocab.len(), 3);
/// assert_eq!(vocab.token_bytes(TokenId(1)), b" world");
/// assert_eq!(vocab.decode(&[TokenId(0), TokenId(1)]), b"hello world");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    tokens: Vec<Vec<u8>>,
    /// Indices of special tokens and their roles.
    specials: Vec<(u32, SpecialToken)>,
    eos: Option<u32>,
}

impl Vocabulary {
    /// Creates a vocabulary from raw token byte strings. `eos` is the index
    /// of the end-of-sequence token, if any (it is registered as special).
    ///
    /// # Panics
    ///
    /// Panics if `eos` is out of range.
    pub fn from_tokens(tokens: Vec<Vec<u8>>, eos: Option<usize>) -> Self {
        if let Some(e) = eos {
            assert!(e < tokens.len(), "eos index out of range");
        }
        let mut specials = Vec::new();
        if let Some(e) = eos {
            specials.push((e as u32, SpecialToken::Eos));
        }
        Vocabulary {
            tokens,
            specials,
            eos: eos.map(|e| e as u32),
        }
    }

    /// Registers an additional special token.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn add_special(&mut self, id: TokenId, role: SpecialToken) {
        assert!(id.index() < self.tokens.len(), "special token out of range");
        if role == SpecialToken::Eos {
            self.eos = Some(id.0);
        }
        self.specials.push((id.0, role));
    }

    /// Number of tokens in the vocabulary.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Returns the byte string of a token.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn token_bytes(&self, id: TokenId) -> &[u8] {
        &self.tokens[id.index()]
    }

    /// Returns the end-of-sequence token id, if the vocabulary has one.
    pub fn eos(&self) -> Option<TokenId> {
        self.eos.map(TokenId)
    }

    /// Returns `true` if the token is special (BOS/EOS/PAD); special tokens
    /// carry no grammar-visible bytes and are handled separately by the
    /// matcher (only EOS is ever allowed, and only when the grammar can
    /// terminate).
    pub fn is_special(&self, id: TokenId) -> bool {
        self.specials.iter().any(|(i, _)| *i == id.0)
    }

    /// Returns the ids of all registered special tokens.
    pub fn special_ids(&self) -> Vec<TokenId> {
        let mut ids: Vec<TokenId> = self.specials.iter().map(|(i, _)| TokenId(*i)).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Iterates over `(TokenId, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &[u8])> {
        self.tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (TokenId(i as u32), t.as_slice()))
    }

    /// Concatenates the byte strings of a token sequence (special tokens are
    /// skipped).
    pub fn decode(&self, ids: &[TokenId]) -> Vec<u8> {
        let mut out = Vec::new();
        for &id in ids {
            if !self.is_special(id) {
                out.extend_from_slice(self.token_bytes(id));
            }
        }
        out
    }

    /// Decodes into a string, replacing invalid UTF-8 with the replacement
    /// character.
    pub fn decode_lossy(&self, ids: &[TokenId]) -> String {
        String::from_utf8_lossy(&self.decode(ids)).into_owned()
    }

    /// Returns token ids sorted lexicographically by their byte strings
    /// (special tokens excluded). This ordering maximizes shared prefixes
    /// between adjacent tokens, which the persistent execution stack exploits
    /// during preprocessing (paper §3.3).
    pub fn sorted_token_ids(&self) -> Vec<TokenId> {
        let mut ids: Vec<TokenId> = (0..self.tokens.len() as u32)
            .map(TokenId)
            .filter(|id| !self.is_special(*id))
            .collect();
        ids.sort_by(|a, b| self.token_bytes(*a).cmp(self.token_bytes(*b)));
        ids
    }

    /// A stable 64-bit fingerprint of the vocabulary: every token byte
    /// string, the special-token registrations and the EOS id all contribute.
    /// Two vocabularies with the same fingerprint are interchangeable for the
    /// grammar engine, which makes the fingerprint a suitable cache-key
    /// component for compiled grammars shared across serving processes.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        self.tokens.len().hash(&mut hasher);
        for t in &self.tokens {
            t.hash(&mut hasher);
        }
        for (id, role) in &self.specials {
            id.hash(&mut hasher);
            (*role as u8).hash(&mut hasher);
        }
        self.eos.hash(&mut hasher);
        hasher.finish()
    }

    /// Total number of bytes across all non-special tokens.
    pub fn total_token_bytes(&self) -> usize {
        self.iter()
            .filter(|(id, _)| !self.is_special(*id))
            .map(|(_, t)| t.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocabulary {
        let mut v = Vocabulary::from_tokens(
            vec![
                b"<s>".to_vec(),
                b"</s>".to_vec(),
                b"ab".to_vec(),
                b"a".to_vec(),
                b"b".to_vec(),
                b" the".to_vec(),
            ],
            Some(1),
        );
        v.add_special(TokenId(0), SpecialToken::Bos);
        v
    }

    #[test]
    fn basic_accessors() {
        let v = sample();
        assert_eq!(v.len(), 6);
        assert_eq!(v.eos(), Some(TokenId(1)));
        assert!(v.is_special(TokenId(0)));
        assert!(v.is_special(TokenId(1)));
        assert!(!v.is_special(TokenId(2)));
        assert_eq!(v.token_bytes(TokenId(5)), b" the");
    }

    #[test]
    fn decode_skips_special_tokens() {
        let v = sample();
        let text = v.decode(&[TokenId(0), TokenId(3), TokenId(4), TokenId(1)]);
        assert_eq!(text, b"ab");
        assert_eq!(v.decode_lossy(&[TokenId(2)]), "ab");
    }

    #[test]
    fn sorted_ids_are_lexicographic_and_exclude_specials() {
        let v = sample();
        let sorted = v.sorted_token_ids();
        assert_eq!(sorted.len(), 4);
        let bytes: Vec<&[u8]> = sorted.iter().map(|id| v.token_bytes(*id)).collect();
        let mut expected = bytes.clone();
        expected.sort();
        assert_eq!(bytes, expected);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Changing token content changes the fingerprint.
        let different = Vocabulary::from_tokens(
            vec![b"<s>".to_vec(), b"</s>".to_vec(), b"xy".to_vec()],
            Some(1),
        );
        assert_ne!(a.fingerprint(), different.fingerprint());
        // Registering an extra special token also changes it.
        let mut c = sample();
        c.add_special(TokenId(2), SpecialToken::Pad);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn serde_roundtrip() {
        let v = sample();
        let json = serde_json::to_string(&v).unwrap();
        let back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    #[should_panic(expected = "eos index out of range")]
    fn eos_out_of_range_panics() {
        let _ = Vocabulary::from_tokens(vec![b"a".to_vec()], Some(3));
    }
}
