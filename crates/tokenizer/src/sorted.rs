//! Lexicographically sorted view of a vocabulary with shared-prefix
//! information.
//!
//! The persistent execution stack (paper §3.3) checks tokens in
//! lexicographic order and rolls the automaton state back to the end of the
//! common prefix with the previously checked token, so the characters of
//! shared prefixes are only ever matched once. This module precomputes that
//! ordering and the prefix lengths, and exposes the "fraction of characters
//! that still need checking" statistic the paper reports (≈30 % for the
//! Llama-3.1 vocabulary).

use crate::vocab::{TokenId, Vocabulary};

/// A sorted token index with longest-common-prefix information.
#[derive(Debug, Clone)]
pub struct SortedVocabulary {
    /// Token ids in lexicographic byte order (special tokens excluded).
    ids: Vec<TokenId>,
    /// `lcp[i]` = length of the longest common prefix between token `ids[i]`
    /// and token `ids[i - 1]` (0 for the first token).
    lcp: Vec<usize>,
    /// Total bytes across the sorted tokens.
    total_bytes: usize,
    /// Length of the longest indexed token, bounding prefix lookups.
    max_token_len: usize,
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl SortedVocabulary {
    /// Builds the sorted index for a vocabulary.
    ///
    /// # Examples
    ///
    /// ```
    /// use xg_tokenizer::{SortedVocabulary, Vocabulary};
    ///
    /// let vocab = Vocabulary::from_tokens(
    ///     vec![b"read".to_vec(), b"reader".to_vec(), b"ready".to_vec()], None);
    /// let sorted = SortedVocabulary::new(&vocab);
    /// // "reader" and "ready" share the prefix "read"/"reade" with their
    /// // predecessors, so most characters are skipped.
    /// assert!(sorted.chars_to_check() < sorted.total_bytes());
    /// ```
    pub fn new(vocab: &Vocabulary) -> Self {
        let ids = vocab.sorted_token_ids();
        let mut lcp = Vec::with_capacity(ids.len());
        let mut total_bytes = 0;
        let mut max_token_len = 0;
        for (i, id) in ids.iter().enumerate() {
            let bytes = vocab.token_bytes(*id);
            total_bytes += bytes.len();
            max_token_len = max_token_len.max(bytes.len());
            if i == 0 {
                lcp.push(0);
            } else {
                lcp.push(common_prefix_len(bytes, vocab.token_bytes(ids[i - 1])));
            }
        }
        SortedVocabulary {
            ids,
            lcp,
            total_bytes,
            max_token_len,
        }
    }

    /// Sorted token ids.
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// Longest-common-prefix lengths (`lcp()[i]` refers to `ids()[i]` and its
    /// predecessor).
    pub fn lcp(&self) -> &[usize] {
        &self.lcp
    }

    /// Number of tokens in the sorted index.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of bytes across all indexed tokens.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of bytes that actually need to be matched when tokens are
    /// checked in sorted order with prefix-sharing rollback: for each token,
    /// only the bytes after the common prefix with its predecessor.
    pub fn chars_to_check(&self) -> usize {
        self.total_bytes - self.lcp.iter().sum::<usize>()
    }

    /// Fraction of characters that still need checking
    /// (`chars_to_check / total_bytes`), the statistic reported in §3.3.
    pub fn check_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.chars_to_check() as f64 / self.total_bytes as f64
    }

    /// Length of the longest indexed token.
    pub fn max_token_len(&self) -> usize {
        self.max_token_len
    }

    /// The longest non-special token whose byte string is a prefix of
    /// `bytes`, or `None` when no token matches even the first byte.
    ///
    /// Used by jump-forward decoding to re-tokenize grammar-forced text
    /// against the real vocabulary: all prefixes of `bytes` are nested, so
    /// the longest one can be found with one binary search per candidate
    /// length, longest first — `O(max_token_len · log |vocab|)`.
    ///
    /// `vocab` must be the vocabulary this index was built from.
    pub fn longest_prefix_token(&self, vocab: &Vocabulary, bytes: &[u8]) -> Option<TokenId> {
        let max_len = self.max_token_len.min(bytes.len());
        for len in (1..=max_len).rev() {
            let prefix = &bytes[..len];
            if let Ok(pos) = self
                .ids
                .binary_search_by(|id| vocab.token_bytes(*id).cmp(prefix))
            {
                return Some(self.ids[pos]);
            }
        }
        None
    }

    /// Greedy longest-prefix token cover of `bytes`: repeatedly take the
    /// longest token matching the remaining bytes (falling back to the
    /// single-byte tokens of a byte-fallback vocabulary). Returns the cover
    /// and the number of bytes it tiles; covering stops early at the first
    /// position where no token (not even a one-byte one) matches, so the
    /// returned tokens always concatenate to exactly `bytes[..covered]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use xg_tokenizer::{SortedVocabulary, Vocabulary};
    ///
    /// let vocab = Vocabulary::from_tokens(
    ///     vec![b"a".to_vec(), b"b".to_vec(), b"ab".to_vec()], None);
    /// let sorted = SortedVocabulary::new(&vocab);
    /// let (tokens, covered) = sorted.longest_prefix_cover(&vocab, b"abba");
    /// assert_eq!(covered, 4);
    /// let bytes: Vec<u8> = tokens
    ///     .iter()
    ///     .flat_map(|t| vocab.token_bytes(*t).to_vec())
    ///     .collect();
    /// assert_eq!(bytes, b"abba");
    /// ```
    pub fn longest_prefix_cover(&self, vocab: &Vocabulary, bytes: &[u8]) -> (Vec<TokenId>, usize) {
        let mut tokens = Vec::new();
        let mut covered = 0;
        while covered < bytes.len() {
            let Some(token) = self.longest_prefix_token(vocab, &bytes[covered..]) else {
                break;
            };
            covered += vocab.token_bytes(token).len();
            tokens.push(token);
        }
        (tokens, covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcp_matches_manual_computation() {
        let vocab = Vocabulary::from_tokens(
            vec![
                b"read".to_vec(),
                b"ready".to_vec(),
                b"reader".to_vec(),
                b"zebra".to_vec(),
                b"apple".to_vec(),
            ],
            None,
        );
        let sorted = SortedVocabulary::new(&vocab);
        // Sorted order: apple, read, reader, ready, zebra.
        // LCP(reader, read) = 4, LCP(ready, reader) = 4.
        assert_eq!(sorted.lcp(), &[0, 0, 4, 4, 0]);
        assert_eq!(sorted.total_bytes(), 4 + 5 + 6 + 5 + 5);
        assert_eq!(sorted.chars_to_check(), sorted.total_bytes() - 8);
    }

    #[test]
    fn check_fraction_is_below_one_for_prefix_heavy_vocab() {
        let tokens: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("common_prefix_{i:03}").into_bytes())
            .collect();
        let vocab = Vocabulary::from_tokens(tokens, None);
        let sorted = SortedVocabulary::new(&vocab);
        assert!(sorted.check_fraction() < 0.5);
        assert!(sorted.check_fraction() > 0.0);
    }

    #[test]
    fn empty_vocabulary_is_handled() {
        let vocab = Vocabulary::from_tokens(vec![], None);
        let sorted = SortedVocabulary::new(&vocab);
        assert!(sorted.is_empty());
        assert_eq!(sorted.check_fraction(), 0.0);
        assert_eq!(sorted.max_token_len(), 0);
        assert_eq!(sorted.longest_prefix_token(&vocab, b"abc"), None);
    }

    #[test]
    fn longest_prefix_token_prefers_the_longest_match() {
        let vocab = Vocabulary::from_tokens(
            vec![
                b"</s>".to_vec(),
                b"r".to_vec(),
                b"re".to_vec(),
                b"read".to_vec(),
                b"reader".to_vec(),
                b"x".to_vec(),
            ],
            Some(0),
        );
        let sorted = SortedVocabulary::new(&vocab);
        let longest = |bytes: &[u8]| {
            sorted
                .longest_prefix_token(&vocab, bytes)
                .map(|t| vocab.token_bytes(t).to_vec())
        };
        assert_eq!(longest(b"readers"), Some(b"reader".to_vec()));
        assert_eq!(longest(b"reads"), Some(b"read".to_vec()));
        assert_eq!(longest(b"rex"), Some(b"re".to_vec()));
        assert_eq!(longest(b"rx"), Some(b"r".to_vec()));
        assert_eq!(longest(b"zzz"), None);
        // Special tokens never participate, even when their bytes match.
        assert_eq!(longest(b"</s>"), None);
    }

    #[test]
    fn prefix_cover_tiles_exactly_and_stops_at_gaps() {
        let vocab =
            Vocabulary::from_tokens(vec![b"ab".to_vec(), b"a".to_vec(), b"abc".to_vec()], None);
        let sorted = SortedVocabulary::new(&vocab);
        let (tokens, covered) = sorted.longest_prefix_cover(&vocab, b"abcaba");
        assert_eq!(covered, 6);
        let tiled: Vec<u8> = tokens
            .iter()
            .flat_map(|t| vocab.token_bytes(*t).to_vec())
            .collect();
        assert_eq!(tiled, b"abcaba");
        // `z` has no token: the cover stops at the gap.
        let (tokens, covered) = sorted.longest_prefix_cover(&vocab, b"abzab");
        assert_eq!(covered, 2);
        assert_eq!(tokens.len(), 1);
    }

    #[test]
    fn prefix_cover_matches_brute_force_on_a_synthetic_vocabulary() {
        let vocab = crate::test_vocabulary(800);
        let sorted = SortedVocabulary::new(&vocab);
        for bytes in [
            &br#"{"name": "alice", "age": 30}"#[..],
            b"the quick brown fox",
            "unicode: héllo 🎉 done".as_bytes(),
        ] {
            let (tokens, covered) = sorted.longest_prefix_cover(&vocab, bytes);
            assert_eq!(covered, bytes.len(), "byte fallback makes covers total");
            let mut cursor = 0;
            for token in tokens {
                let got = vocab.token_bytes(token);
                // Brute force: no non-special token matching at `cursor` is
                // longer than the chosen one.
                let best = vocab
                    .iter()
                    .filter(|(id, t)| !vocab.is_special(*id) && bytes[cursor..].starts_with(t))
                    .map(|(_, t)| t.len())
                    .max()
                    .unwrap();
                assert_eq!(got.len(), best, "not the longest match at {cursor}");
                assert!(bytes[cursor..].starts_with(got));
                cursor += got.len();
            }
        }
    }
}
