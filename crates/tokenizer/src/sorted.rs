//! Lexicographically sorted view of a vocabulary with shared-prefix
//! information.
//!
//! The persistent execution stack (paper §3.3) checks tokens in
//! lexicographic order and rolls the automaton state back to the end of the
//! common prefix with the previously checked token, so the characters of
//! shared prefixes are only ever matched once. This module precomputes that
//! ordering and the prefix lengths, and exposes the "fraction of characters
//! that still need checking" statistic the paper reports (≈30 % for the
//! Llama-3.1 vocabulary).

use crate::vocab::{TokenId, Vocabulary};

/// A sorted token index with longest-common-prefix information.
#[derive(Debug, Clone)]
pub struct SortedVocabulary {
    /// Token ids in lexicographic byte order (special tokens excluded).
    ids: Vec<TokenId>,
    /// `lcp[i]` = length of the longest common prefix between token `ids[i]`
    /// and token `ids[i - 1]` (0 for the first token).
    lcp: Vec<usize>,
    /// Total bytes across the sorted tokens.
    total_bytes: usize,
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl SortedVocabulary {
    /// Builds the sorted index for a vocabulary.
    ///
    /// # Examples
    ///
    /// ```
    /// use xg_tokenizer::{SortedVocabulary, Vocabulary};
    ///
    /// let vocab = Vocabulary::from_tokens(
    ///     vec![b"read".to_vec(), b"reader".to_vec(), b"ready".to_vec()], None);
    /// let sorted = SortedVocabulary::new(&vocab);
    /// // "reader" and "ready" share the prefix "read"/"reade" with their
    /// // predecessors, so most characters are skipped.
    /// assert!(sorted.chars_to_check() < sorted.total_bytes());
    /// ```
    pub fn new(vocab: &Vocabulary) -> Self {
        let ids = vocab.sorted_token_ids();
        let mut lcp = Vec::with_capacity(ids.len());
        let mut total_bytes = 0;
        for (i, id) in ids.iter().enumerate() {
            let bytes = vocab.token_bytes(*id);
            total_bytes += bytes.len();
            if i == 0 {
                lcp.push(0);
            } else {
                lcp.push(common_prefix_len(bytes, vocab.token_bytes(ids[i - 1])));
            }
        }
        SortedVocabulary {
            ids,
            lcp,
            total_bytes,
        }
    }

    /// Sorted token ids.
    pub fn ids(&self) -> &[TokenId] {
        &self.ids
    }

    /// Longest-common-prefix lengths (`lcp()[i]` refers to `ids()[i]` and its
    /// predecessor).
    pub fn lcp(&self) -> &[usize] {
        &self.lcp
    }

    /// Number of tokens in the sorted index.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of bytes across all indexed tokens.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of bytes that actually need to be matched when tokens are
    /// checked in sorted order with prefix-sharing rollback: for each token,
    /// only the bytes after the common prefix with its predecessor.
    pub fn chars_to_check(&self) -> usize {
        self.total_bytes - self.lcp.iter().sum::<usize>()
    }

    /// Fraction of characters that still need checking
    /// (`chars_to_check / total_bytes`), the statistic reported in §3.3.
    pub fn check_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.chars_to_check() as f64 / self.total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcp_matches_manual_computation() {
        let vocab = Vocabulary::from_tokens(
            vec![
                b"read".to_vec(),
                b"ready".to_vec(),
                b"reader".to_vec(),
                b"zebra".to_vec(),
                b"apple".to_vec(),
            ],
            None,
        );
        let sorted = SortedVocabulary::new(&vocab);
        // Sorted order: apple, read, reader, ready, zebra.
        // LCP(reader, read) = 4, LCP(ready, reader) = 4.
        assert_eq!(sorted.lcp(), &[0, 0, 4, 4, 0]);
        assert_eq!(sorted.total_bytes(), 4 + 5 + 6 + 5 + 5);
        assert_eq!(sorted.chars_to_check(), sorted.total_bytes() - 8);
    }

    #[test]
    fn check_fraction_is_below_one_for_prefix_heavy_vocab() {
        let tokens: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("common_prefix_{i:03}").into_bytes())
            .collect();
        let vocab = Vocabulary::from_tokens(tokens, None);
        let sorted = SortedVocabulary::new(&vocab);
        assert!(sorted.check_fraction() < 0.5);
        assert!(sorted.check_fraction() > 0.0);
    }

    #[test]
    fn empty_vocabulary_is_handled() {
        let vocab = Vocabulary::from_tokens(vec![], None);
        let sorted = SortedVocabulary::new(&vocab);
        assert!(sorted.is_empty());
        assert_eq!(sorted.check_fraction(), 0.0);
    }
}
