//! Tokenizer / vocabulary substrate for the XGrammar reproduction.
//!
//! The grammar engine validates *token byte strings* against a pushdown
//! automaton; this crate provides those byte strings:
//!
//! * [`Vocabulary`] — the token table (byte strings + special tokens),
//! * [`BpeModel`] — a from-scratch byte-level BPE trainer/encoder for
//!   corpus-driven vocabularies,
//! * [`synthetic_vocabulary`] — deterministic generation of large,
//!   realistic vocabularies (the Llama-3.1 substitution documented in
//!   DESIGN.md),
//! * [`SortedVocabulary`] — lexicographically sorted index with shared-prefix
//!   statistics, used by the mask-cache preprocessing of `xg-core`.
//!
//! # Examples
//!
//! ```
//! use xg_tokenizer::{test_vocabulary, SortedVocabulary};
//!
//! let vocab = test_vocabulary(2000);
//! let sorted = SortedVocabulary::new(&vocab);
//! assert_eq!(sorted.len(), vocab.len() - 2); // specials excluded
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bpe;
mod sorted;
mod synthetic;
mod vocab;

pub use bpe::{BpeModel, BpeTrainConfig};
pub use sorted::SortedVocabulary;
pub use synthetic::{
    frontier_256k_vocabulary, llama31_like_vocabulary, synthetic_vocabulary, test_vocabulary,
    SyntheticVocabConfig,
};
pub use vocab::{SpecialToken, TokenId, Vocabulary};
