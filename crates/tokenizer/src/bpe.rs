//! A byte-level BPE (byte-pair encoding) trainer and encoder.
//!
//! The paper evaluates on the Llama-3.1 tokenizer (128k BPE merges). That
//! tokenizer cannot be redistributed here, so this module provides the
//! substitution documented in DESIGN.md: a from-scratch byte-level BPE
//! implementation that can be trained on the synthetic corpora of
//! `xg-datasets`. The resulting vocabularies exhibit the properties the
//! grammar engine cares about — multi-byte tokens, tokens straddling
//! grammar-element boundaries (`":`, `"},` …), long shared prefixes — at
//! configurable vocabulary sizes.

use std::collections::HashMap;

use crate::vocab::{SpecialToken, TokenId, Vocabulary};

/// A trained BPE model: the ordered merge list plus the derived vocabulary.
#[derive(Debug, Clone)]
pub struct BpeModel {
    /// Ordered merges; earlier merges have higher priority during encoding.
    merges: Vec<(Vec<u8>, Vec<u8>)>,
    /// Token byte strings: 256 byte tokens first, then one per merge, then
    /// special tokens.
    tokens: Vec<Vec<u8>>,
    /// Index of `</s>`.
    eos_index: usize,
    /// Lookup from token bytes to id (only for merge results and byte
    /// tokens).
    token_index: HashMap<Vec<u8>, u32>,
    /// Merge priority lookup: (left, right) -> rank.
    merge_ranks: HashMap<(Vec<u8>, Vec<u8>), usize>,
}

/// Configuration for BPE training.
#[derive(Debug, Clone)]
pub struct BpeTrainConfig {
    /// Target vocabulary size, *including* the 256 byte tokens and the
    /// special tokens.
    pub vocab_size: usize,
    /// Minimum pair frequency to keep merging.
    pub min_pair_frequency: usize,
}

impl Default for BpeTrainConfig {
    fn default() -> Self {
        BpeTrainConfig {
            vocab_size: 8192,
            min_pair_frequency: 2,
        }
    }
}

impl BpeModel {
    /// Trains a byte-level BPE model on `corpus`.
    ///
    /// Words are whitespace-delimited; the whitespace character is attached
    /// to the front of the following word (GPT-2 style), so common tokens
    /// such as `" the"` emerge naturally.
    ///
    /// # Examples
    ///
    /// ```
    /// use xg_tokenizer::{BpeModel, BpeTrainConfig};
    ///
    /// let corpus = "the cat sat on the mat. the cat ate.".repeat(50);
    /// let model = BpeModel::train(&corpus, &BpeTrainConfig { vocab_size: 300, ..Default::default() });
    /// let ids = model.encode("the cat");
    /// assert_eq!(model.vocabulary().decode(&ids), b"the cat");
    /// ```
    pub fn train(corpus: &str, config: &BpeTrainConfig) -> BpeModel {
        // 1. Split the corpus into words with attached leading whitespace and
        //    count frequencies.
        let mut word_counts: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut current = Vec::new();
        let mut pending_ws: Vec<u8> = Vec::new();
        for &b in corpus.as_bytes() {
            if b == b' ' || b == b'\n' || b == b'\t' {
                if !current.is_empty() {
                    *word_counts.entry(current.clone()).or_insert(0) += 1;
                    current.clear();
                }
                pending_ws.push(b);
            } else {
                if !pending_ws.is_empty() {
                    current.extend_from_slice(&pending_ws);
                    pending_ws.clear();
                }
                current.push(b);
            }
        }
        if !current.is_empty() {
            *word_counts.entry(current).or_insert(0) += 1;
        }

        // 2. Represent each word as a sequence of single-byte symbols.
        let mut words: Vec<(Vec<Vec<u8>>, usize)> = word_counts
            .into_iter()
            .map(|(w, c)| (w.iter().map(|&b| vec![b]).collect(), c))
            .collect();
        // Deterministic order regardless of hash map iteration order.
        words.sort();

        // 3. Iteratively merge the most frequent adjacent pair.
        let num_specials = 2; // <s>, </s>
        let max_merges = config.vocab_size.saturating_sub(256 + num_specials);
        let mut merges: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for _ in 0..max_merges {
            let mut pair_counts: HashMap<(Vec<u8>, Vec<u8>), usize> = HashMap::new();
            for (symbols, count) in &words {
                for pair in symbols.windows(2) {
                    *pair_counts
                        .entry((pair[0].clone(), pair[1].clone()))
                        .or_insert(0) += count;
                }
            }
            let best = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), count)) = best else {
                break;
            };
            if count < config.min_pair_frequency {
                break;
            }
            // Apply the merge to every word.
            let merged: Vec<u8> = left.iter().chain(right.iter()).copied().collect();
            for (symbols, _) in &mut words {
                let mut i = 0;
                while i + 1 < symbols.len() {
                    if symbols[i] == left && symbols[i + 1] == right {
                        symbols[i] = merged.clone();
                        symbols.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            merges.push((left, right));
        }

        Self::from_merges(merges)
    }

    /// Builds a model from an explicit merge list (used by tests and by
    /// synthetic vocabulary construction).
    pub fn from_merges(merges: Vec<(Vec<u8>, Vec<u8>)>) -> BpeModel {
        let mut tokens: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        for (l, r) in &merges {
            let merged: Vec<u8> = l.iter().chain(r.iter()).copied().collect();
            tokens.push(merged);
        }
        tokens.push(b"<s>".to_vec());
        tokens.push(b"</s>".to_vec());
        let eos_index = tokens.len() - 1;
        let token_index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        let merge_ranks = merges
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i))
            .collect();
        BpeModel {
            merges,
            tokens,
            eos_index,
            token_index,
            merge_ranks,
        }
    }

    /// Number of merges in the model.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Encodes text into token ids by greedily applying merges in rank order
    /// (standard BPE encoding).
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut symbols: Vec<Vec<u8>> = text.as_bytes().iter().map(|&b| vec![b]).collect();
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for i in 0..symbols.len().saturating_sub(1) {
                let key = (symbols[i].clone(), symbols[i + 1].clone());
                if let Some(&rank) = self.merge_ranks.get(&key) {
                    if best.map(|(r, _)| rank < r).unwrap_or(true) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, pos)) = best else { break };
            let right = symbols.remove(pos + 1);
            symbols[pos].extend_from_slice(&right);
        }
        symbols
            .into_iter()
            .map(|s| {
                TokenId(
                    *self
                        .token_index
                        .get(&s)
                        .expect("every byte token exists in the vocabulary"),
                )
            })
            .collect()
    }

    /// Returns the vocabulary derived from the model (byte tokens + merge
    /// results + special tokens).
    pub fn vocabulary(&self) -> Vocabulary {
        let mut v = Vocabulary::from_tokens(self.tokens.clone(), Some(self.eos_index));
        v.add_special(TokenId(self.eos_index as u32 - 1), SpecialToken::Bos);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> BpeModel {
        let corpus = r#"{"name": "alice", "age": 30} {"name": "bob", "age": 25} "#.repeat(40);
        BpeModel::train(
            &corpus,
            &BpeTrainConfig {
                vocab_size: 400,
                min_pair_frequency: 2,
            },
        )
    }

    #[test]
    fn training_produces_merges_and_multibyte_tokens() {
        let model = small_model();
        assert!(model.merge_count() > 20);
        let vocab = model.vocabulary();
        // Some learned token should span a grammar-element boundary, e.g.
        // contain a quote next to a punctuation character.
        let has_boundary_token = vocab.iter().any(|(_, t)| {
            t.len() >= 2 && t.contains(&b'"') && (t.contains(&b':') || t.contains(&b','))
        });
        assert!(
            has_boundary_token,
            "expected tokens spanning grammar boundaries"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let model = small_model();
        let vocab = model.vocabulary();
        for text in [
            r#"{"name": "carol", "age": 41}"#,
            "plain words with spaces",
            "unicode: héllo 🎉",
        ] {
            let ids = model.encode(text);
            assert_eq!(vocab.decode(&ids), text.as_bytes());
        }
    }

    #[test]
    fn encoding_uses_merged_tokens() {
        let model = small_model();
        let ids = model.encode(r#""name": "x""#);
        // Far fewer tokens than bytes once merges apply.
        assert!(ids.len() < r#""name": "x""#.len());
    }

    #[test]
    fn from_merges_contains_byte_fallbacks_and_specials() {
        let model = BpeModel::from_merges(vec![(b"a".to_vec(), b"b".to_vec())]);
        let vocab = model.vocabulary();
        assert_eq!(vocab.len(), 256 + 1 + 2);
        assert!(vocab.eos().is_some());
        // Byte fallback round-trips arbitrary bytes.
        let ids = model.encode("ab\u{00e9}");
        assert_eq!(vocab.decode(&ids), "ab\u{00e9}".as_bytes());
    }

    #[test]
    fn vocab_size_limit_is_respected() {
        let corpus = "aaa bbb ccc ddd ".repeat(100);
        let model = BpeModel::train(
            &corpus,
            &BpeTrainConfig {
                vocab_size: 300,
                min_pair_frequency: 2,
            },
        );
        assert!(model.vocabulary().len() <= 300);
    }
}
