//! Synthetic vocabulary generation.
//!
//! The paper's evaluation uses the Llama-3.1 tokenizer (≈128k tokens) and the
//! Qwen-2.5 tokenizer. Those vocabularies cannot be shipped here, so this
//! module generates vocabularies of arbitrary size that reproduce the
//! *properties* the grammar engine is sensitive to:
//!
//! * 256 single-byte fallback tokens (so any byte string is representable),
//! * structural tokens that straddle grammar-element boundaries
//!   (`"},`, `":`, `", "`, `/>` …) — these are what make boundary handling
//!   and context-dependent tokens interesting,
//! * whitespace runs and newline/indentation tokens,
//! * numeric tokens,
//! * a long tail of English-like subwords (with leading-space and
//!   capitalized variants) sharing long prefixes,
//! * multi-byte UTF-8 tokens (accented Latin, CJK, emoji), including tokens
//!   that are *fragments* of a UTF-8 sequence.
//!
//! Generation is deterministic for a given `(size, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::vocab::{SpecialToken, TokenId, Vocabulary};

/// Configuration for synthetic vocabulary generation.
#[derive(Debug, Clone)]
pub struct SyntheticVocabConfig {
    /// Total number of tokens to generate (including byte fallbacks and
    /// special tokens).
    pub size: usize,
    /// RNG seed; the same seed and size always produce the same vocabulary.
    pub seed: u64,
}

impl Default for SyntheticVocabConfig {
    fn default() -> Self {
        SyntheticVocabConfig {
            size: 32_000,
            seed: 0x5eed,
        }
    }
}

/// Structural tokens common in JSON / XML / code oriented tokenizers. Many of
/// them intentionally cross grammar-element boundaries.
const STRUCTURAL_TOKENS: &[&str] = &[
    "{", "}", "[", "]", "(", ")", ",", ":", ";", ".", "\"", "'", "\\", "/", "<", ">", "=", "+",
    "-", "*", "&", "|", "!", "?", "#", "@", "%", "^", "~", "`", "{\"", "\"}", "\":", "\": ", "\",",
    "\", ", "\", \"", "\":\"", "\": \"", "\"},", "\"}", "},", "}]", "]}", "}}", "{{", "[{", "[[",
    "]]", "\"]", "[\"", "\":[", "\": [", "\":{", "\": {", "},{", "}, {", "\"\"", "\"\n", "{}",
    "[]", "null", "true", "false", "null,", "true,", "false,", "0,", "1,", "\"0\"", "\"1\"", "</",
    "/>", "</s", "><", "\" />", "\">", "=\"", "<!--", "-->", "<?xml", "?>", "():", "):", "()",
    "():\n", "def ", "return ", "if ", "else:", "elif ", "for ", "while ", "in ", "not ", "and ",
    "or ", "import ", "from ", " = ", " == ", " != ", " <= ", " >= ", " + ", " - ", " * ", " / ",
    "**", "//", " #", "\n\n", "\n", "\t", "    ", "        ", " ", "  ", "   ", "\r\n", ", ", ". ",
    ": ", "; ", " (", ") ", " [", "] ", " {", "} ",
];

/// Common English-ish word stems used to build the subword tail.
const WORD_STEMS: &[&str] = &[
    "the",
    "and",
    "for",
    "with",
    "that",
    "this",
    "from",
    "have",
    "not",
    "are",
    "was",
    "will",
    "can",
    "all",
    "one",
    "out",
    "use",
    "get",
    "set",
    "new",
    "name",
    "type",
    "value",
    "key",
    "data",
    "item",
    "list",
    "text",
    "time",
    "date",
    "user",
    "file",
    "code",
    "test",
    "func",
    "tion",
    "ment",
    "ing",
    "ed",
    "er",
    "est",
    "ly",
    "ness",
    "able",
    "ible",
    "less",
    "ful",
    "pre",
    "post",
    "anti",
    "auto",
    "inter",
    "intra",
    "over",
    "under",
    "re",
    "un",
    "dis",
    "mis",
    "read",
    "write",
    "call",
    "send",
    "recv",
    "open",
    "close",
    "start",
    "stop",
    "run",
    "build",
    "make",
    "take",
    "give",
    "find",
    "search",
    "query",
    "index",
    "count",
    "total",
    "result",
    "error",
    "warn",
    "info",
    "debug",
    "trace",
    "json",
    "xml",
    "html",
    "http",
    "https",
    "url",
    "uri",
    "id",
    "uuid",
    "hash",
    "token",
    "model",
    "llama",
    "gpt",
    "prompt",
    "response",
    "request",
    "schema",
    "object",
    "array",
    "string",
    "number",
    "integer",
    "boolean",
    "person",
    "address",
    "city",
    "street",
    "country",
    "email",
    "phone",
    "first",
    "last",
    "middle",
    "temperature",
    "weather",
    "location",
    "unit",
    "celsius",
    "fahrenheit",
    "currency",
    "price",
    "amount",
    "quantity",
    "product",
    "order",
    "status",
    "active",
    "enabled",
    "disabled",
    "grammar",
    "parser",
    "stack",
    "state",
    "node",
    "edge",
    "rule",
    "mask",
    "cache",
    "engine",
];

/// Multi-byte seed characters: accented Latin, Greek, Cyrillic, CJK, emoji.
const UNICODE_SEEDS: &[char] = &[
    'é', 'è', 'ü', 'ö', 'ñ', 'ç', 'ß', 'å', 'ø', 'α', 'β', 'γ', 'δ', 'λ', 'π', 'Ω', 'д', 'ж', 'и',
    'я', '中', '文', '语', '言', '模', '型', '日', '本', '語', '한', '국', '어', '🎉', '🚀', '😀',
    '🤖', '✨', '→', '≤', '≥', '•', '–', '—',
];

/// Generates a deterministic synthetic vocabulary.
///
/// # Examples
///
/// ```
/// use xg_tokenizer::{synthetic_vocabulary, SyntheticVocabConfig};
///
/// let vocab = synthetic_vocabulary(&SyntheticVocabConfig { size: 2000, seed: 7 });
/// assert_eq!(vocab.len(), 2000);
/// assert!(vocab.eos().is_some());
/// ```
pub fn synthetic_vocabulary(config: &SyntheticVocabConfig) -> Vocabulary {
    assert!(
        config.size >= 512,
        "synthetic vocabularies need at least 512 tokens"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut tokens: Vec<Vec<u8>> = Vec::with_capacity(config.size);
    let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();

    let push = |tokens: &mut Vec<Vec<u8>>,
                seen: &mut std::collections::HashSet<Vec<u8>>,
                t: Vec<u8>|
     -> bool {
        if t.is_empty() || seen.contains(&t) {
            return false;
        }
        seen.insert(t.clone());
        tokens.push(t);
        true
    };

    // 1. Special tokens first (ids 0 and 1).
    push(&mut tokens, &mut seen, b"<|begin_of_text|>".to_vec());
    push(&mut tokens, &mut seen, b"<|end_of_text|>".to_vec());

    // 2. Byte fallbacks.
    for b in 0u16..256 {
        push(&mut tokens, &mut seen, vec![b as u8]);
    }

    // 3. Structural tokens.
    for s in STRUCTURAL_TOKENS {
        if tokens.len() >= config.size {
            break;
        }
        push(&mut tokens, &mut seen, s.as_bytes().to_vec());
    }

    // 4. Numeric tokens: 0-999, years, decimals.
    for n in 0..1000u32 {
        if tokens.len() >= config.size {
            break;
        }
        push(&mut tokens, &mut seen, n.to_string().into_bytes());
    }

    // 5. Unicode tokens, including deliberate UTF-8 fragments (placed before
    //    the open-ended subword tail so they are present at every size).
    for &c in UNICODE_SEEDS {
        if tokens.len() + 2 >= config.size {
            break;
        }
        let mut buf = [0u8; 4];
        let enc = c.encode_utf8(&mut buf).as_bytes().to_vec();
        push(&mut tokens, &mut seen, enc.clone());
        if enc.len() > 2 {
            // A prefix fragment of the encoding (sub-UTF-8 token).
            push(&mut tokens, &mut seen, enc[..enc.len() - 1].to_vec());
        }
    }

    // 6. Word stems with variants (leading space, capitalized, quoted,
    //    suffixed with punctuation) — the bulk of a realistic vocabulary.
    let mut stem_variants: Vec<Vec<u8>> = Vec::new();
    for stem in WORD_STEMS {
        let capital = {
            let mut c = stem.to_string();
            if let Some(first) = c.get_mut(0..1) {
                let upper = first.to_uppercase();
                c.replace_range(0..1, &upper);
            }
            c
        };
        for v in [
            stem.to_string(),
            format!(" {stem}"),
            capital.clone(),
            format!(" {capital}"),
            format!("{stem}\""),
            format!("\"{stem}"),
            format!("\"{stem}\""),
            format!(" \"{stem}\""),
            format!("{stem}_"),
            format!("_{stem}"),
            format!("{stem}s"),
            format!(" {stem}s"),
            format!("{stem}:"),
            format!("{stem},"),
            format!("{stem}."),
            format!("{stem}="),
            format!("{stem}("),
        ] {
            stem_variants.push(v.into_bytes());
        }
    }
    for v in stem_variants {
        if tokens.len() >= config.size {
            break;
        }
        push(&mut tokens, &mut seen, v);
    }

    // 7. Fill the rest with generated compound subwords: stem + stem,
    //    stem + suffix digits, with leading space sometimes. Long shared
    //    prefixes arise naturally.
    let mut consecutive_failures = 0usize;
    while tokens.len() < config.size {
        if consecutive_failures > 10_000 {
            // Candidate space exhausted (only possible for very large sizes):
            // fall back to deterministic numbered tokens.
            let filler = format!("tok_{}", tokens.len()).into_bytes();
            push(&mut tokens, &mut seen, filler);
            continue;
        }
        let a = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
        let style = rng.gen_range(0..6u32);
        let candidate: String = match style {
            0 => {
                let b = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
                format!("{a}{b}")
            }
            1 => {
                let b = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
                format!(" {a}{b}")
            }
            2 => format!("{a}{}", rng.gen_range(0..100)),
            3 => {
                let b = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
                format!("{a}_{b}")
            }
            4 => {
                let b = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
                let c = WORD_STEMS[rng.gen_range(0..WORD_STEMS.len())];
                format!("{a}{b}{c}")
            }
            _ => {
                let u = UNICODE_SEEDS[rng.gen_range(0..UNICODE_SEEDS.len())];
                format!("{a}{u}")
            }
        };
        if push(&mut tokens, &mut seen, candidate.into_bytes()) {
            consecutive_failures = 0;
        } else {
            consecutive_failures += 1;
        }
    }

    let mut vocab = Vocabulary::from_tokens(tokens, Some(1));
    vocab.add_special(TokenId(0), SpecialToken::Bos);
    vocab
}

/// Convenience constructor for the "Llama-3.1-like" vocabulary used across
/// the benchmark harness (128k tokens, fixed seed).
pub fn llama31_like_vocabulary() -> Vocabulary {
    synthetic_vocabulary(&SyntheticVocabConfig {
        size: 128_000,
        seed: 0x11a3a31,
    })
}

/// Convenience constructor for a frontier-scale vocabulary (256k tokens,
/// fixed seed) — the size class of Gemma-2 / Llama-4-era tokenizers, used by
/// the mask-throughput experiments to probe how mask generation scales past
/// the paper's 128k evaluation point. At this size the bulk of the
/// vocabulary is the compound-subword tail, so masks are dominated by huge
/// context-independent stretches — exactly the regime the bitmask word
/// kernels (as opposed to the trie walk) are built for.
pub fn frontier_256k_vocabulary() -> Vocabulary {
    synthetic_vocabulary(&SyntheticVocabConfig {
        size: 256_000,
        seed: 0x25_6000,
    })
}

/// Convenience constructor for a small vocabulary suitable for unit tests.
pub fn test_vocabulary(size: usize) -> Vocabulary {
    synthetic_vocabulary(&SyntheticVocabConfig { size, seed: 0x7e57 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorted::SortedVocabulary;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_vocabulary(&SyntheticVocabConfig {
            size: 4000,
            seed: 1,
        });
        let b = synthetic_vocabulary(&SyntheticVocabConfig {
            size: 4000,
            seed: 1,
        });
        assert_eq!(a, b);
        let c = synthetic_vocabulary(&SyntheticVocabConfig {
            size: 4000,
            seed: 2,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn requested_size_is_exact_and_unique() {
        let v = synthetic_vocabulary(&SyntheticVocabConfig {
            size: 5000,
            seed: 3,
        });
        assert_eq!(v.len(), 5000);
        let mut set = std::collections::HashSet::new();
        for (_, t) in v.iter() {
            assert!(set.insert(t.to_vec()), "duplicate token {:?}", t);
        }
    }

    #[test]
    fn contains_byte_fallbacks_and_boundary_tokens() {
        let v = test_vocabulary(3000);
        // Every byte value appears as a single-byte token.
        for b in 0u16..256 {
            assert!(v.iter().any(|(_, t)| t == [b as u8]));
        }
        // Boundary-crossing structural tokens exist.
        assert!(v.iter().any(|(_, t)| t == b"\": \""));
        assert!(v.iter().any(|(_, t)| t == b"\"},"));
    }

    #[test]
    fn has_sub_utf8_fragment_tokens() {
        let v = test_vocabulary(3000);
        let has_fragment = v
            .iter()
            .any(|(id, t)| !v.is_special(id) && t.len() > 1 && std::str::from_utf8(t).is_err());
        assert!(
            has_fragment,
            "expected at least one non-UTF-8 fragment token"
        );
    }

    #[test]
    fn prefix_sharing_is_substantial() {
        let v = test_vocabulary(20_000);
        let sorted = SortedVocabulary::new(&v);
        // The paper reports ~30% for Llama-3.1; our synthetic vocabulary
        // should at least show clearly sub-linear checking.
        assert!(
            sorted.check_fraction() < 0.8,
            "fraction {}",
            sorted.check_fraction()
        );
    }

    #[test]
    fn frontier_vocabulary_is_frontier_scale() {
        let v = frontier_256k_vocabulary();
        assert_eq!(v.len(), 256_000);
        assert!(v.eos().is_some());
        // Byte fallbacks survive at every size, so any byte string stays
        // representable even at frontier scale.
        for b in 0u16..256 {
            assert!(v.iter().any(|(_, t)| t == [b as u8]));
        }
    }

    #[test]
    #[should_panic(expected = "at least 512")]
    fn too_small_size_panics() {
        let _ = synthetic_vocabulary(&SyntheticVocabConfig { size: 100, seed: 0 });
    }
}
