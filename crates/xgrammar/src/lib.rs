//! Facade crate for the XGrammar reproduction: a single dependency exposing
//! the full public API.
//!
//! The implementation lives in focused crates; this crate re-exports them so
//! downstream users can write `use xgrammar::{GrammarCompiler, GrammarMatcher}`
//! and not think about the workspace layout:
//!
//! * [`grammar`] — grammar AST, EBNF parser, JSON-Schema conversion,
//!   built-in grammars (`xg-grammar`),
//! * [`automata`] — byte-level FSA/PDA construction and optimizations
//!   (`xg-automata`),
//! * [`tokenizer`] — vocabularies, BPE training, synthetic vocabularies
//!   (`xg-tokenizer`),
//! * [`engine`] — the serving layer: [`engine::ServingEngine`] with
//!   overlapped execution, mixed-constraint lanes and engine-level
//!   jump-forward decoding ([`engine::JumpForwardPolicy`]) (`xg-engine`),
//! * the core engine types re-exported at the crate root (`xg-core`).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use xgrammar::{GrammarCompiler, GrammarMatcher, TokenBitmask};
//!
//! let vocab = Arc::new(xgrammar::tokenizer::test_vocabulary(1000));
//! let compiler = GrammarCompiler::new(Arc::clone(&vocab));
//! let compiled = compiler.compile_ebnf(r#"root ::= "yes" | "no""#, "root")?;
//! let mut matcher = GrammarMatcher::new(compiled);
//! let mut mask = TokenBitmask::new_all_rejected(vocab.len());
//! matcher.fill_next_token_bitmask(&mut mask);
//! assert!(mask.count_allowed() > 0);
//! # Ok::<(), xgrammar::GrammarError>(())
//! ```

#![warn(missing_docs)]

/// Grammar front end (re-export of `xg-grammar`).
pub mod grammar {
    pub use xg_grammar::*;
}

/// Automata substrate (re-export of `xg-automata`).
pub mod automata {
    pub use xg_automata::*;
}

/// Tokenizer / vocabulary substrate (re-export of `xg-tokenizer`).
pub mod tokenizer {
    pub use xg_tokenizer::*;
}

/// Serving engine: batched constrained decoding with overlapped execution
/// and jump-forward decoding (re-export of `xg-engine`).
pub mod engine {
    pub use xg_engine::*;
}

pub use xg_core::{
    AcceptError, CompiledGrammar, CompiledTagDispatch, CompiledTrigger, CompilerConfig,
    ConstraintFactory, ConstraintMatcher, ConstraintStats, DispatchMode, ForcedTokenRun,
    GrammarCache, GrammarCacheConfig, GrammarCacheKey, GrammarCacheStats, GrammarCompiler,
    GrammarLintReport, GrammarMatcher, LintMode, MaskCache, MaskCacheStats, MatcherPool,
    MatcherStats, NodeMaskEntry, PersistentStackTree, RollbackError, StackHandle,
    StructuralTagMatcher, TagDispatchCache, TagDispatchCacheConfig, TagDispatchCacheStats,
    TagDispatchStats, TokenBitmask, DEFAULT_MAX_ROLLBACK_TOKENS,
};
pub use xg_grammar::{
    analyze, builtin, json_schema_to_grammar, json_schema_to_grammar_with_options, parse_ebnf,
    regex_pattern_to_expr, ByteClass, Diagnostic, DiagnosticCode, DispatchDelta, Grammar,
    GrammarAnalysis, GrammarError, GrammarExpr, JsonSchemaOptions, SegmentExitPolicy, Severity,
    StructuralTag, TagContent, TagSpec, WhitespaceConfig, ANNOTATION_KEYWORDS, SUPPORTED_FORMATS,
    SUPPORTED_KEYWORDS,
};
pub use xg_tokenizer::{TokenId, Vocabulary};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let grammar = crate::parse_ebnf(r#"root ::= "x""#, "root").unwrap();
        assert_eq!(grammar.rules().len(), 1);
    }

    #[test]
    fn facade_exposes_schema_keyword_surface() {
        assert!(crate::SUPPORTED_KEYWORDS.contains(&"pattern"));
        assert!(crate::ANNOTATION_KEYWORDS.contains(&"$comment"));
        assert!(crate::SUPPORTED_FORMATS.contains(&"uuid"));
        assert_eq!(
            crate::WhitespaceConfig::default(),
            crate::WhitespaceConfig::Flexible
        );
        let options = crate::JsonSchemaOptions::default();
        assert!(!options.lenient);
        let expr = crate::regex_pattern_to_expr("^[a-z]{2}$", "#").unwrap();
        assert!(!matches!(expr, crate::GrammarExpr::Empty));
    }

    #[test]
    fn facade_exposes_structural_tags() {
        use std::sync::Arc;
        let vocab = Arc::new(crate::tokenizer::test_vocabulary(600));
        let compiler = crate::GrammarCompiler::new(Arc::clone(&vocab));
        let tag = crate::StructuralTag::new(vec![crate::TagSpec {
            begin: "<n>".into(),
            content: crate::TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let compiled = compiler.compile_tag_dispatch(&tag).unwrap();
        let mut matcher = crate::StructuralTagMatcher::new(compiled);
        assert_eq!(matcher.mode(), crate::DispatchMode::FreeText);
        matcher.accept_bytes(b"free text <n>42</n> more").unwrap();
        assert!(matcher.can_terminate());
    }

    #[test]
    fn facade_exposes_incremental_registry_updates() {
        use std::sync::Arc;
        let vocab = Arc::new(crate::tokenizer::test_vocabulary(600));
        let compiler = crate::GrammarCompiler::new(Arc::clone(&vocab))
            .with_dispatch_cache_config(crate::TagDispatchCacheConfig::default());
        let spec = |name: &str| crate::TagSpec {
            begin: format!("<{name}>"),
            content: crate::TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: format!("</{name}>"),
        };
        let base = compiler
            .compile_tag_dispatch(&crate::StructuralTag::new(vec![spec("a")]))
            .unwrap();
        let updated = compiler
            .update_tag_dispatch(&base, &crate::DispatchDelta::AddTag(spec("b")))
            .unwrap();
        assert_eq!(updated.triggers().len(), 2);
        assert!(compiler.has_cached_tag_dispatch_for(updated.source_tag()));
        let stats = compiler.dispatch_cache().stats();
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn facade_exposes_the_serving_engine_with_jump_forward() {
        use std::sync::Arc;
        use xg_baselines::XGrammarBackend;

        let vocab = Arc::new(crate::tokenizer::test_vocabulary(600));
        let backend = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let engine = crate::engine::ServingEngine::new(
            backend,
            crate::engine::ModelProfile::llama31_8b_h100().scaled(0.01),
            crate::engine::ExecutionMode::Serial,
        )
        .with_jump_forward(crate::engine::JumpForwardPolicy::Engine);
        assert_eq!(
            engine.jump_forward_policy(),
            crate::engine::JumpForwardPolicy::Engine
        );
        let req = crate::engine::EngineRequest {
            constraint: crate::engine::LaneConstraint::Grammar(
                crate::parse_ebnf(r#"root ::= "{\"ok\": " ("true" | "false") "}""#, "root")
                    .unwrap(),
            ),
            prompt_tokens: 4,
            reference: br#"{"ok": true}"#.to_vec(),
            max_tokens: 32,
            seed: 0,
        };
        let (results, metrics) = engine.run_batch(std::slice::from_ref(&req)).unwrap();
        assert_eq!(results[0].output, br#"{"ok": true}"#.to_vec());
        assert!(
            metrics.jump_forward_chars > 0,
            "the forced prefix is jumped"
        );
    }

    #[test]
    fn facade_exposes_serving_concurrency_layer() {
        use std::sync::Arc;
        let vocab = Arc::new(crate::tokenizer::test_vocabulary(600));
        let cache = Arc::new(crate::GrammarCache::new(
            crate::GrammarCacheConfig::default(),
        ));
        let compiler = crate::GrammarCompiler::with_cache(
            Arc::clone(&vocab),
            crate::CompilerConfig::default(),
            Arc::clone(&cache),
        );
        let compiled = compiler.compile_ebnf(r#"root ::= "x""#, "root").unwrap();
        assert_eq!(cache.stats().misses, 1);
        let pool = crate::MatcherPool::new(compiled);
        let matcher = pool.acquire();
        pool.release(matcher);
        assert_eq!(pool.created(), 1);
    }
}
