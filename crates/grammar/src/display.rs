//! Re-serialization of a [`Grammar`] back into EBNF text.
//!
//! Useful for debugging, golden tests and the `grammar_playground` example.

use std::fmt;

use crate::ast::{ByteClass, CharClass, Grammar, GrammarExpr};

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in self.rules() {
            write!(f, "{} ::= ", rule.name)?;
            write_expr(f, self, &rule.body, false)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

fn write_expr(
    f: &mut fmt::Formatter<'_>,
    g: &Grammar,
    expr: &GrammarExpr,
    parenthesize: bool,
) -> fmt::Result {
    match expr {
        GrammarExpr::Empty => write!(f, "\"\""),
        GrammarExpr::Literal(bytes) => write_literal(f, bytes),
        GrammarExpr::CharClass(cc) => write_class(f, cc),
        GrammarExpr::ByteClass(bc) => write_byte_class(f, bc),
        GrammarExpr::RuleRef(id) => write!(f, "{}", g.rule(*id).name),
        GrammarExpr::Sequence(items) => {
            if parenthesize {
                write!(f, "(")?;
            }
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write_expr(f, g, it, needs_parens(it))?;
            }
            if parenthesize {
                write!(f, ")")?;
            }
            Ok(())
        }
        GrammarExpr::Choice(items) => {
            if parenthesize {
                write!(f, "(")?;
            }
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_expr(f, g, it, matches!(it, GrammarExpr::Choice(_)))?;
            }
            if parenthesize {
                write!(f, ")")?;
            }
            Ok(())
        }
        GrammarExpr::Repeat { expr, min, max } => {
            write_expr(f, g, expr, needs_parens_for_repeat(expr))?;
            match (min, max) {
                (0, None) => write!(f, "*"),
                (1, None) => write!(f, "+"),
                (0, Some(1)) => write!(f, "?"),
                (m, None) => write!(f, "{{{m},}}"),
                (m, Some(x)) if m == x => write!(f, "{{{m}}}"),
                (m, Some(x)) => write!(f, "{{{m},{x}}}"),
            }
        }
    }
}

fn needs_parens(expr: &GrammarExpr) -> bool {
    matches!(expr, GrammarExpr::Choice(_))
}

fn needs_parens_for_repeat(expr: &GrammarExpr) -> bool {
    matches!(expr, GrammarExpr::Choice(_) | GrammarExpr::Sequence(_))
}

fn write_literal(f: &mut fmt::Formatter<'_>, bytes: &[u8]) -> fmt::Result {
    write!(f, "\"")?;
    match std::str::from_utf8(bytes) {
        Ok(s) => {
            for c in s.chars() {
                write_escaped_char(f, c, false)?;
            }
        }
        Err(_) => {
            for b in bytes {
                write!(f, "\\x{b:02x}")?;
            }
        }
    }
    write!(f, "\"")
}

fn write_class(f: &mut fmt::Formatter<'_>, cc: &CharClass) -> fmt::Result {
    write!(f, "[")?;
    if cc.negated {
        write!(f, "^")?;
    }
    for r in &cc.ranges {
        if r.start == r.end {
            write_escaped_char(f, r.start, true)?;
        } else {
            write_escaped_char(f, r.start, true)?;
            write!(f, "-")?;
            write_escaped_char(f, r.end, true)?;
        }
    }
    write!(f, "]")
}

/// Byte classes render in an ABNF-style `%x` notation (`%x00-ff`,
/// `%x00-08.0b-ff`), which cannot collide with any character-class rendering —
/// cache keys hash the displayed grammar, so a byte-level tail must never
/// print like its character-level sibling. The EBNF parser does not read this
/// notation back; byte classes are only constructed programmatically.
fn write_byte_class(f: &mut fmt::Formatter<'_>, bc: &ByteClass) -> fmt::Result {
    write!(f, "%x")?;
    for (i, (lo, hi)) in bc.normalized_ranges().iter().enumerate() {
        if i > 0 {
            write!(f, ".")?;
        }
        if lo == hi {
            write!(f, "{lo:02x}")?;
        } else {
            write!(f, "{lo:02x}-{hi:02x}")?;
        }
    }
    Ok(())
}

fn write_escaped_char(f: &mut fmt::Formatter<'_>, c: char, in_class: bool) -> fmt::Result {
    match c {
        '\n' => write!(f, "\\n"),
        '\r' => write!(f, "\\r"),
        '\t' => write!(f, "\\t"),
        '\\' => write!(f, "\\\\"),
        '"' if !in_class => write!(f, "\\\""),
        ']' if in_class => write!(f, "\\]"),
        '^' if in_class => write!(f, "\\^"),
        '-' if in_class => write!(f, "\\-"),
        c if (c as u32) < 0x20 => write!(f, "\\x{:02x}", c as u32),
        c => write!(f, "{c}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::ebnf::parse_ebnf;

    #[test]
    fn roundtrip_through_display() {
        let src = r#"
        root ::= "hi" ws name | "bye"
        ws ::= [ \t\n]*
        name ::= [a-zA-Z_] [a-zA-Z0-9_]{0,15}
        "#;
        let g1 = parse_ebnf(src, "root").unwrap();
        let text = g1.to_string();
        let g2 = parse_ebnf(&text, "root").unwrap();
        assert_eq!(g1.rules().len(), g2.rules().len());
        // A second round trip must be a fixed point.
        assert_eq!(text, g2.to_string());
    }

    #[test]
    fn display_escapes_special_chars() {
        let g = parse_ebnf(r#"root ::= "\"\n" [^"\\]"#, "root").unwrap();
        let text = g.to_string();
        assert!(text.contains("\\\""), "{text}");
        assert!(text.contains("\\n"), "{text}");
        let reparsed = parse_ebnf(&text, "root").unwrap();
        assert_eq!(reparsed.rules().len(), 1);
    }
}
