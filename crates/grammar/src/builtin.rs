//! Built-in grammars used throughout the paper's evaluation:
//! unconstrained JSON (ECMA-404), an XML subset and a Python DSL.

use crate::ast::Grammar;
use crate::ebnf::parse_ebnf;

/// EBNF text of the unconstrained JSON grammar (ECMA-404).
pub const JSON_EBNF: &str = r#"
# Unconstrained JSON per ECMA-404.
root    ::= ws value ws
value   ::= object | array | string | number | "true" | "false" | "null"
object  ::= "{" ws "}" | "{" ws member ("," ws member)* ws "}"
member  ::= string ws ":" ws value
array   ::= "[" ws "]" | "[" ws value ws ("," ws value ws)* "]"
string  ::= "\"" char* "\""
char    ::= [^"\\\x00-\x1f] | "\\" escape
escape  ::= ["\\/bfnrt] | "u" hex hex hex hex
hex     ::= [0-9a-fA-F]
number  ::= int frac? exp?
int     ::= "-"? ("0" | [1-9] [0-9]*)
frac    ::= "." [0-9]+
exp     ::= [eE] [-+]? [0-9]+
ws      ::= [ \t\n\r]*
"#;

/// EBNF text of the XML-subset grammar (based on XML 1.0, without DTDs,
/// processing instructions or namespace matching of open/close tags — tag
/// name agreement is not context-free).
pub const XML_EBNF: &str = r#"
# Simplified XML 1.0: prolog, nested elements, attributes, text and comments.
root       ::= prolog? ws element ws
prolog     ::= "<?xml" attrs ws "?>" ws
element    ::= open_tag content close_tag | self_tag
open_tag   ::= "<" name attrs ws ">"
close_tag  ::= "</" name ws ">"
self_tag   ::= "<" name attrs ws "/>"
content    ::= (element | text | comment)*
comment    ::= "<!--" [^-]* "-->"
attrs      ::= (sp attr)*
attr       ::= name ws "=" ws "\"" [^"<&]* "\""
name       ::= [a-zA-Z_] [a-zA-Z0-9_.:-]*
text       ::= [^<&]+
sp         ::= [ \t\n\r]+
ws         ::= [ \t\n\r]*
"#;

/// EBNF text of the Python DSL grammar. It covers the paper's scope: basic
/// control flow (`if`, `for`, `while`), the `str`/`int`/`float`/`bool` data
/// types, assignments, calls and expressions, and it ignores indentation
/// (newlines separate statements; blocks are flat).
pub const PYTHON_DSL_EBNF: &str = r#"
# A Python-like DSL: control flow and simple expressions, indentation ignored.
root        ::= ws stmt (stmt_sep stmt)* ws
stmt        ::= if_stmt | for_stmt | while_stmt | simple_stmt
stmt_sep    ::= ws_inline "\n" ws | ws_inline ";" ws
simple_stmt ::= assign | ret_stmt | expr_stmt | pass_stmt | break_stmt | continue_stmt
assign      ::= target ws_inline aug_op? "=" ws_inline expr
aug_op      ::= "+" | "-" | "*" | "/"
target      ::= ident ("." ident | "[" ws expr ws "]")*
ret_stmt    ::= "return" (ws_inline expr)?
pass_stmt   ::= "pass"
break_stmt  ::= "break"
continue_stmt ::= "continue"
expr_stmt   ::= expr
if_stmt     ::= "if" ws_req expr ws_inline ":" ws block (elif_part)* (else_part)?
elif_part   ::= "elif" ws_req expr ws_inline ":" ws block
else_part   ::= "else" ws_inline ":" ws block
for_stmt    ::= "for" ws_req ident ws_req "in" ws_req expr ws_inline ":" ws block
while_stmt  ::= "while" ws_req expr ws_inline ":" ws block
block       ::= simple_stmt (stmt_sep simple_stmt)*
expr        ::= or_expr
or_expr     ::= and_expr (ws_req "or" ws_req and_expr)*
and_expr    ::= not_expr (ws_req "and" ws_req not_expr)*
not_expr    ::= "not" ws_req not_expr | comparison
comparison  ::= arith (ws_inline comp_op ws_inline arith)*
comp_op     ::= "==" | "!=" | "<=" | ">=" | "<" | ">" | "in"
arith       ::= term (ws_inline add_op ws_inline term)*
add_op      ::= "+" | "-"
term        ::= factor (ws_inline mul_op ws_inline factor)*
mul_op      ::= "*" | "//" | "/" | "%"
factor      ::= "-" factor | power
power       ::= atom_trailer ("**" factor)?
atom_trailer ::= atom trailer*
trailer     ::= "(" ws arglist? ws ")" | "[" ws expr ws "]" | "." ident
arglist     ::= expr (ws "," ws expr)* (ws ",")?
atom        ::= ident | number | pystring | boolean | none | list_lit | dict_lit | tuple_lit
list_lit    ::= "[" ws "]" | "[" ws expr (ws "," ws expr)* ws "]"
dict_lit    ::= "{" ws "}" | "{" ws dict_item (ws "," ws dict_item)* ws "}"
dict_item   ::= expr ws ":" ws expr
tuple_lit   ::= "(" ws expr (ws "," ws expr)+ ws ")"
boolean     ::= "True" | "False"
none        ::= "None"
ident       ::= [a-zA-Z_] [a-zA-Z0-9_]*
number      ::= "-"? [0-9]+ ("." [0-9]+)? ([eE] [-+]? [0-9]+)?
pystring    ::= "\"" [^"\\\n]* "\"" | "'" [^'\\\n]* "'"
ws_req      ::= [ \t]+
ws_inline   ::= [ \t]*
ws          ::= [ \t\n]*
"#;

/// Returns the unconstrained JSON grammar (ECMA-404).
///
/// # Examples
///
/// ```
/// let grammar = xg_grammar::builtin::json_grammar();
/// assert!(grammar.rule_id("object").is_some());
/// ```
pub fn json_grammar() -> Grammar {
    parse_ebnf(JSON_EBNF, "root").expect("builtin JSON grammar must parse")
}

/// Returns the XML-subset grammar used for the CFG (XML) workload.
pub fn xml_grammar() -> Grammar {
    parse_ebnf(XML_EBNF, "root").expect("builtin XML grammar must parse")
}

/// Returns the Python-DSL grammar used for the CFG (Python DSL) workload.
pub fn python_dsl_grammar() -> Grammar {
    parse_ebnf(PYTHON_DSL_EBNF, "root").expect("builtin Python DSL grammar must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_grammar_parses_and_validates() {
        let g = json_grammar();
        assert!(g.rules().len() >= 10);
        assert!(g.validate().is_ok());
        assert_eq!(g.rule(g.root()).name, "root");
    }

    #[test]
    fn xml_grammar_parses_and_validates() {
        let g = xml_grammar();
        assert!(g.rule_id("element").is_some());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn python_dsl_grammar_parses_and_validates() {
        let g = python_dsl_grammar();
        assert!(g.rule_id("if_stmt").is_some());
        assert!(g.rule_id("while_stmt").is_some());
        assert!(g.rule_id("for_stmt").is_some());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn builtin_grammars_roundtrip_through_display() {
        for g in [json_grammar(), xml_grammar(), python_dsl_grammar()] {
            let text = g.to_string();
            let reparsed = crate::ebnf::parse_ebnf(&text, "root").unwrap();
            assert_eq!(g.rules().len(), reparsed.rules().len());
        }
    }
}
