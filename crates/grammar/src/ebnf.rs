//! Parser for the GBNF-style EBNF text format.
//!
//! The syntax is the same family as llama.cpp's GBNF and xgrammar's EBNF:
//!
//! ```text
//! # comments start with '#'
//! root   ::= object
//! object ::= "{" ws member ("," ws member)* ws "}" | "{" ws "}"
//! member ::= string ws ":" ws value
//! string ::= "\"" [^"\\]* "\""
//! ws     ::= [ \t\n\r]*
//! digit  ::= [0-9]
//! count  ::= digit{1,3}
//! ```
//!
//! Supported constructs: rule definitions with `::=`, double-quoted literals
//! with escapes (`\n \r \t \" \\ \xHH \uHHHH`), character classes `[...]` and
//! negated classes `[^...]` with ranges and the same escapes, grouping
//! `( ... )`, alternation `|`, repetition postfixes `* + ?` and `{m}`,
//! `{m,}`, `{m,n}`, and `#` line comments.

use crate::ast::{CharClass, CharRange, Grammar, GrammarBuilder, GrammarExpr};
use crate::error::{GrammarError, Result};

/// Parses a GBNF-style grammar text, using `root_rule` as the root.
///
/// # Errors
///
/// Returns a [`GrammarError::Parse`] with line/column information for syntax
/// errors, [`GrammarError::UndefinedRule`] for dangling references, and the
/// validation errors of [`Grammar::validate`].
///
/// # Examples
///
/// ```
/// let grammar = xg_grammar::parse_ebnf(r#"
///     root ::= greeting " " name
///     greeting ::= "hello" | "hi"
///     name ::= [a-zA-Z]+
/// "#, "root").unwrap();
/// assert_eq!(grammar.rules().len(), 3);
/// ```
pub fn parse_ebnf(text: &str, root_rule: &str) -> Result<Grammar> {
    let tokens = Lexer::new(text).tokenize()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        builder: GrammarBuilder::new(),
        defined: Vec::new(),
    };
    parser.parse_grammar()?;
    // Every referenced rule must have been defined (not just declared).
    if let Some((name, referenced_from)) = parser.undefined_references() {
        return Err(GrammarError::UndefinedRule {
            name,
            referenced_from,
        });
    }
    let grammar = parser.builder.build(root_rule)?;
    grammar.validate()?;
    Ok(grammar)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Define, // ::=
    Literal(Vec<u8>),
    Class(CharClass),
    Pipe,
    LParen,
    RParen,
    Star,
    Plus,
    Question,
    Repeat { min: u32, max: Option<u32> },
    NewRule, // implicit separator before "ident ::=" on a new line
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> GrammarError {
        GrammarError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>> {
        let mut out: Vec<Spanned> = Vec::new();
        while let Some(c) = self.peek() {
            let (line, column) = (self.line, self.column);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                        if self.peek() == Some('=') {
                            self.bump();
                            out.push(Spanned {
                                tok: Tok::Define,
                                line,
                                column,
                            });
                        } else {
                            return Err(self.err("expected `=` after `::`"));
                        }
                    } else {
                        return Err(self.err("unexpected `:`"));
                    }
                }
                '"' => {
                    let lit = self.lex_literal()?;
                    out.push(Spanned {
                        tok: Tok::Literal(lit),
                        line,
                        column,
                    });
                }
                '[' => {
                    let class = self.lex_class()?;
                    out.push(Spanned {
                        tok: Tok::Class(class),
                        line,
                        column,
                    });
                }
                '|' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::Pipe,
                        line,
                        column,
                    });
                }
                '(' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::LParen,
                        line,
                        column,
                    });
                }
                ')' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::RParen,
                        line,
                        column,
                    });
                }
                '*' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::Star,
                        line,
                        column,
                    });
                }
                '+' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::Plus,
                        line,
                        column,
                    });
                }
                '?' => {
                    self.bump();
                    out.push(Spanned {
                        tok: Tok::Question,
                        line,
                        column,
                    });
                }
                '{' => {
                    let rep = self.lex_repeat()?;
                    out.push(Spanned {
                        tok: rep,
                        line,
                        column,
                    });
                }
                c if c.is_alphabetic() || c == '_' => {
                    let ident = self.lex_ident();
                    out.push(Spanned {
                        tok: Tok::Ident(ident),
                        line,
                        column,
                    });
                }
                other => {
                    return Err(self.err(format!("unexpected character `{other}`")));
                }
            }
        }
        // Insert NewRule separators: an Ident immediately followed by Define
        // starts a new rule. This keeps the grammar format newline-insensitive.
        let mut with_seps: Vec<Spanned> = Vec::with_capacity(out.len() + 8);
        for (i, sp) in out.iter().enumerate() {
            if i > 0
                && matches!(sp.tok, Tok::Ident(_))
                && matches!(out.get(i + 1).map(|s| &s.tok), Some(Tok::Define))
            {
                with_seps.push(Spanned {
                    tok: Tok::NewRule,
                    line: sp.line,
                    column: sp.column,
                });
            }
            with_seps.push(sp.clone());
        }
        Ok(with_seps)
    }

    fn lex_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn lex_escape(&mut self) -> Result<char> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('0') => Ok('\0'),
            Some('"') => Ok('"'),
            Some('\\') => Ok('\\'),
            Some(']') => Ok(']'),
            Some('[') => Ok('['),
            Some('^') => Ok('^'),
            Some('-') => Ok('-'),
            Some('/') => Ok('/'),
            Some('x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                char::from_u32(hi * 16 + lo).ok_or_else(|| self.err("invalid \\x escape"))
            }
            Some('u') => {
                let mut v: u32 = 0;
                for _ in 0..4 {
                    v = v * 16 + self.hex_digit()?;
                }
                char::from_u32(v).ok_or_else(|| self.err("invalid \\u escape"))
            }
            Some(other) => Err(self.err(format!("unknown escape `\\{other}`"))),
            None => Err(self.err("unterminated escape")),
        }
    }

    fn hex_digit(&mut self) -> Result<u32> {
        match self.bump() {
            Some(c) if c.is_ascii_hexdigit() => Ok(c.to_digit(16).expect("hexdigit")),
            _ => Err(self.err("expected hex digit")),
        }
    }

    fn lex_literal(&mut self) -> Result<Vec<u8>> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => out.push(self.lex_escape()?),
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
        Ok(out.into_bytes())
    }

    fn lex_class(&mut self) -> Result<CharClass> {
        self.bump(); // '['
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<CharRange> = Vec::new();
        loop {
            let c = match self.bump() {
                Some(']') => break,
                Some('\\') => self.lex_escape()?,
                Some(c) => c,
                None => return Err(self.err("unterminated character class")),
            };
            // Range `a-b` (a `-` right before `]` is a literal dash).
            if self.peek() == Some('-') {
                let mut look = self.chars.clone();
                look.next();
                if look.peek() != Some(&']') {
                    self.bump(); // '-'
                    let end = match self.bump() {
                        Some('\\') => self.lex_escape()?,
                        Some(e) => e,
                        None => return Err(self.err("unterminated character class range")),
                    };
                    if end < c {
                        return Err(self.err("character range end precedes start"));
                    }
                    ranges.push(CharRange::new(c, end));
                    continue;
                }
            }
            ranges.push(CharRange::single(c));
        }
        Ok(if negated {
            CharClass::negated(ranges)
        } else {
            CharClass::new(ranges)
        })
    }

    fn lex_repeat(&mut self) -> Result<Tok> {
        self.bump(); // '{'
        let min = self.lex_number()?;
        match self.bump() {
            Some('}') => Ok(Tok::Repeat {
                min,
                max: Some(min),
            }),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    Ok(Tok::Repeat { min, max: None })
                } else {
                    let max = self.lex_number()?;
                    if self.bump() != Some('}') {
                        return Err(self.err("expected `}` to close repetition"));
                    }
                    if max < min {
                        return Err(GrammarError::InvalidRepetition { min, max });
                    }
                    Ok(Tok::Repeat {
                        min,
                        max: Some(max),
                    })
                }
            }
            _ => Err(self.err("expected `,` or `}` in repetition")),
        }
    }

    fn lex_number(&mut self) -> Result<u32> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s.parse()
            .map_err(|_| self.err("expected a number in repetition"))
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    builder: GrammarBuilder,
    /// For each declared rule id, whether a definition (`name ::= ...`) was seen,
    /// plus the first rule that referenced it (for error reporting).
    defined: Vec<(bool, Option<String>)>,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, sp: Option<&Spanned>, message: impl Into<String>) -> GrammarError {
        let (line, column) = sp.map(|s| (s.line, s.column)).unwrap_or((0, 0));
        GrammarError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn ensure_slot(&mut self, idx: usize) {
        while self.defined.len() <= idx {
            self.defined.push((false, None));
        }
    }

    fn undefined_references(&self) -> Option<(String, String)> {
        for (i, (defined, referenced_from)) in self.defined.iter().enumerate() {
            if !defined {
                if let Some(from) = referenced_from {
                    let name = self
                        .builder
                        .rule_name(crate::ast::RuleId(i as u32))
                        .unwrap_or("?")
                        .to_string();
                    return Some((name, from.clone()));
                }
            }
        }
        None
    }

    fn parse_grammar(&mut self) -> Result<()> {
        while self.peek().is_some() {
            self.parse_rule()?;
        }
        Ok(())
    }

    fn parse_rule(&mut self) -> Result<()> {
        // Skip a NewRule separator if present.
        if matches!(self.peek().map(|s| &s.tok), Some(Tok::NewRule)) {
            self.bump();
        }
        let name_tok = self.bump();
        let name = match name_tok.as_ref().map(|s| &s.tok) {
            Some(Tok::Ident(name)) => name.clone(),
            _ => return Err(self.err_at(name_tok.as_ref(), "expected rule name")),
        };
        let def = self.bump();
        if !matches!(def.as_ref().map(|s| &s.tok), Some(Tok::Define)) {
            return Err(self.err_at(def.as_ref(), "expected `::=` after rule name"));
        }
        let body = self.parse_choice(&name)?;
        let id = self.builder.add_rule(&name, body);
        self.ensure_slot(id.index());
        self.defined[id.index()].0 = true;
        Ok(())
    }

    fn at_rule_end(&self) -> bool {
        matches!(
            self.peek().map(|s| &s.tok),
            None | Some(Tok::NewRule) | Some(Tok::RParen)
        )
    }

    fn parse_choice(&mut self, current_rule: &str) -> Result<GrammarExpr> {
        let mut alts = vec![self.parse_sequence(current_rule)?];
        while matches!(self.peek().map(|s| &s.tok), Some(Tok::Pipe)) {
            self.bump();
            alts.push(self.parse_sequence(current_rule)?);
        }
        Ok(GrammarExpr::choice(alts))
    }

    fn parse_sequence(&mut self, current_rule: &str) -> Result<GrammarExpr> {
        let mut items = Vec::new();
        while !self.at_rule_end() && !matches!(self.peek().map(|s| &s.tok), Some(Tok::Pipe)) {
            items.push(self.parse_postfix(current_rule)?);
        }
        Ok(GrammarExpr::seq(items))
    }

    fn parse_postfix(&mut self, current_rule: &str) -> Result<GrammarExpr> {
        let mut expr = self.parse_atom(current_rule)?;
        loop {
            match self.peek().map(|s| &s.tok) {
                Some(Tok::Star) => {
                    self.bump();
                    expr = GrammarExpr::star(expr);
                }
                Some(Tok::Plus) => {
                    self.bump();
                    expr = GrammarExpr::plus(expr);
                }
                Some(Tok::Question) => {
                    self.bump();
                    expr = GrammarExpr::optional(expr);
                }
                Some(Tok::Repeat { min, max }) => {
                    let (min, max) = (*min, *max);
                    self.bump();
                    expr = GrammarExpr::Repeat {
                        expr: Box::new(expr),
                        min,
                        max,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_atom(&mut self, current_rule: &str) -> Result<GrammarExpr> {
        let sp = self.bump();
        match sp.as_ref().map(|s| s.tok.clone()) {
            Some(Tok::Literal(bytes)) => Ok(if bytes.is_empty() {
                GrammarExpr::Empty
            } else {
                GrammarExpr::Literal(bytes)
            }),
            Some(Tok::Class(class)) => Ok(GrammarExpr::CharClass(class)),
            Some(Tok::Ident(name)) => {
                let id = self.builder.declare(&name);
                self.ensure_slot(id.index());
                if self.defined[id.index()].1.is_none() {
                    self.defined[id.index()].1 = Some(current_rule.to_string());
                }
                Ok(GrammarExpr::RuleRef(id))
            }
            Some(Tok::LParen) => {
                let inner = self.parse_choice(current_rule)?;
                let close = self.bump();
                if !matches!(close.as_ref().map(|s| &s.tok), Some(Tok::RParen)) {
                    return Err(self.err_at(close.as_ref(), "expected `)`"));
                }
                Ok(inner)
            }
            _ => Err(self.err_at(sp.as_ref(), "expected literal, class, rule name or `(`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GrammarExpr;

    #[test]
    fn parses_simple_grammar() {
        let g = parse_ebnf(
            r#"
            # a tiny grammar
            root ::= "hello" ws name
            ws ::= [ \t]*
            name ::= [a-zA-Z_] [a-zA-Z0-9_]*
            "#,
            "root",
        )
        .unwrap();
        assert_eq!(g.rules().len(), 3);
        assert_eq!(g.rule(g.root()).name, "root");
    }

    #[test]
    fn parses_alternation_and_grouping() {
        let g = parse_ebnf(r#"root ::= ("a" | "b")+ ("x" "y")?"#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Sequence(items) => assert_eq!(items.len(), 2),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parses_bounded_repetition() {
        let g = parse_ebnf(r#"root ::= [0-9]{2,4}"#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Repeat { min, max, .. } => {
                assert_eq!(*min, 2);
                assert_eq!(*max, Some(4));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn parses_exact_repetition_and_open_repetition() {
        let g = parse_ebnf(r#"root ::= [0-9]{3} [a-z]{1,}"#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Sequence(items) => {
                assert!(matches!(
                    items[0],
                    GrammarExpr::Repeat {
                        min: 3,
                        max: Some(3),
                        ..
                    }
                ));
                assert!(matches!(
                    items[1],
                    GrammarExpr::Repeat {
                        min: 1,
                        max: None,
                        ..
                    }
                ));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn escapes_in_literals_and_classes() {
        let g = parse_ebnf(r#"root ::= "\"\\\n" [^"\\]*"#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Sequence(items) => {
                assert_eq!(items[0], GrammarExpr::Literal(b"\"\\\n".to_vec()));
            }
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn undefined_rule_reference_is_reported() {
        let err = parse_ebnf(r#"root ::= missing"#, "root").unwrap_err();
        assert!(matches!(err, GrammarError::UndefinedRule { .. }), "{err}");
    }

    #[test]
    fn missing_root_is_reported() {
        let err = parse_ebnf(r#"a ::= "x""#, "root").unwrap_err();
        assert!(matches!(err, GrammarError::MissingRoot { .. }));
    }

    #[test]
    fn syntax_error_has_position() {
        let err = parse_ebnf("root ::= )", "root").unwrap_err();
        match err {
            GrammarError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        assert!(parse_ebnf(r#"root ::= "abc"#, "root").is_err());
    }

    #[test]
    fn rules_can_reference_later_rules() {
        let g = parse_ebnf(
            r#"
            root ::= item ("," item)*
            item ::= [a-z]+
            "#,
            "root",
        )
        .unwrap();
        assert_eq!(g.rules().len(), 2);
    }

    #[test]
    fn unicode_escape_in_literal() {
        let g = parse_ebnf(r#"root ::= "é""#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Literal(bytes) => assert_eq!(bytes, "é".as_bytes()),
            other => panic!("unexpected body {other:?}"),
        }
    }

    #[test]
    fn left_recursive_grammar_rejected_at_parse() {
        let err = parse_ebnf(r#"expr ::= expr "+" expr | [0-9]+"#, "expr").unwrap_err();
        assert!(matches!(err, GrammarError::LeftRecursion { .. }));
    }

    #[test]
    fn dash_at_end_of_class_is_literal() {
        let g = parse_ebnf(r#"root ::= [a-z-]+"#, "root").unwrap();
        match &g.rule(g.root()).body {
            GrammarExpr::Repeat { expr, .. } => match expr.as_ref() {
                GrammarExpr::CharClass(cc) => {
                    assert!(cc.contains('-'));
                    assert!(cc.contains('m'));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected body {other:?}"),
        }
    }
}
