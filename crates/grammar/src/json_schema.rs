//! JSON Schema → grammar conversion.
//!
//! Converts (a practical subset of) JSON Schema documents into a [`Grammar`]
//! whose language is exactly the set of JSON documents accepted by the
//! schema, which is what the paper's "JSON Schema" workload (function
//! calling) requires.
//!
//! Supported keywords: `type` (object/array/string/integer/number/boolean/
//! null, or a list of types), `properties`, `required`,
//! `additionalProperties` (boolean or schema), `items`, `prefixItems`,
//! `minItems`, `maxItems`, `enum`, `const`, `anyOf`, `oneOf`, `allOf` (single
//! element only), `$ref` into `#/definitions` or `#/$defs`, `minLength`,
//! `maxLength`. Unsupported keywords that do not affect syntax (e.g.
//! `description`, `title`, `default`, `format`) are ignored; unsupported
//! keywords that would affect syntax produce [`GrammarError::Schema`].

use serde_json::Value;

use crate::ast::{CharClass, CharRange, Grammar, GrammarBuilder, GrammarExpr, RuleId};
use crate::error::{GrammarError, Result};

/// Options controlling the generated grammar.
#[derive(Debug, Clone)]
pub struct JsonSchemaOptions {
    /// Whether whitespace is allowed between JSON punctuation. The paper's
    /// engine (and OpenAI-style function calling) generally wants compact or
    /// lightly-spaced output; allowing arbitrary whitespace enlarges the
    /// automaton but is more faithful to free-form JSON.
    pub allow_whitespace: bool,
    /// Value of `additionalProperties` assumed when a schema does not set it.
    pub default_additional_properties: bool,
}

impl Default for JsonSchemaOptions {
    fn default() -> Self {
        JsonSchemaOptions {
            allow_whitespace: true,
            default_additional_properties: false,
        }
    }
}

/// Converts a JSON Schema document (already parsed into a
/// [`serde_json::Value`]) into a [`Grammar`] with default options.
///
/// # Errors
///
/// Returns [`GrammarError::Schema`] for malformed or unsupported schemas.
///
/// # Examples
///
/// ```
/// let schema: serde_json::Value = serde_json::json!({
///     "type": "object",
///     "properties": {
///         "name": {"type": "string"},
///         "age": {"type": "integer"}
///     },
///     "required": ["name"]
/// });
/// let grammar = xg_grammar::json_schema_to_grammar(&schema).unwrap();
/// assert!(grammar.rules().len() > 3);
/// ```
pub fn json_schema_to_grammar(schema: &Value) -> Result<Grammar> {
    json_schema_to_grammar_with_options(schema, &JsonSchemaOptions::default())
}

/// Converts a JSON Schema document with explicit [`JsonSchemaOptions`].
///
/// # Errors
///
/// Returns [`GrammarError::Schema`] for malformed or unsupported schemas.
pub fn json_schema_to_grammar_with_options(
    schema: &Value,
    options: &JsonSchemaOptions,
) -> Result<Grammar> {
    let mut conv = Converter {
        builder: GrammarBuilder::new(),
        options: options.clone(),
        root_schema: schema,
        counter: 0,
        basics: Basics::default(),
    };
    conv.install_basic_rules();
    let root_expr = conv.convert(schema, "#")?;
    let ws = conv.ws_expr();
    let root_body = GrammarExpr::seq(vec![ws.clone(), root_expr, ws]);
    conv.builder.add_rule("root", root_body);
    let grammar = conv.builder.build("root")?;
    grammar.validate()?;
    Ok(grammar)
}

#[derive(Debug, Default)]
struct Basics {
    ws: Option<RuleId>,
    string: Option<RuleId>,
    integer: Option<RuleId>,
    number: Option<RuleId>,
    boolean: Option<RuleId>,
    null: Option<RuleId>,
    any: Option<RuleId>,
}

struct Converter<'a> {
    builder: GrammarBuilder,
    options: JsonSchemaOptions,
    root_schema: &'a Value,
    counter: usize,
    basics: Basics,
}

impl<'a> Converter<'a> {
    fn schema_err(&self, path: &str, message: impl Into<String>) -> GrammarError {
        GrammarError::Schema {
            path: path.to_string(),
            message: message.into(),
        }
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        self.counter += 1;
        format!("{}_{}", hint, self.counter)
    }

    fn ws_expr(&self) -> GrammarExpr {
        match self.basics.ws {
            Some(id) => GrammarExpr::RuleRef(id),
            None => GrammarExpr::Empty,
        }
    }

    fn install_basic_rules(&mut self) {
        if self.options.allow_whitespace {
            let ws = self.builder.add_rule(
                "json_ws",
                GrammarExpr::star(GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single(' '),
                    CharRange::single('\t'),
                    CharRange::single('\n'),
                    CharRange::single('\r'),
                ]))),
            );
            self.basics.ws = Some(ws);
        }

        // json_string: "\"" char* "\""
        let char_class = GrammarExpr::choice(vec![
            GrammarExpr::CharClass(CharClass::negated(vec![
                CharRange::single('"'),
                CharRange::single('\\'),
                CharRange::new('\0', '\u{1f}'),
            ])),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("\\"),
                GrammarExpr::choice(vec![
                    GrammarExpr::CharClass(CharClass::new(vec![
                        CharRange::single('"'),
                        CharRange::single('\\'),
                        CharRange::single('/'),
                        CharRange::single('b'),
                        CharRange::single('f'),
                        CharRange::single('n'),
                        CharRange::single('r'),
                        CharRange::single('t'),
                    ])),
                    GrammarExpr::seq(vec![
                        GrammarExpr::literal("u"),
                        GrammarExpr::Repeat {
                            expr: Box::new(GrammarExpr::CharClass(CharClass::new(vec![
                                CharRange::new('0', '9'),
                                CharRange::new('a', 'f'),
                                CharRange::new('A', 'F'),
                            ]))),
                            min: 4,
                            max: Some(4),
                        },
                    ]),
                ]),
            ]),
        ]);
        let json_char = self.builder.add_rule("json_char", char_class);
        let string = self.builder.add_rule(
            "json_string",
            GrammarExpr::seq(vec![
                GrammarExpr::literal("\""),
                GrammarExpr::star(GrammarExpr::RuleRef(json_char)),
                GrammarExpr::literal("\""),
            ]),
        );
        self.basics.string = Some(string);

        let digit = GrammarExpr::CharClass(CharClass::new(vec![CharRange::new('0', '9')]));
        let nonzero = GrammarExpr::CharClass(CharClass::new(vec![CharRange::new('1', '9')]));
        let int_expr = GrammarExpr::seq(vec![
            GrammarExpr::optional(GrammarExpr::literal("-")),
            GrammarExpr::choice(vec![
                GrammarExpr::literal("0"),
                GrammarExpr::seq(vec![nonzero, GrammarExpr::star(digit.clone())]),
            ]),
        ]);
        let integer = self.builder.add_rule("json_integer", int_expr);
        self.basics.integer = Some(integer);

        let number_expr = GrammarExpr::seq(vec![
            GrammarExpr::RuleRef(integer),
            GrammarExpr::optional(GrammarExpr::seq(vec![
                GrammarExpr::literal("."),
                GrammarExpr::plus(digit.clone()),
            ])),
            GrammarExpr::optional(GrammarExpr::seq(vec![
                GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single('e'),
                    CharRange::single('E'),
                ])),
                GrammarExpr::optional(GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single('+'),
                    CharRange::single('-'),
                ]))),
                GrammarExpr::plus(digit),
            ])),
        ]);
        let number = self.builder.add_rule("json_number", number_expr);
        self.basics.number = Some(number);

        let boolean = self.builder.add_rule(
            "json_boolean",
            GrammarExpr::choice(vec![
                GrammarExpr::literal("true"),
                GrammarExpr::literal("false"),
            ]),
        );
        self.basics.boolean = Some(boolean);

        let null = self
            .builder
            .add_rule("json_null", GrammarExpr::literal("null"));
        self.basics.null = Some(null);

        // json_any: a full JSON value (used for untyped schemas and
        // additionalProperties: true). Mutually recursive, so declare first.
        let any = self.builder.declare("json_any");
        let ws = self.ws_expr();
        let any_member = GrammarExpr::seq(vec![
            GrammarExpr::RuleRef(string),
            ws.clone(),
            GrammarExpr::literal(":"),
            ws.clone(),
            GrammarExpr::RuleRef(any),
        ]);
        let any_object = GrammarExpr::choice(vec![
            GrammarExpr::seq(vec![
                GrammarExpr::literal("{"),
                ws.clone(),
                GrammarExpr::literal("}"),
            ]),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("{"),
                ws.clone(),
                any_member.clone(),
                GrammarExpr::star(GrammarExpr::seq(vec![
                    ws.clone(),
                    GrammarExpr::literal(","),
                    ws.clone(),
                    any_member,
                ])),
                ws.clone(),
                GrammarExpr::literal("}"),
            ]),
        ]);
        let any_array = GrammarExpr::choice(vec![
            GrammarExpr::seq(vec![
                GrammarExpr::literal("["),
                ws.clone(),
                GrammarExpr::literal("]"),
            ]),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("["),
                ws.clone(),
                GrammarExpr::RuleRef(any),
                GrammarExpr::star(GrammarExpr::seq(vec![
                    ws.clone(),
                    GrammarExpr::literal(","),
                    ws.clone(),
                    GrammarExpr::RuleRef(any),
                ])),
                ws.clone(),
                GrammarExpr::literal("]"),
            ]),
        ]);
        self.builder.set_body(
            any,
            GrammarExpr::choice(vec![
                any_object,
                any_array,
                GrammarExpr::RuleRef(string),
                GrammarExpr::RuleRef(number),
                GrammarExpr::RuleRef(boolean),
                GrammarExpr::RuleRef(null),
            ]),
        );
        self.basics.any = Some(any);
    }

    fn resolve_ref<'b>(&self, reference: &str, path: &str) -> Result<&'a Value>
    where
        'a: 'b,
    {
        let rest = reference
            .strip_prefix("#/")
            .ok_or_else(|| self.schema_err(path, format!("unsupported $ref `{reference}`")))?;
        let mut node = self.root_schema;
        for part in rest.split('/') {
            node = node.get(part).ok_or_else(|| {
                self.schema_err(path, format!("$ref target `{reference}` not found"))
            })?;
        }
        Ok(node)
    }

    /// Converts a schema node into an expression matching one JSON value.
    fn convert(&mut self, schema: &Value, path: &str) -> Result<GrammarExpr> {
        match schema {
            Value::Bool(true) => Ok(GrammarExpr::RuleRef(self.basics.any.expect("installed"))),
            Value::Bool(false) => Err(self.schema_err(path, "schema `false` matches nothing")),
            Value::Object(obj) => {
                if let Some(reference) = obj.get("$ref").and_then(Value::as_str) {
                    let target = self.resolve_ref(reference, path)?;
                    return self.convert(target, &format!("{path}/$ref"));
                }
                if let Some(constant) = obj.get("const") {
                    return Ok(GrammarExpr::Literal(
                        serde_json::to_string(constant)
                            .expect("serializing a Value cannot fail")
                            .into_bytes(),
                    ));
                }
                if let Some(variants) = obj.get("enum") {
                    return self.convert_enum(variants, path);
                }
                if let Some(any_of) = obj.get("anyOf").or_else(|| obj.get("oneOf")) {
                    return self.convert_any_of(any_of, path);
                }
                if let Some(all_of) = obj.get("allOf") {
                    let arr = all_of
                        .as_array()
                        .ok_or_else(|| self.schema_err(path, "allOf must be an array"))?;
                    if arr.len() == 1 {
                        return self.convert(&arr[0], &format!("{path}/allOf/0"));
                    }
                    return Err(self.schema_err(path, "allOf with more than one schema"));
                }
                match obj.get("type") {
                    Some(Value::String(t)) => self.convert_typed(t, obj, path),
                    Some(Value::Array(types)) => {
                        let mut alts = Vec::new();
                        for (i, t) in types.iter().enumerate() {
                            let t = t.as_str().ok_or_else(|| {
                                self.schema_err(path, "type array entries must be strings")
                            })?;
                            alts.push(self.convert_typed(t, obj, &format!("{path}/type/{i}"))?);
                        }
                        Ok(GrammarExpr::choice(alts))
                    }
                    Some(other) => Err(self.schema_err(path, format!("invalid `type`: {other}"))),
                    None => Ok(GrammarExpr::RuleRef(self.basics.any.expect("installed"))),
                }
            }
            other => Err(self.schema_err(path, format!("schema must be an object, got {other}"))),
        }
    }

    fn convert_enum(&mut self, variants: &Value, path: &str) -> Result<GrammarExpr> {
        let arr = variants
            .as_array()
            .ok_or_else(|| self.schema_err(path, "enum must be an array"))?;
        if arr.is_empty() {
            return Err(self.schema_err(path, "enum must not be empty"));
        }
        let alts = arr
            .iter()
            .map(|v| {
                GrammarExpr::Literal(
                    serde_json::to_string(v)
                        .expect("serializing a Value cannot fail")
                        .into_bytes(),
                )
            })
            .collect();
        Ok(GrammarExpr::choice(alts))
    }

    fn convert_any_of(&mut self, any_of: &Value, path: &str) -> Result<GrammarExpr> {
        let arr = any_of
            .as_array()
            .ok_or_else(|| self.schema_err(path, "anyOf/oneOf must be an array"))?;
        if arr.is_empty() {
            return Err(self.schema_err(path, "anyOf/oneOf must not be empty"));
        }
        let mut alts = Vec::new();
        for (i, sub) in arr.iter().enumerate() {
            alts.push(self.convert(sub, &format!("{path}/anyOf/{i}"))?);
        }
        Ok(GrammarExpr::choice(alts))
    }

    fn convert_typed(
        &mut self,
        type_name: &str,
        obj: &serde_json::Map<String, Value>,
        path: &str,
    ) -> Result<GrammarExpr> {
        match type_name {
            "string" => self.convert_string(obj, path),
            "integer" => Ok(GrammarExpr::RuleRef(
                self.basics.integer.expect("installed"),
            )),
            "number" => Ok(GrammarExpr::RuleRef(self.basics.number.expect("installed"))),
            "boolean" => Ok(GrammarExpr::RuleRef(
                self.basics.boolean.expect("installed"),
            )),
            "null" => Ok(GrammarExpr::RuleRef(self.basics.null.expect("installed"))),
            "object" => self.convert_object(obj, path),
            "array" => self.convert_array(obj, path),
            other => Err(self.schema_err(path, format!("unsupported type `{other}`"))),
        }
    }

    fn convert_string(
        &mut self,
        obj: &serde_json::Map<String, Value>,
        _path: &str,
    ) -> Result<GrammarExpr> {
        let min = obj.get("minLength").and_then(Value::as_u64).unwrap_or(0) as u32;
        let max = obj
            .get("maxLength")
            .and_then(Value::as_u64)
            .map(|v| v as u32);
        if min == 0 && max.is_none() {
            return Ok(GrammarExpr::RuleRef(self.basics.string.expect("installed")));
        }
        // Bounded string: "\"" char{min,max} "\"".
        let char_rule = self
            .builder
            .rule_id("json_char")
            .expect("json_char installed");
        Ok(GrammarExpr::seq(vec![
            GrammarExpr::literal("\""),
            GrammarExpr::Repeat {
                expr: Box::new(GrammarExpr::RuleRef(char_rule)),
                min,
                max,
            },
            GrammarExpr::literal("\""),
        ]))
    }

    fn convert_object(
        &mut self,
        obj: &serde_json::Map<String, Value>,
        path: &str,
    ) -> Result<GrammarExpr> {
        let ws = self.ws_expr();
        let empty_map = serde_json::Map::new();
        let properties = obj
            .get("properties")
            .and_then(Value::as_object)
            .unwrap_or(&empty_map);
        let required: Vec<&str> = obj
            .get("required")
            .and_then(Value::as_array)
            .map(|a| a.iter().filter_map(Value::as_str).collect())
            .unwrap_or_default();
        let additional = obj.get("additionalProperties");
        let (allow_additional, additional_schema) = match additional {
            None => (self.options.default_additional_properties, None),
            Some(Value::Bool(b)) => (*b, None),
            Some(schema) => (true, Some(schema)),
        };

        // Build member expressions for each declared property, in order.
        let mut members: Vec<(GrammarExpr, bool)> = Vec::new();
        for (name, prop_schema) in properties {
            let value_expr = self.convert(prop_schema, &format!("{path}/properties/{name}"))?;
            let key_literal = GrammarExpr::Literal(
                serde_json::to_string(&Value::String(name.clone()))
                    .expect("serializing a string cannot fail")
                    .into_bytes(),
            );
            let member = GrammarExpr::seq(vec![
                key_literal,
                ws.clone(),
                GrammarExpr::literal(":"),
                ws.clone(),
                value_expr,
            ]);
            members.push((member, required.contains(&name.as_str())));
        }

        // Additional members expression (used when additionalProperties allows them).
        let additional_member = if allow_additional {
            let value_expr = match additional_schema {
                Some(schema) => self.convert(schema, &format!("{path}/additionalProperties"))?,
                None => GrammarExpr::RuleRef(self.basics.any.expect("installed")),
            };
            Some(GrammarExpr::seq(vec![
                GrammarExpr::RuleRef(self.basics.string.expect("installed")),
                ws.clone(),
                GrammarExpr::literal(":"),
                ws.clone(),
                value_expr,
            ]))
        } else {
            None
        };

        // Recursive construction over property suffixes. For each suffix we
        // build two expressions: one assuming no member has been emitted yet
        // (`first`) and one assuming a comma is needed (`rest`).
        let comma = GrammarExpr::seq(vec![ws.clone(), GrammarExpr::literal(","), ws.clone()]);
        let additional_tail = additional_member
            .as_ref()
            .map(|m| GrammarExpr::star(GrammarExpr::seq(vec![comma.clone(), m.clone()])));
        // `rest` for the empty suffix.
        let mut rest_suffix: GrammarExpr = additional_tail.clone().unwrap_or(GrammarExpr::Empty);
        // `first` for the empty suffix: either nothing, or additional members.
        let mut first_suffix: GrammarExpr = match &additional_member {
            Some(m) => GrammarExpr::optional(GrammarExpr::seq(vec![
                m.clone(),
                additional_tail.clone().unwrap_or(GrammarExpr::Empty),
            ])),
            None => GrammarExpr::Empty,
        };
        let mut suffix_nullable = true;
        for (member, is_required) in members.into_iter().rev() {
            let hint = self.fresh_name("props");
            // Materialize current suffixes as rules to keep expressions small.
            let rest_rule = self
                .builder
                .add_rule(&format!("{hint}_rest"), rest_suffix.clone());
            let first_rule = self
                .builder
                .add_rule(&format!("{hint}_first"), first_suffix.clone());
            let new_rest = if is_required {
                GrammarExpr::seq(vec![
                    comma.clone(),
                    member.clone(),
                    GrammarExpr::RuleRef(rest_rule),
                ])
            } else {
                GrammarExpr::choice(vec![
                    GrammarExpr::seq(vec![
                        comma.clone(),
                        member.clone(),
                        GrammarExpr::RuleRef(rest_rule),
                    ]),
                    GrammarExpr::RuleRef(rest_rule),
                ])
            };
            let new_first = if is_required {
                GrammarExpr::seq(vec![member.clone(), GrammarExpr::RuleRef(rest_rule)])
            } else {
                GrammarExpr::choice(vec![
                    GrammarExpr::seq(vec![member, GrammarExpr::RuleRef(rest_rule)]),
                    GrammarExpr::RuleRef(first_rule),
                ])
            };
            suffix_nullable = suffix_nullable && !is_required;
            rest_suffix = new_rest;
            first_suffix = new_first;
        }

        let body_rule_name = self.fresh_name("object_members");
        let members_rule = self.builder.add_rule(&body_rule_name, first_suffix);
        Ok(GrammarExpr::seq(vec![
            GrammarExpr::literal("{"),
            ws.clone(),
            GrammarExpr::RuleRef(members_rule),
            ws,
            GrammarExpr::literal("}"),
        ]))
    }

    fn convert_array(
        &mut self,
        obj: &serde_json::Map<String, Value>,
        path: &str,
    ) -> Result<GrammarExpr> {
        let ws = self.ws_expr();
        let min_items = obj.get("minItems").and_then(Value::as_u64).unwrap_or(0) as u32;
        let max_items = obj
            .get("maxItems")
            .and_then(Value::as_u64)
            .map(|v| v as u32);
        if let (Some(max), true) = (max_items, max_items.is_some()) {
            if max < min_items {
                return Err(GrammarError::InvalidRepetition {
                    min: min_items,
                    max,
                });
            }
        }

        // prefixItems (tuple validation).
        if let Some(prefix) = obj.get("prefixItems").and_then(Value::as_array) {
            let mut parts = vec![GrammarExpr::literal("["), ws.clone()];
            for (i, sub) in prefix.iter().enumerate() {
                if i > 0 {
                    parts.push(ws.clone());
                    parts.push(GrammarExpr::literal(","));
                    parts.push(ws.clone());
                }
                parts.push(self.convert(sub, &format!("{path}/prefixItems/{i}"))?);
            }
            parts.push(ws.clone());
            parts.push(GrammarExpr::literal("]"));
            return Ok(GrammarExpr::seq(parts));
        }

        let item_expr = match obj.get("items") {
            Some(items) => self.convert(items, &format!("{path}/items"))?,
            None => GrammarExpr::RuleRef(self.basics.any.expect("installed")),
        };
        let item_rule_name = self.fresh_name("array_item");
        let item_rule = self.builder.add_rule(&item_rule_name, item_expr);
        let item = GrammarExpr::RuleRef(item_rule);
        let comma_item = GrammarExpr::seq(vec![
            ws.clone(),
            GrammarExpr::literal(","),
            ws.clone(),
            item.clone(),
        ]);

        let empty_array = GrammarExpr::seq(vec![
            GrammarExpr::literal("["),
            ws.clone(),
            GrammarExpr::literal("]"),
        ]);
        let non_empty = GrammarExpr::seq(vec![
            GrammarExpr::literal("["),
            ws.clone(),
            item,
            GrammarExpr::Repeat {
                expr: Box::new(comma_item),
                min: min_items.saturating_sub(1),
                max: max_items.map(|m| m.saturating_sub(1)),
            },
            ws.clone(),
            GrammarExpr::literal("]"),
        ]);
        if min_items == 0 {
            if max_items == Some(0) {
                return Ok(empty_array);
            }
            Ok(GrammarExpr::choice(vec![empty_array, non_empty]))
        } else {
            Ok(non_empty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn simple_object_schema_converts() {
        let schema = json!({
            "type": "object",
            "properties": {
                "name": {"type": "string"},
                "age": {"type": "integer"},
                "active": {"type": "boolean"}
            },
            "required": ["name", "age"]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.rules().len() > 8);
    }

    #[test]
    fn enum_and_const_convert_to_literals() {
        let schema = json!({
            "type": "object",
            "properties": {
                "unit": {"enum": ["celsius", "fahrenheit"]},
                "version": {"const": 2}
            },
            "required": ["unit", "version"]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn nested_objects_and_arrays() {
        let schema = json!({
            "type": "object",
            "properties": {
                "tags": {"type": "array", "items": {"type": "string"}, "minItems": 1},
                "address": {
                    "type": "object",
                    "properties": {
                        "street": {"type": "string"},
                        "zip": {"type": "string"}
                    },
                    "required": ["street"]
                }
            },
            "required": ["tags"]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn ref_into_defs_resolves() {
        let schema = json!({
            "type": "object",
            "properties": {"child": {"$ref": "#/$defs/leaf"}},
            "required": ["child"],
            "$defs": {"leaf": {"type": "string"}}
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn missing_ref_is_an_error() {
        let schema = json!({"$ref": "#/$defs/nope"});
        assert!(matches!(
            json_schema_to_grammar(&schema),
            Err(GrammarError::Schema { .. })
        ));
    }

    #[test]
    fn any_of_becomes_choice() {
        let schema = json!({
            "anyOf": [{"type": "string"}, {"type": "integer"}, {"type": "null"}]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn untyped_schema_matches_any_json() {
        let schema = json!(true);
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.rule_id("json_any").is_some());
    }

    #[test]
    fn false_schema_is_rejected() {
        let schema = json!(false);
        assert!(json_schema_to_grammar(&schema).is_err());
    }

    #[test]
    fn bounded_arrays_and_strings() {
        let schema = json!({
            "type": "object",
            "properties": {
                "code": {"type": "string", "minLength": 2, "maxLength": 4},
                "points": {"type": "array", "items": {"type": "number"}, "minItems": 2, "maxItems": 3}
            },
            "required": ["code", "points"]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn type_list_becomes_choice() {
        let schema = json!({"type": ["string", "null"]});
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn additional_properties_schema() {
        let schema = json!({
            "type": "object",
            "properties": {"id": {"type": "integer"}},
            "required": ["id"],
            "additionalProperties": {"type": "string"}
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn prefix_items_tuple() {
        let schema = json!({
            "type": "array",
            "prefixItems": [{"type": "string"}, {"type": "integer"}]
        });
        let g = json_schema_to_grammar(&schema).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn compact_mode_has_no_ws_rule() {
        let schema =
            json!({"type": "object", "properties": {"a": {"type": "integer"}}, "required": ["a"]});
        let opts = JsonSchemaOptions {
            allow_whitespace: false,
            ..Default::default()
        };
        let g = json_schema_to_grammar_with_options(&schema, &opts).unwrap();
        assert!(g.rule_id("json_ws").is_none());
    }
}
