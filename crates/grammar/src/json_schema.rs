//! JSON Schema → grammar conversion.
//!
//! Converts (a practical subset of) JSON Schema documents into a [`Grammar`]
//! whose language is exactly the set of JSON documents accepted by the
//! schema, which is what the paper's "JSON Schema" workload (function
//! calling) requires.
//!
//! Supported keywords (see [`SUPPORTED_KEYWORDS`]): `type` (object/array/
//! string/integer/number/boolean/null, or a list of types), `properties`,
//! `required`, `additionalProperties` (boolean or schema), `items`,
//! `prefixItems`, `minItems`, `maxItems`, `enum`, `const`, `anyOf`, `oneOf`,
//! `allOf` (merged by sibling-key intersection), general in-document `$ref`
//! (JSON-pointer resolution, recursive schemas become recursive grammar
//! rules), `minLength`, `maxLength`, `pattern` (compiled through
//! [`crate::regex_pattern_to_expr`]), `format` (see
//! [`crate::SUPPORTED_FORMATS`]), `minimum`, `maximum`, `exclusiveMinimum`,
//! `exclusiveMaximum` (digit-wise bounded-number grammars) and `multipleOf`
//! on integers (a divisibility DFA over decimal digits).
//!
//! Annotation keywords ([`ANNOTATION_KEYWORDS`]) never affect syntax and are
//! always ignored. Any *other* keyword would silently widen the accepted
//! language, so by default the converter rejects it with
//! [`GrammarError::Schema`]; set [`JsonSchemaOptions::lenient`] to ignore
//! unknown keywords (and fall back to unconstrained grammars when a
//! supported keyword has an unsupported value).

use std::collections::HashMap;

use serde_json::Value;

use crate::ast::{CharClass, CharRange, Grammar, GrammarBuilder, GrammarExpr, RuleId};
use crate::bounded_number::{integer_range_expr, number_range_expr};
use crate::error::{GrammarError, Result};
use crate::formats::format_expr;
use crate::pattern::regex_pattern_to_expr;

type Map = serde_json::Map<String, Value>;

/// Keywords the converter consumes and enforces. Anything outside this list
/// and [`ANNOTATION_KEYWORDS`] is rejected in strict mode.
pub const SUPPORTED_KEYWORDS: &[&str] = &[
    "$ref",
    "additionalProperties",
    "allOf",
    "anyOf",
    "const",
    "enum",
    "exclusiveMaximum",
    "exclusiveMinimum",
    "format",
    "items",
    "maxItems",
    "maxLength",
    "maximum",
    "minItems",
    "minLength",
    "minimum",
    "multipleOf",
    "oneOf",
    "pattern",
    "prefixItems",
    "properties",
    "required",
    "type",
];

/// Keywords that are pure annotations (or reference containers resolved
/// through `$ref`) and never affect the accepted language.
pub const ANNOTATION_KEYWORDS: &[&str] = &[
    "$comment",
    "$defs",
    "$id",
    "$schema",
    "default",
    "definitions",
    "deprecated",
    "description",
    "examples",
    "readOnly",
    "title",
    "writeOnly",
];

/// Maximum `allOf`/`$ref` inline-flattening depth before the converter
/// assumes a cycle and errors out. Recursive schemas are still supported
/// through pure `$ref` (which becomes a recursive grammar rule); the guard
/// only trips when a `$ref` cycle passes through an `allOf` merge, which has
/// no finite flattening.
const MAX_FLATTEN_DEPTH: usize = 64;

/// Largest `multipleOf` divisor compiled into a digit DFA; the DFA has one
/// rule per residue class, so this bounds grammar size.
const MAX_MULTIPLE_OF: u64 = 1024;

/// Controls the JSON punctuation separators the generated grammar accepts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WhitespaceConfig {
    /// No whitespace anywhere: `{"a":1,"b":[2,3]}`.
    Compact,
    /// Arbitrary whitespace (space, tab, newline, carriage return) around
    /// every punctuation token, as in free-form JSON. This is the default
    /// but enlarges the automaton.
    #[default]
    Flexible,
    /// Fixed separator strings, llguidance-style: `item_separator` replaces
    /// `,` and `key_separator` replaces `:`. Each must contain the
    /// punctuation character exactly once plus only whitespace (e.g. `", "`
    /// and `": "`).
    Separators {
        /// Replacement for `,` between members/items, e.g. `", "`.
        item_separator: String,
        /// Replacement for `:` between object keys and values, e.g. `": "`.
        key_separator: String,
    },
}

/// Options controlling the generated grammar.
#[derive(Debug, Clone, Default)]
pub struct JsonSchemaOptions {
    /// Separator/whitespace policy threaded through the converter.
    pub whitespace: WhitespaceConfig,
    /// Value of `additionalProperties` assumed when a schema does not set it.
    pub default_additional_properties: bool,
    /// When `true`, unknown keywords are ignored and supported keywords with
    /// unsupported values fall back to the unconstrained grammar for their
    /// type, instead of raising [`GrammarError::Schema`]. The default is
    /// strict: silent widening of the accepted language is an error.
    pub lenient: bool,
}

/// Converts a JSON Schema document (already parsed into a
/// [`serde_json::Value`]) into a [`Grammar`] with default options.
///
/// # Errors
///
/// Returns [`GrammarError::Schema`] for malformed or unsupported schemas.
///
/// # Examples
///
/// ```
/// let schema: serde_json::Value = serde_json::json!({
///     "type": "object",
///     "properties": {
///         "name": {"type": "string"},
///         "age": {"type": "integer", "minimum": 0}
///     },
///     "required": ["name"]
/// });
/// let grammar = xg_grammar::json_schema_to_grammar(&schema).unwrap();
/// assert!(grammar.rules().len() > 3);
/// ```
pub fn json_schema_to_grammar(schema: &Value) -> Result<Grammar> {
    json_schema_to_grammar_with_options(schema, &JsonSchemaOptions::default())
}

/// Converts a JSON Schema document with explicit [`JsonSchemaOptions`].
///
/// # Errors
///
/// Returns [`GrammarError::Schema`] for malformed or unsupported schemas and
/// for invalid [`WhitespaceConfig::Separators`] strings.
pub fn json_schema_to_grammar_with_options(
    schema: &Value,
    options: &JsonSchemaOptions,
) -> Result<Grammar> {
    validate_whitespace_config(&options.whitespace)?;
    let mut conv = Converter {
        builder: GrammarBuilder::new(),
        options: options.clone(),
        root_schema: schema,
        counter: 0,
        basics: Basics::default(),
        ref_rules: HashMap::new(),
        format_rules: HashMap::new(),
        depth: 0,
    };
    conv.install_basic_rules();
    let root_expr = conv.convert(schema, "#")?;
    let pad = conv.pad();
    let root_body = GrammarExpr::seq(vec![pad.clone(), root_expr, pad]);
    conv.builder.add_rule("root", root_body);
    let grammar = conv.builder.build("root")?;
    grammar.validate()?;
    Ok(grammar)
}

fn validate_whitespace_config(config: &WhitespaceConfig) -> Result<()> {
    let WhitespaceConfig::Separators {
        item_separator,
        key_separator,
    } = config
    else {
        return Ok(());
    };
    for (name, sep, punct) in [
        ("item_separator", item_separator, ','),
        ("key_separator", key_separator, ':'),
    ] {
        let punct_count = sep.chars().filter(|&c| c == punct).count();
        let rest_ok = sep
            .chars()
            .all(|c| c == punct || matches!(c, ' ' | '\t' | '\n' | '\r'));
        if punct_count != 1 || !rest_ok {
            return Err(GrammarError::Schema {
                path: "#".to_string(),
                message: format!(
                    "invalid {name} `{sep}`: must contain `{punct}` exactly once \
                     plus only whitespace"
                ),
            });
        }
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Basics {
    ws: Option<RuleId>,
    string: Option<RuleId>,
    integer: Option<RuleId>,
    number: Option<RuleId>,
    boolean: Option<RuleId>,
    null: Option<RuleId>,
    any: Option<RuleId>,
}

struct Converter<'a> {
    builder: GrammarBuilder,
    options: JsonSchemaOptions,
    root_schema: &'a Value,
    counter: usize,
    basics: Basics,
    /// `$ref` pointer → grammar rule, so each target compiles once and
    /// recursive references become recursive rules instead of diverging.
    ref_rules: HashMap<String, RuleId>,
    /// `format` name → grammar rule for the quoted format string.
    format_rules: HashMap<String, RuleId>,
    /// Current `allOf` re-entry depth (see [`MAX_FLATTEN_DEPTH`]).
    depth: usize,
}

impl<'a> Converter<'a> {
    fn schema_err(&self, path: &str, message: impl Into<String>) -> GrammarError {
        GrammarError::Schema {
            path: path.to_string(),
            message: message.into(),
        }
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        self.counter += 1;
        format!("{}_{}", hint, self.counter)
    }

    /// Optional padding around structural tokens: the `json_ws` rule in
    /// flexible mode, nothing otherwise.
    fn pad(&self) -> GrammarExpr {
        match self.basics.ws {
            Some(id) => GrammarExpr::RuleRef(id),
            None => GrammarExpr::Empty,
        }
    }

    /// The separator between members/items (`,` under the active config).
    fn comma(&self) -> GrammarExpr {
        match &self.options.whitespace {
            WhitespaceConfig::Compact => GrammarExpr::literal(","),
            WhitespaceConfig::Flexible => {
                GrammarExpr::seq(vec![self.pad(), GrammarExpr::literal(","), self.pad()])
            }
            WhitespaceConfig::Separators { item_separator, .. } => {
                GrammarExpr::Literal(item_separator.clone().into_bytes())
            }
        }
    }

    /// The separator between an object key and its value (`:`).
    fn colon(&self) -> GrammarExpr {
        match &self.options.whitespace {
            WhitespaceConfig::Compact => GrammarExpr::literal(":"),
            WhitespaceConfig::Flexible => {
                GrammarExpr::seq(vec![self.pad(), GrammarExpr::literal(":"), self.pad()])
            }
            WhitespaceConfig::Separators { key_separator, .. } => {
                GrammarExpr::Literal(key_separator.clone().into_bytes())
            }
        }
    }

    fn any_rule(&self) -> GrammarExpr {
        GrammarExpr::RuleRef(self.basics.any.expect("installed"))
    }

    fn install_basic_rules(&mut self) {
        if self.options.whitespace == WhitespaceConfig::Flexible {
            let ws = self.builder.add_rule(
                "json_ws",
                GrammarExpr::star(GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single(' '),
                    CharRange::single('\t'),
                    CharRange::single('\n'),
                    CharRange::single('\r'),
                ]))),
            );
            self.basics.ws = Some(ws);
        }

        // json_string: "\"" char* "\""
        let char_class = GrammarExpr::choice(vec![
            GrammarExpr::CharClass(CharClass::negated(vec![
                CharRange::single('"'),
                CharRange::single('\\'),
                CharRange::new('\0', '\u{1f}'),
            ])),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("\\"),
                GrammarExpr::choice(vec![
                    GrammarExpr::CharClass(CharClass::new(vec![
                        CharRange::single('"'),
                        CharRange::single('\\'),
                        CharRange::single('/'),
                        CharRange::single('b'),
                        CharRange::single('f'),
                        CharRange::single('n'),
                        CharRange::single('r'),
                        CharRange::single('t'),
                    ])),
                    GrammarExpr::seq(vec![
                        GrammarExpr::literal("u"),
                        GrammarExpr::Repeat {
                            expr: Box::new(GrammarExpr::CharClass(CharClass::new(vec![
                                CharRange::new('0', '9'),
                                CharRange::new('a', 'f'),
                                CharRange::new('A', 'F'),
                            ]))),
                            min: 4,
                            max: Some(4),
                        },
                    ]),
                ]),
            ]),
        ]);
        let json_char = self.builder.add_rule("json_char", char_class);
        let string = self.builder.add_rule(
            "json_string",
            GrammarExpr::seq(vec![
                GrammarExpr::literal("\""),
                GrammarExpr::star(GrammarExpr::RuleRef(json_char)),
                GrammarExpr::literal("\""),
            ]),
        );
        self.basics.string = Some(string);

        let digit = GrammarExpr::CharClass(CharClass::new(vec![CharRange::new('0', '9')]));
        let nonzero = GrammarExpr::CharClass(CharClass::new(vec![CharRange::new('1', '9')]));
        let int_expr = GrammarExpr::seq(vec![
            GrammarExpr::optional(GrammarExpr::literal("-")),
            GrammarExpr::choice(vec![
                GrammarExpr::literal("0"),
                GrammarExpr::seq(vec![nonzero, GrammarExpr::star(digit.clone())]),
            ]),
        ]);
        let integer = self.builder.add_rule("json_integer", int_expr);
        self.basics.integer = Some(integer);

        let number_expr = GrammarExpr::seq(vec![
            GrammarExpr::RuleRef(integer),
            GrammarExpr::optional(GrammarExpr::seq(vec![
                GrammarExpr::literal("."),
                GrammarExpr::plus(digit.clone()),
            ])),
            GrammarExpr::optional(GrammarExpr::seq(vec![
                GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single('e'),
                    CharRange::single('E'),
                ])),
                GrammarExpr::optional(GrammarExpr::CharClass(CharClass::new(vec![
                    CharRange::single('+'),
                    CharRange::single('-'),
                ]))),
                GrammarExpr::plus(digit),
            ])),
        ]);
        let number = self.builder.add_rule("json_number", number_expr);
        self.basics.number = Some(number);

        let boolean = self.builder.add_rule(
            "json_boolean",
            GrammarExpr::choice(vec![
                GrammarExpr::literal("true"),
                GrammarExpr::literal("false"),
            ]),
        );
        self.basics.boolean = Some(boolean);

        let null = self
            .builder
            .add_rule("json_null", GrammarExpr::literal("null"));
        self.basics.null = Some(null);

        // json_any: a full JSON value (used for untyped schemas and
        // additionalProperties: true). Mutually recursive, so declare first.
        let any = self.builder.declare("json_any");
        let pad = self.pad();
        let any_member = GrammarExpr::seq(vec![
            GrammarExpr::RuleRef(string),
            self.colon(),
            GrammarExpr::RuleRef(any),
        ]);
        let any_object = GrammarExpr::choice(vec![
            GrammarExpr::seq(vec![
                GrammarExpr::literal("{"),
                pad.clone(),
                GrammarExpr::literal("}"),
            ]),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("{"),
                pad.clone(),
                any_member.clone(),
                GrammarExpr::star(GrammarExpr::seq(vec![self.comma(), any_member])),
                pad.clone(),
                GrammarExpr::literal("}"),
            ]),
        ]);
        let any_array = GrammarExpr::choice(vec![
            GrammarExpr::seq(vec![
                GrammarExpr::literal("["),
                pad.clone(),
                GrammarExpr::literal("]"),
            ]),
            GrammarExpr::seq(vec![
                GrammarExpr::literal("["),
                pad.clone(),
                GrammarExpr::RuleRef(any),
                GrammarExpr::star(GrammarExpr::seq(vec![
                    self.comma(),
                    GrammarExpr::RuleRef(any),
                ])),
                pad.clone(),
                GrammarExpr::literal("]"),
            ]),
        ]);
        self.builder.set_body(
            any,
            GrammarExpr::choice(vec![
                any_object,
                any_array,
                GrammarExpr::RuleRef(string),
                GrammarExpr::RuleRef(number),
                GrammarExpr::RuleRef(boolean),
                GrammarExpr::RuleRef(null),
            ]),
        );
        self.basics.any = Some(any);
    }

    /// Resolves an in-document JSON-pointer reference (`#`, `#/a/~0b/0`, ...)
    /// against the root schema.
    fn resolve_ref(&self, reference: &str, path: &str) -> Result<&'a Value> {
        if reference == "#" {
            return Ok(self.root_schema);
        }
        let rest = reference
            .strip_prefix("#/")
            .ok_or_else(|| self.schema_err(path, format!("unsupported $ref `{reference}`")))?;
        let mut node = self.root_schema;
        for raw in rest.split('/') {
            let part = raw.replace("~1", "/").replace("~0", "~");
            let next = match node {
                Value::Object(map) => map.get(part.as_str()),
                Value::Array(arr) => part.parse::<usize>().ok().and_then(|i| arr.get(i)),
                _ => None,
            };
            node = next.ok_or_else(|| {
                self.schema_err(path, format!("$ref target `{reference}` not found"))
            })?;
        }
        Ok(node)
    }

    /// Returns the (possibly recursive) grammar rule for a pure `$ref`.
    /// The rule is registered *before* converting the target so that a
    /// reference cycle resolves to a rule reference instead of diverging.
    fn ref_rule(&mut self, reference: &str, path: &str) -> Result<RuleId> {
        if let Some(&id) = self.ref_rules.get(reference) {
            return Ok(id);
        }
        let target = self.resolve_ref(reference, path)?;
        let raw = reference.rsplit('/').next().unwrap_or("");
        let mut hint: String = raw
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if hint.trim_matches('_').is_empty() {
            hint = "schema".to_string();
        }
        let name = self.fresh_name(&format!("ref_{hint}"));
        let id = self.builder.declare(&name);
        self.ref_rules.insert(reference.to_string(), id);
        let body = self.convert(target, reference)?;
        self.builder.set_body(id, body);
        Ok(id)
    }

    /// Rejects keywords outside the supported + annotation allowlists
    /// (strict mode only): an unknown keyword would silently widen the
    /// accepted language.
    fn check_keywords(&self, obj: &Map, path: &str) -> Result<()> {
        if self.options.lenient {
            return Ok(());
        }
        for key in obj.keys() {
            if !SUPPORTED_KEYWORDS.contains(&key.as_str())
                && !ANNOTATION_KEYWORDS.contains(&key.as_str())
            {
                return Err(self.schema_err(
                    path,
                    format!(
                        "unknown keyword `{key}` would silently widen the accepted \
                         language (set JsonSchemaOptions::lenient to ignore it)"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Converts a schema node into an expression matching one JSON value.
    fn convert(&mut self, schema: &Value, path: &str) -> Result<GrammarExpr> {
        match schema {
            Value::Bool(true) => Ok(self.any_rule()),
            Value::Bool(false) => Err(self.schema_err(path, "schema `false` matches nothing")),
            Value::Object(obj) => self.convert_map(obj, path),
            other => Err(self.schema_err(path, format!("schema must be an object, got {other}"))),
        }
    }

    fn convert_map(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        self.check_keywords(obj, path)?;
        let ref_with_siblings = obj.get("$ref").is_some()
            && obj
                .keys()
                .any(|k| k != "$ref" && SUPPORTED_KEYWORDS.contains(&k.as_str()));
        if obj.contains_key("allOf") || ref_with_siblings {
            if self.depth >= MAX_FLATTEN_DEPTH {
                return Err(self.schema_err(
                    path,
                    "allOf/$ref nesting too deep (reference cycle through allOf?)",
                ));
            }
            let merged = self.flatten_all_of(obj, path)?;
            self.depth += 1;
            let out = self.convert_map(&merged, path);
            self.depth -= 1;
            return out;
        }
        if let Some(reference) = obj.get("$ref") {
            let reference = reference
                .as_str()
                .ok_or_else(|| self.schema_err(path, "$ref must be a string"))?;
            let id = self.ref_rule(reference, path)?;
            return Ok(GrammarExpr::RuleRef(id));
        }
        if let Some(constant) = obj.get("const") {
            return Ok(GrammarExpr::Literal(
                serde_json::to_string(constant)
                    .expect("serializing a Value cannot fail")
                    .into_bytes(),
            ));
        }
        if let Some(variants) = obj.get("enum") {
            return self.convert_enum(variants, path);
        }
        if let Some(any_of) = obj.get("anyOf").or_else(|| obj.get("oneOf")) {
            return self.convert_any_of(any_of, path);
        }
        match obj.get("type") {
            Some(Value::String(t)) => self.convert_typed(t, obj, path),
            Some(Value::Array(types)) => {
                let mut alts = Vec::new();
                for (i, t) in types.iter().enumerate() {
                    let t = t.as_str().ok_or_else(|| {
                        self.schema_err(path, "type array entries must be strings")
                    })?;
                    alts.push(self.convert_typed(t, obj, &format!("{path}/type/{i}"))?);
                }
                Ok(GrammarExpr::choice(alts))
            }
            Some(other) => Err(self.schema_err(path, format!("invalid `type`: {other}"))),
            None => Ok(self.any_rule()),
        }
    }

    /// Flattens `allOf` (and any `$ref` members) into one merged schema map
    /// by sibling-key intersection, llguidance-style.
    fn flatten_all_of(&mut self, obj: &Map, path: &str) -> Result<Map> {
        let mut base = obj.clone();
        let all_of = base.remove("allOf");
        let mut members: Vec<Map> = Vec::new();
        self.collect_member(&Value::Object(base), path, &mut members, 0)?;
        if let Some(all_of) = all_of {
            let arr = all_of
                .as_array()
                .ok_or_else(|| self.schema_err(path, "allOf must be an array"))?;
            if arr.is_empty() {
                return Err(self.schema_err(path, "allOf must not be empty"));
            }
            for (i, sub) in arr.iter().enumerate() {
                self.collect_member(sub, &format!("{path}/allOf/{i}"), &mut members, 0)?;
            }
        }
        let mut acc = Map::new();
        for member in &members {
            self.merge_member(&mut acc, member, path)?;
        }
        Ok(acc)
    }

    /// Normalizes one `allOf` member: `true` contributes nothing, `false`
    /// fails, `$ref` and nested `allOf` are inlined (bounded by
    /// [`MAX_FLATTEN_DEPTH`] to catch cycles).
    fn collect_member(
        &mut self,
        schema: &Value,
        path: &str,
        out: &mut Vec<Map>,
        depth: usize,
    ) -> Result<()> {
        if depth >= MAX_FLATTEN_DEPTH {
            return Err(self.schema_err(
                path,
                "allOf/$ref nesting too deep (reference cycle through allOf?)",
            ));
        }
        match schema {
            Value::Bool(true) => Ok(()),
            Value::Bool(false) => Err(self.schema_err(path, "schema `false` matches nothing")),
            Value::Object(map) => {
                let mut map = map.clone();
                if let Some(reference) = map.remove("$ref") {
                    let reference = reference
                        .as_str()
                        .ok_or_else(|| self.schema_err(path, "$ref must be a string"))?;
                    let target = self.resolve_ref(reference, path)?.clone();
                    self.collect_member(&target, path, out, depth + 1)?;
                }
                if let Some(inner) = map.remove("allOf") {
                    let arr = inner
                        .as_array()
                        .ok_or_else(|| self.schema_err(path, "allOf must be an array"))?
                        .clone();
                    for (i, sub) in arr.iter().enumerate() {
                        self.collect_member(sub, &format!("{path}/allOf/{i}"), out, depth + 1)?;
                    }
                }
                if !map.is_empty() {
                    out.push(map);
                }
                Ok(())
            }
            other => Err(self.schema_err(path, format!("schema must be an object, got {other}"))),
        }
    }

    /// Merges one member schema into the accumulator, keyword by keyword.
    fn merge_member(&self, acc: &mut Map, member: &Map, path: &str) -> Result<()> {
        for (key, new) in member.iter() {
            let Some(old) = acc.get(key) else {
                acc.insert(key.clone(), new.clone());
                continue;
            };
            if old == new {
                continue;
            }
            let old = old.clone();
            let merged = match key.as_str() {
                "properties" => self.merge_properties(&old, new, path)?,
                "required" => merge_required(&old, new),
                "type" => self.merge_types(&old, new, path)?,
                "minimum" | "exclusiveMinimum" | "minLength" | "minItems" => {
                    self.merge_numeric(&old, new, key, path, true)?
                }
                "maximum" | "exclusiveMaximum" | "maxLength" | "maxItems" => {
                    self.merge_numeric(&old, new, key, path, false)?
                }
                "additionalProperties" => merge_additional_properties(&old, new),
                "enum" => self.merge_enums(&old, new, path)?,
                "items" => all_of_pair(old, new.clone()),
                _ if ANNOTATION_KEYWORDS.contains(&key.as_str()) => continue,
                other => {
                    if self.options.lenient {
                        continue;
                    }
                    return Err(self.schema_err(
                        path,
                        format!("conflicting `{other}` values in allOf cannot be merged"),
                    ));
                }
            };
            acc.insert(key.clone(), merged);
        }
        Ok(())
    }

    fn merge_properties(&self, old: &Value, new: &Value, path: &str) -> Result<Value> {
        let (Some(old), Some(new)) = (old.as_object(), new.as_object()) else {
            return Err(self.schema_err(path, "properties must be an object"));
        };
        let mut merged = old.clone();
        for (name, sub) in new.iter() {
            match merged.get(name) {
                None => {
                    merged.insert(name.clone(), sub.clone());
                }
                Some(existing) if existing == sub => {}
                Some(existing) => {
                    let wrapped = all_of_pair(existing.clone(), sub.clone());
                    merged.insert(name.clone(), wrapped);
                }
            }
        }
        Ok(Value::Object(merged))
    }

    fn merge_types(&self, old: &Value, new: &Value, path: &str) -> Result<Value> {
        let to_list = |v: &Value| -> Option<Vec<String>> {
            match v {
                Value::String(s) => Some(vec![s.clone()]),
                Value::Array(items) => items
                    .iter()
                    .map(|t| t.as_str().map(str::to_string))
                    .collect(),
                _ => None,
            }
        };
        let (Some(a), Some(b)) = (to_list(old), to_list(new)) else {
            return Err(self.schema_err(path, "type must be a string or array of strings"));
        };
        let common: Vec<String> = a.into_iter().filter(|t| b.contains(t)).collect();
        match common.len() {
            0 => Err(self.schema_err(path, "allOf `type` intersection is empty")),
            1 => Ok(Value::String(common.into_iter().next().expect("len 1"))),
            _ => Ok(Value::Array(
                common.into_iter().map(Value::String).collect(),
            )),
        }
    }

    fn merge_numeric(
        &self,
        old: &Value,
        new: &Value,
        key: &str,
        path: &str,
        take_max: bool,
    ) -> Result<Value> {
        let (Some(a), Some(b)) = (old.as_f64(), new.as_f64()) else {
            return Err(self.schema_err(path, format!("`{key}` must be a number")));
        };
        let pick_new = if take_max { b > a } else { b < a };
        Ok(if pick_new { new.clone() } else { old.clone() })
    }

    fn merge_enums(&self, old: &Value, new: &Value, path: &str) -> Result<Value> {
        let (Some(a), Some(b)) = (old.as_array(), new.as_array()) else {
            return Err(self.schema_err(path, "enum must be an array"));
        };
        let common: Vec<Value> = a.iter().filter(|v| b.contains(v)).cloned().collect();
        if common.is_empty() {
            return Err(self.schema_err(path, "allOf `enum` intersection is empty"));
        }
        Ok(Value::Array(common))
    }

    fn convert_enum(&mut self, variants: &Value, path: &str) -> Result<GrammarExpr> {
        let arr = variants
            .as_array()
            .ok_or_else(|| self.schema_err(path, "enum must be an array"))?;
        if arr.is_empty() {
            return Err(self.schema_err(path, "enum must not be empty"));
        }
        let alts = arr
            .iter()
            .map(|v| {
                GrammarExpr::Literal(
                    serde_json::to_string(v)
                        .expect("serializing a Value cannot fail")
                        .into_bytes(),
                )
            })
            .collect();
        Ok(GrammarExpr::choice(alts))
    }

    fn convert_any_of(&mut self, any_of: &Value, path: &str) -> Result<GrammarExpr> {
        let arr = any_of
            .as_array()
            .ok_or_else(|| self.schema_err(path, "anyOf/oneOf must be an array"))?;
        if arr.is_empty() {
            return Err(self.schema_err(path, "anyOf/oneOf must not be empty"));
        }
        let mut alts = Vec::new();
        for (i, sub) in arr.iter().enumerate() {
            alts.push(self.convert(sub, &format!("{path}/anyOf/{i}"))?);
        }
        Ok(GrammarExpr::choice(alts))
    }

    fn convert_typed(&mut self, type_name: &str, obj: &Map, path: &str) -> Result<GrammarExpr> {
        match type_name {
            "string" => self.convert_string(obj, path),
            "integer" => self.convert_integer(obj, path),
            "number" => self.convert_number(obj, path),
            "boolean" => Ok(GrammarExpr::RuleRef(
                self.basics.boolean.expect("installed"),
            )),
            "null" => Ok(GrammarExpr::RuleRef(self.basics.null.expect("installed"))),
            "object" => self.convert_object(obj, path),
            "array" => self.convert_array(obj, path),
            other => Err(self.schema_err(path, format!("unsupported type `{other}`"))),
        }
    }

    fn convert_string(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        let has_length_bounds = obj.contains_key("minLength") || obj.contains_key("maxLength");
        if let Some(pattern) = obj.get("pattern") {
            match pattern.as_str() {
                None if !self.options.lenient => {
                    return Err(self.schema_err(path, "pattern must be a string"));
                }
                None => {}
                Some(p) => {
                    if !self.options.lenient {
                        if obj.contains_key("format") {
                            return Err(self.schema_err(
                                path,
                                "cannot combine `pattern` with `format` on one string schema",
                            ));
                        }
                        if has_length_bounds {
                            return Err(self.schema_err(
                                path,
                                "cannot combine `pattern` with minLength/maxLength",
                            ));
                        }
                    }
                    match regex_pattern_to_expr(p, path) {
                        Ok(content) => {
                            return Ok(GrammarExpr::seq(vec![
                                GrammarExpr::literal("\""),
                                content,
                                GrammarExpr::literal("\""),
                            ]));
                        }
                        Err(err) if !self.options.lenient => return Err(err),
                        Err(_) => {} // lenient: fall back to the plain string grammar
                    }
                }
            }
        }
        if let Some(format) = obj.get("format") {
            match format.as_str() {
                None if !self.options.lenient => {
                    return Err(self.schema_err(path, "format must be a string"));
                }
                None => {}
                Some(name) => {
                    if !self.options.lenient && has_length_bounds {
                        return Err(self
                            .schema_err(path, "cannot combine `format` with minLength/maxLength"));
                    }
                    if let Some(id) = self.format_rule(name, path)? {
                        return Ok(GrammarExpr::RuleRef(id));
                    }
                    // lenient + unknown format: fall through to the plain
                    // (possibly length-bounded) string grammar.
                }
            }
        }
        let min = obj.get("minLength").and_then(Value::as_u64).unwrap_or(0) as u32;
        let max = obj
            .get("maxLength")
            .and_then(Value::as_u64)
            .map(|v| v as u32);
        if min == 0 && max.is_none() {
            return Ok(GrammarExpr::RuleRef(self.basics.string.expect("installed")));
        }
        // Bounded string: "\"" char{min,max} "\"".
        let char_rule = self
            .builder
            .rule_id("json_char")
            .expect("json_char installed");
        Ok(GrammarExpr::seq(vec![
            GrammarExpr::literal("\""),
            GrammarExpr::Repeat {
                expr: Box::new(GrammarExpr::RuleRef(char_rule)),
                min,
                max,
            },
            GrammarExpr::literal("\""),
        ]))
    }

    /// Returns the cached rule for a supported `format` name (the quoted
    /// string), `Ok(None)` for a lenient-mode unknown format.
    fn format_rule(&mut self, name: &str, path: &str) -> Result<Option<RuleId>> {
        if let Some(&id) = self.format_rules.get(name) {
            return Ok(Some(id));
        }
        let Some(compiled) = format_expr(name) else {
            if self.options.lenient {
                return Ok(None);
            }
            return Err(self.schema_err(path, format!("unsupported string format `{name}`")));
        };
        let content = compiled?;
        let rule_name = format!("format_{}", name.replace('-', "_"));
        let id = self.builder.add_rule(
            &rule_name,
            GrammarExpr::seq(vec![
                GrammarExpr::literal("\""),
                content,
                GrammarExpr::literal("\""),
            ]),
        );
        self.format_rules.insert(name.to_string(), id);
        Ok(Some(id))
    }

    /// Extracts a numeric bound, returning `None` when absent (or, in
    /// lenient mode, malformed).
    fn numeric_bound(&self, obj: &Map, key: &str, path: &str) -> Result<Option<f64>> {
        let Some(value) = obj.get(key) else {
            return Ok(None);
        };
        // Bounds beyond ±9e15 exceed exact i64/f64 interop; treat as malformed.
        match value.as_f64().filter(|f| f.is_finite() && f.abs() < 9.0e15) {
            Some(f) => Ok(Some(f)),
            None if self.options.lenient => Ok(None),
            None => Err(self.schema_err(path, format!("`{key}` must be a finite number"))),
        }
    }

    /// Extracts an *exclusive* numeric bound, accepting both the draft-6+
    /// numeric form (`"exclusiveMinimum": 5`) and the draft-4 boolean form
    /// (`"exclusiveMinimum": true`, which makes the sibling `base` keyword —
    /// `minimum`/`maximum` — exclusive). A boolean `false` is a no-op: the
    /// sibling inclusive bound applies on its own.
    fn exclusive_numeric_bound(
        &self,
        obj: &Map,
        key: &str,
        base: &str,
        path: &str,
    ) -> Result<Option<f64>> {
        match obj.get(key) {
            Some(Value::Bool(true)) => {
                let v = self.numeric_bound(obj, base, path)?;
                if v.is_none() && obj.get(base).is_none() && !self.options.lenient {
                    return Err(self.schema_err(
                        path,
                        format!("draft-4 boolean `{key}` requires a sibling `{base}`"),
                    ));
                }
                Ok(v)
            }
            Some(Value::Bool(false)) => Ok(None),
            _ => self.numeric_bound(obj, key, path),
        }
    }

    fn convert_integer(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        if let Some(v) = self.numeric_bound(obj, "minimum", path)? {
            let b = v.ceil() as i64;
            lo = Some(lo.map_or(b, |c| c.max(b)));
        }
        if let Some(v) = self.exclusive_numeric_bound(obj, "exclusiveMinimum", "minimum", path)? {
            let b = v.floor() as i64 + 1;
            lo = Some(lo.map_or(b, |c| c.max(b)));
        }
        if let Some(v) = self.numeric_bound(obj, "maximum", path)? {
            let b = v.floor() as i64;
            hi = Some(hi.map_or(b, |c| c.min(b)));
        }
        if let Some(v) = self.exclusive_numeric_bound(obj, "exclusiveMaximum", "maximum", path)? {
            let b = v.ceil() as i64 - 1;
            hi = Some(hi.map_or(b, |c| c.min(b)));
        }

        if let Some(multiple) = obj.get("multipleOf") {
            let k = multiple
                .as_u64()
                .filter(|&k| (1..=MAX_MULTIPLE_OF).contains(&k));
            match k {
                Some(_) if lo.is_some() || hi.is_some() => {
                    if !self.options.lenient {
                        return Err(self.schema_err(
                            path,
                            "cannot combine `multipleOf` with minimum/maximum bounds",
                        ));
                    }
                    // lenient: keep the bounds, drop the divisibility constraint
                }
                Some(1) => {
                    return Ok(GrammarExpr::RuleRef(
                        self.basics.integer.expect("installed"),
                    ));
                }
                Some(k) => return Ok(self.multiple_of_expr(k)),
                None => {
                    if !self.options.lenient {
                        return Err(self.schema_err(
                            path,
                            format!(
                                "`multipleOf` must be a positive integer \
                                 no greater than {MAX_MULTIPLE_OF}"
                            ),
                        ));
                    }
                }
            }
        }

        if lo.is_none() && hi.is_none() {
            return Ok(GrammarExpr::RuleRef(
                self.basics.integer.expect("installed"),
            ));
        }
        integer_range_expr(lo, hi, path)
    }

    /// Builds a divisibility DFA over decimal digits: one right-recursive
    /// rule per residue class mod `k`, accepting exactly the canonical
    /// decimal integers divisible by `k`.
    fn multiple_of_expr(&mut self, k: u64) -> GrammarExpr {
        let prefix = self.fresh_name("multiple_of");
        let states: Vec<RuleId> = (0..k)
            .map(|s| self.builder.declare(&format!("{prefix}_m{s}")))
            .collect();
        let grouped = |start: u64, state: u64| -> Vec<GrammarExpr> {
            let mut by_next: std::collections::BTreeMap<u64, Vec<u8>> =
                std::collections::BTreeMap::new();
            for d in start..10 {
                by_next
                    .entry((state * 10 + d) % k)
                    .or_default()
                    .push(b'0' + d as u8);
            }
            by_next
                .into_iter()
                .map(|(next, digits)| {
                    GrammarExpr::seq(vec![
                        digit_set_class(&digits),
                        GrammarExpr::RuleRef(states[next as usize]),
                    ])
                })
                .collect()
        };
        for s in 0..k {
            let mut alts = Vec::new();
            if s == 0 {
                alts.push(GrammarExpr::Empty);
            }
            alts.extend(grouped(0, s));
            self.builder
                .set_body(states[s as usize], GrammarExpr::choice(alts));
        }
        // Leading digit 1-9 (no leading zeros); zero itself is spelled "0".
        GrammarExpr::choice(vec![
            GrammarExpr::literal("0"),
            GrammarExpr::seq(vec![
                GrammarExpr::optional(GrammarExpr::literal("-")),
                GrammarExpr::choice(grouped(1, 0)),
            ]),
        ])
    }

    fn convert_number(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        if obj.contains_key("multipleOf") && !self.options.lenient {
            return Err(self.schema_err(
                path,
                "`multipleOf` on type `number` is unsupported (use type `integer`)",
            ));
        }
        let min_inc = self.number_bound(obj, "minimum", path)?;
        let min_exc = self.integer_valued(
            "exclusiveMinimum",
            self.exclusive_numeric_bound(obj, "exclusiveMinimum", "minimum", path)?,
            path,
        )?;
        let max_inc = self.number_bound(obj, "maximum", path)?;
        let max_exc = self.integer_valued(
            "exclusiveMaximum",
            self.exclusive_numeric_bound(obj, "exclusiveMaximum", "maximum", path)?,
            path,
        )?;
        // The stricter lower bound wins: a larger value, or exclusivity on a tie.
        let lower = match (min_inc, min_exc) {
            (Some(a), Some(b)) if b >= a => Some((b, true)),
            (Some(a), _) => Some((a, false)),
            (None, Some(b)) => Some((b, true)),
            (None, None) => None,
        };
        let upper = match (max_inc, max_exc) {
            (Some(a), Some(b)) if b <= a => Some((b, true)),
            (Some(a), _) => Some((a, false)),
            (None, Some(b)) => Some((b, true)),
            (None, None) => None,
        };
        if lower.is_none() && upper.is_none() {
            return Ok(GrammarExpr::RuleRef(self.basics.number.expect("installed")));
        }
        let (lo, lo_exclusive) = lower.map_or((None, false), |(v, e)| (Some(v), e));
        let (hi, hi_exclusive) = upper.map_or((None, false), |(v, e)| (Some(v), e));
        number_range_expr(lo, hi, lo_exclusive, hi_exclusive, path)
    }

    /// Extracts an integer-valued bound for type `number`; fractional bounds
    /// are unsupported (dropped in lenient mode).
    fn number_bound(&self, obj: &Map, key: &str, path: &str) -> Result<Option<i64>> {
        let v = self.numeric_bound(obj, key, path)?;
        self.integer_valued(key, v, path)
    }

    /// Narrows an extracted `number` bound to an integer value; fractional
    /// bounds are unsupported (dropped in lenient mode).
    fn integer_valued(&self, key: &str, value: Option<f64>, path: &str) -> Result<Option<i64>> {
        match value {
            None => Ok(None),
            Some(v) if v.fract() == 0.0 => Ok(Some(v as i64)),
            Some(_) if self.options.lenient => Ok(None),
            Some(v) => Err(self.schema_err(
                path,
                format!("`{key}` on type `number` must be integer-valued, got {v}"),
            )),
        }
    }

    fn convert_object(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        let pad = self.pad();
        let empty_map = Map::new();
        let properties = obj
            .get("properties")
            .and_then(Value::as_object)
            .unwrap_or(&empty_map);
        let required: Vec<String> = obj
            .get("required")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let additional = obj.get("additionalProperties");
        let (allow_additional, additional_schema) = match additional {
            None => (self.options.default_additional_properties, None),
            Some(Value::Bool(b)) => (*b, None),
            Some(schema) => (true, Some(schema.clone())),
        };

        // Build member expressions for each declared property, in order.
        let colon = self.colon();
        let mut members: Vec<(GrammarExpr, bool)> = Vec::new();
        let property_list: Vec<(String, Value)> = properties
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, prop_schema) in &property_list {
            let value_expr = self.convert(prop_schema, &format!("{path}/properties/{name}"))?;
            let key_literal = GrammarExpr::Literal(
                serde_json::to_string(&Value::String(name.clone()))
                    .expect("serializing a string cannot fail")
                    .into_bytes(),
            );
            let member = GrammarExpr::seq(vec![key_literal, colon.clone(), value_expr]);
            members.push((member, required.iter().any(|r| r == name)));
        }

        // Additional members expression (used when additionalProperties allows them).
        let additional_member = if allow_additional {
            let value_expr = match &additional_schema {
                Some(schema) => self.convert(schema, &format!("{path}/additionalProperties"))?,
                None => self.any_rule(),
            };
            Some(GrammarExpr::seq(vec![
                GrammarExpr::RuleRef(self.basics.string.expect("installed")),
                colon.clone(),
                value_expr,
            ]))
        } else {
            None
        };

        // Recursive construction over property suffixes. For each suffix we
        // build two expressions: one assuming no member has been emitted yet
        // (`first`) and one assuming a comma is needed (`rest`).
        let comma = self.comma();
        let additional_tail = additional_member
            .as_ref()
            .map(|m| GrammarExpr::star(GrammarExpr::seq(vec![comma.clone(), m.clone()])));
        // `rest` for the empty suffix.
        let mut rest_suffix: GrammarExpr = additional_tail.clone().unwrap_or(GrammarExpr::Empty);
        // `first` for the empty suffix: either nothing, or additional members.
        let mut first_suffix: GrammarExpr = match &additional_member {
            Some(m) => GrammarExpr::optional(GrammarExpr::seq(vec![
                m.clone(),
                additional_tail.clone().unwrap_or(GrammarExpr::Empty),
            ])),
            None => GrammarExpr::Empty,
        };
        for (member, is_required) in members.into_iter().rev() {
            let hint = self.fresh_name("props");
            // Materialize current suffixes as rules to keep expressions small.
            let rest_rule = self
                .builder
                .add_rule(&format!("{hint}_rest"), rest_suffix.clone());
            let first_rule = self
                .builder
                .add_rule(&format!("{hint}_first"), first_suffix.clone());
            let new_rest = if is_required {
                GrammarExpr::seq(vec![
                    comma.clone(),
                    member.clone(),
                    GrammarExpr::RuleRef(rest_rule),
                ])
            } else {
                GrammarExpr::choice(vec![
                    GrammarExpr::seq(vec![
                        comma.clone(),
                        member.clone(),
                        GrammarExpr::RuleRef(rest_rule),
                    ]),
                    GrammarExpr::RuleRef(rest_rule),
                ])
            };
            let new_first = if is_required {
                GrammarExpr::seq(vec![member.clone(), GrammarExpr::RuleRef(rest_rule)])
            } else {
                GrammarExpr::choice(vec![
                    GrammarExpr::seq(vec![member, GrammarExpr::RuleRef(rest_rule)]),
                    GrammarExpr::RuleRef(first_rule),
                ])
            };
            rest_suffix = new_rest;
            first_suffix = new_first;
        }

        let body_rule_name = self.fresh_name("object_members");
        let members_rule = self.builder.add_rule(&body_rule_name, first_suffix);
        Ok(GrammarExpr::seq(vec![
            GrammarExpr::literal("{"),
            pad.clone(),
            GrammarExpr::RuleRef(members_rule),
            pad,
            GrammarExpr::literal("}"),
        ]))
    }

    fn convert_array(&mut self, obj: &Map, path: &str) -> Result<GrammarExpr> {
        let pad = self.pad();
        let min_items = obj.get("minItems").and_then(Value::as_u64).unwrap_or(0) as u32;
        let max_items = obj
            .get("maxItems")
            .and_then(Value::as_u64)
            .map(|v| v as u32);
        if let Some(max) = max_items {
            if max < min_items {
                return Err(GrammarError::InvalidRepetition {
                    min: min_items,
                    max,
                });
            }
        }

        // prefixItems (tuple validation).
        if let Some(prefix) = obj.get("prefixItems").and_then(Value::as_array) {
            let prefix = prefix.clone();
            let mut parts = vec![GrammarExpr::literal("["), pad.clone()];
            for (i, sub) in prefix.iter().enumerate() {
                if i > 0 {
                    parts.push(self.comma());
                }
                parts.push(self.convert(sub, &format!("{path}/prefixItems/{i}"))?);
            }
            parts.push(pad.clone());
            parts.push(GrammarExpr::literal("]"));
            return Ok(GrammarExpr::seq(parts));
        }

        let item_expr = match obj.get("items") {
            Some(items) => {
                let items = items.clone();
                self.convert(&items, &format!("{path}/items"))?
            }
            None => self.any_rule(),
        };
        let item_rule_name = self.fresh_name("array_item");
        let item_rule = self.builder.add_rule(&item_rule_name, item_expr);
        let item = GrammarExpr::RuleRef(item_rule);
        let comma_item = GrammarExpr::seq(vec![self.comma(), item.clone()]);

        let empty_array = GrammarExpr::seq(vec![
            GrammarExpr::literal("["),
            pad.clone(),
            GrammarExpr::literal("]"),
        ]);
        let non_empty = GrammarExpr::seq(vec![
            GrammarExpr::literal("["),
            pad.clone(),
            item,
            GrammarExpr::Repeat {
                expr: Box::new(comma_item),
                min: min_items.saturating_sub(1),
                max: max_items.map(|m| m.saturating_sub(1)),
            },
            pad.clone(),
            GrammarExpr::literal("]"),
        ]);
        if min_items == 0 {
            if max_items == Some(0) {
                return Ok(empty_array);
            }
            Ok(GrammarExpr::choice(vec![empty_array, non_empty]))
        } else {
            Ok(non_empty)
        }
    }
}

/// `{"allOf": [a, b]}` — the merge fallback for keywords whose constraints
/// compose by conjunction on a nested schema.
fn all_of_pair(a: Value, b: Value) -> Value {
    let mut map = Map::new();
    map.insert("allOf".to_string(), Value::Array(vec![a, b]));
    Value::Object(map)
}

fn merge_required(old: &Value, new: &Value) -> Value {
    let mut union: Vec<Value> = old.as_array().cloned().unwrap_or_default();
    for item in new.as_array().cloned().unwrap_or_default() {
        if !union.contains(&item) {
            union.push(item);
        }
    }
    Value::Array(union)
}

fn merge_additional_properties(old: &Value, new: &Value) -> Value {
    match (old, new) {
        (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
        (Value::Bool(true), other) | (other, Value::Bool(true)) => other.clone(),
        (a, b) => all_of_pair(a.clone(), b.clone()),
    }
}

/// A character class over an ascending list of ASCII digits, merging
/// contiguous runs into ranges.
fn digit_set_class(digits: &[u8]) -> GrammarExpr {
    let mut ranges: Vec<CharRange> = Vec::new();
    for &d in digits {
        let c = d as char;
        match ranges.last_mut() {
            Some(last) if last.end as u32 + 1 == c as u32 => last.end = c,
            _ => ranges.push(CharRange::new(c, c)),
        }
    }
    GrammarExpr::CharClass(CharClass::new(ranges))
}

#[cfg(test)]
#[path = "json_schema_tests.rs"]
mod tests;
