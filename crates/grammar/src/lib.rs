//! Grammar front end for the XGrammar reproduction.
//!
//! This crate provides everything needed to *describe* a structure before it
//! is compiled into a byte-level pushdown automaton by `xg-automata` and
//! executed by `xg-core`:
//!
//! * a grammar AST ([`Grammar`], [`GrammarExpr`], [`CharClass`]),
//! * hashcons interning of sub-expressions ([`ExprInterner`]) backing the
//!   O(1) structural cache key [`Grammar::structural_fingerprint`],
//! * a static-analysis (lint) pass over grammars — reachability,
//!   productivity, nullability and structured [`Diagnostic`]s ([`analyze`]),
//! * a parser for the GBNF-style EBNF text format ([`parse_ebnf`]),
//! * a JSON Schema → grammar converter ([`json_schema_to_grammar`]),
//! * structural tags for agentic tool calling — free text interleaved with
//!   grammar-constrained tagged segments ([`StructuralTag`], [`TagSpec`],
//!   [`TagContent`]),
//! * the built-in grammars used in the paper's evaluation
//!   ([`builtin::json_grammar`], [`builtin::xml_grammar`],
//!   [`builtin::python_dsl_grammar`]).
//!
//! # Examples
//!
//! ```
//! use xg_grammar::parse_ebnf;
//!
//! let grammar = parse_ebnf(r#"
//!     root  ::= "[" item ("," item)* "]"
//!     item  ::= [0-9]+
//! "#, "root")?;
//! assert_eq!(grammar.rules().len(), 2);
//! # Ok::<(), xg_grammar::GrammarError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod ast;
mod bounded_number;
pub mod builtin;
mod display;
mod ebnf;
mod error;
mod formats;
mod intern;
mod json_schema;
mod pattern;
mod structural_tag;

pub use analysis::{analyze, Diagnostic, DiagnosticCode, GrammarAnalysis, Severity};
pub use ast::{
    char_class, char_class_negated, ByteClass, CharClass, CharRange, Grammar, GrammarBuilder,
    GrammarExpr, Rule, RuleId,
};
pub use ebnf::parse_ebnf;
pub use error::{GrammarError, Result};
pub use formats::SUPPORTED_FORMATS;
pub use intern::{grammar_fingerprint, ExprId, ExprInterner, InternStats, InternedExpr};
pub use json_schema::{
    json_schema_to_grammar, json_schema_to_grammar_with_options, JsonSchemaOptions,
    WhitespaceConfig, ANNOTATION_KEYWORDS, SUPPORTED_KEYWORDS,
};
pub use pattern::regex_pattern_to_expr;
pub use structural_tag::{
    append_free_text_tail, DispatchDelta, SegmentExitPolicy, StructuralTag, TagContent, TagSpec,
};
