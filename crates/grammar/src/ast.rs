//! Grammar abstract syntax tree.
//!
//! A [`Grammar`] is a set of named [`Rule`]s, each with a body expression
//! ([`GrammarExpr`]) built from byte literals, Unicode character classes,
//! references to other rules, sequences, choices and bounded or unbounded
//! repetitions. This is the front-end representation that the automata crate
//! compiles into a byte-level pushdown automaton.

use std::collections::HashMap;
use std::fmt;

use crate::error::{GrammarError, Result};

/// Identifier of a rule inside a [`Grammar`].
///
/// Rule ids are dense indices into the grammar's rule table and are stable
/// across cloning the grammar, but not across structural transformations such
/// as inlining (which happen on the automaton, not on the AST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An inclusive range of Unicode scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CharRange {
    /// Lowest character in the range (inclusive).
    pub start: char,
    /// Highest character in the range (inclusive).
    pub end: char,
}

impl CharRange {
    /// Creates a range covering `start..=end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: char, end: char) -> Self {
        assert!(start <= end, "invalid character range");
        CharRange { start, end }
    }

    /// Creates a range covering exactly one character.
    pub fn single(c: char) -> Self {
        CharRange { start: c, end: c }
    }

    /// Returns `true` if `c` falls inside the range.
    #[inline]
    pub fn contains(&self, c: char) -> bool {
        self.start <= c && c <= self.end
    }
}

/// A set of Unicode characters described by ranges, optionally negated.
///
/// `[a-z0-9_]` becomes three positive ranges; `[^"\\]` becomes two ranges with
/// `negated = true` (matching every character *except* those ranges).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CharClass {
    /// The (unnormalized) ranges listed in the class.
    pub ranges: Vec<CharRange>,
    /// Whether the class matches the complement of `ranges`.
    pub negated: bool,
}

impl CharClass {
    /// Creates a positive class from ranges.
    pub fn new(ranges: Vec<CharRange>) -> Self {
        CharClass {
            ranges,
            negated: false,
        }
    }

    /// Creates a negated class from ranges.
    pub fn negated(ranges: Vec<CharRange>) -> Self {
        CharClass {
            ranges,
            negated: true,
        }
    }

    /// A class matching any Unicode scalar value.
    pub fn any() -> Self {
        CharClass {
            ranges: vec![CharRange::new('\0', char::MAX)],
            negated: false,
        }
    }

    /// Returns `true` if `c` is matched by this class.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|r| r.contains(c));
        inside != self.negated
    }

    /// Normalizes the class into a sorted, non-overlapping, non-negated list
    /// of ranges over Unicode scalar values (surrogates excluded).
    pub fn normalized_ranges(&self) -> Vec<CharRange> {
        // Collect positive ranges, clamp into valid scalar values.
        let mut ranges: Vec<(u32, u32)> = self
            .ranges
            .iter()
            .map(|r| (r.start as u32, r.end as u32))
            .collect();
        ranges.sort_unstable();
        // Merge overlapping / adjacent.
        let mut merged: Vec<(u32, u32)> = Vec::new();
        for (s, e) in ranges {
            match merged.last_mut() {
                Some((_, le)) if s <= le.saturating_add(1) => {
                    *le = (*le).max(e);
                }
                _ => merged.push((s, e)),
            }
        }
        let positive = if self.negated {
            // Complement within 0..=0x10FFFF.
            let mut out = Vec::new();
            let mut next = 0u32;
            for (s, e) in &merged {
                if *s > next {
                    out.push((next, s - 1));
                }
                next = e.saturating_add(1);
            }
            if next <= 0x10FFFF {
                out.push((next, 0x10FFFF));
            }
            out
        } else {
            merged
        };
        // Remove the surrogate range D800..=DFFF, converting to chars.
        let mut out = Vec::new();
        for (s, e) in positive {
            if e < 0xD800 || s > 0xDFFF {
                push_char_range(&mut out, s, e);
            } else {
                if s < 0xD800 {
                    push_char_range(&mut out, s, 0xD7FF);
                }
                if e > 0xDFFF {
                    push_char_range(&mut out, 0xE000, e);
                }
            }
        }
        out
    }

    /// Returns `true` if the class matches no character at all.
    pub fn is_empty(&self) -> bool {
        self.normalized_ranges().is_empty()
    }
}

fn push_char_range(out: &mut Vec<CharRange>, s: u32, e: u32) {
    if let (Some(cs), Some(ce)) = (char::from_u32(s), char::from_u32(e.min(0x10FFFF))) {
        out.push(CharRange::new(cs, ce));
    }
}

/// A set of raw byte values described by inclusive `(lo, hi)` ranges — the
/// byte-level sibling of [`CharClass`].
///
/// Where a [`CharClass`] matches one Unicode scalar value (and is lowered to
/// UTF-8 byte sequences during automaton construction, so non-UTF-8 bytes can
/// never match), a `ByteClass` matches exactly one *byte*, whatever it is.
/// This is what free-text continuation tails need: a token may close a tagged
/// segment and continue with the leading bytes of a multi-byte character that
/// the next token completes, and a character-level tail would conservatively
/// reject that split (see [`crate::append_free_text_tail`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ByteClass {
    /// Inclusive `(lo, hi)` byte ranges; a byte matches when any range
    /// contains it.
    pub ranges: Vec<(u8, u8)>,
}

impl ByteClass {
    /// Creates a byte class from inclusive ranges.
    pub fn new(ranges: Vec<(u8, u8)>) -> Self {
        ByteClass { ranges }
    }

    /// A class matching any byte value (`0x00..=0xFF`).
    pub fn any() -> Self {
        ByteClass {
            ranges: vec![(0x00, 0xFF)],
        }
    }

    /// Returns `true` if `b` is matched by this class.
    pub fn contains(&self, b: u8) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi)
    }

    /// Normalizes into a sorted, non-overlapping range list.
    pub fn normalized_ranges(&self) -> Vec<(u8, u8)> {
        let mut ranges: Vec<(u8, u8)> = self
            .ranges
            .iter()
            .filter(|(lo, hi)| lo <= hi)
            .copied()
            .collect();
        ranges.sort_unstable();
        let mut merged: Vec<(u8, u8)> = Vec::new();
        for (lo, hi) in ranges {
            match merged.last_mut() {
                Some((_, mhi)) if lo as u16 <= *mhi as u16 + 1 => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }

    /// Returns `true` if the class matches no byte at all.
    pub fn is_empty(&self) -> bool {
        self.normalized_ranges().is_empty()
    }
}

/// Body expression of a grammar rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GrammarExpr {
    /// The empty string.
    Empty,
    /// A literal byte string (UTF-8 encoding of the written literal).
    Literal(Vec<u8>),
    /// A single character drawn from a character class.
    CharClass(CharClass),
    /// A single raw byte drawn from a [`ByteClass`] (no UTF-8 structure).
    ByteClass(ByteClass),
    /// A reference to another rule.
    RuleRef(RuleId),
    /// A sequence of sub-expressions matched one after another.
    Sequence(Vec<GrammarExpr>),
    /// An ordered choice between alternatives.
    Choice(Vec<GrammarExpr>),
    /// Repetition of a sub-expression between `min` and `max` times
    /// (`max = None` means unbounded).
    Repeat {
        /// Repeated expression.
        expr: Box<GrammarExpr>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions, or `None` for unbounded.
        max: Option<u32>,
    },
}

impl GrammarExpr {
    /// Convenience constructor for a literal from a string.
    pub fn literal(s: &str) -> Self {
        GrammarExpr::Literal(s.as_bytes().to_vec())
    }

    /// Convenience constructor for a Kleene-star repetition.
    pub fn star(expr: GrammarExpr) -> Self {
        GrammarExpr::Repeat {
            expr: Box::new(expr),
            min: 0,
            max: None,
        }
    }

    /// Convenience constructor for a one-or-more repetition.
    pub fn plus(expr: GrammarExpr) -> Self {
        GrammarExpr::Repeat {
            expr: Box::new(expr),
            min: 1,
            max: None,
        }
    }

    /// Convenience constructor for an optional expression.
    pub fn optional(expr: GrammarExpr) -> Self {
        GrammarExpr::Repeat {
            expr: Box::new(expr),
            min: 0,
            max: Some(1),
        }
    }

    /// Convenience constructor for a sequence, flattening nested sequences.
    pub fn seq(items: Vec<GrammarExpr>) -> Self {
        let mut flat = Vec::with_capacity(items.len());
        for it in items {
            match it {
                GrammarExpr::Sequence(inner) => flat.extend(inner),
                GrammarExpr::Empty => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GrammarExpr::Empty,
            1 => flat.pop().expect("len checked"),
            _ => GrammarExpr::Sequence(flat),
        }
    }

    /// Convenience constructor for a choice, flattening nested choices.
    pub fn choice(items: Vec<GrammarExpr>) -> Self {
        let mut flat = Vec::with_capacity(items.len());
        for it in items {
            match it {
                GrammarExpr::Choice(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GrammarExpr::Empty,
            1 => flat.pop().expect("len checked"),
            _ => GrammarExpr::Choice(flat),
        }
    }

    /// Visits every rule reference in the expression tree.
    pub fn for_each_rule_ref(&self, f: &mut impl FnMut(RuleId)) {
        match self {
            GrammarExpr::RuleRef(id) => f(*id),
            GrammarExpr::Sequence(items) | GrammarExpr::Choice(items) => {
                for it in items {
                    it.for_each_rule_ref(f);
                }
            }
            GrammarExpr::Repeat { expr, .. } => expr.for_each_rule_ref(f),
            GrammarExpr::Empty
            | GrammarExpr::Literal(_)
            | GrammarExpr::CharClass(_)
            | GrammarExpr::ByteClass(_) => {}
        }
    }

    /// Returns `true` if the expression can match the empty string, assuming
    /// `nullable_rules[r]` answers the question for referenced rules.
    pub fn is_nullable(&self, nullable_rules: &[bool]) -> bool {
        match self {
            GrammarExpr::Empty => true,
            GrammarExpr::Literal(bytes) => bytes.is_empty(),
            GrammarExpr::CharClass(_) | GrammarExpr::ByteClass(_) => false,
            GrammarExpr::RuleRef(id) => nullable_rules.get(id.index()).copied().unwrap_or(false),
            GrammarExpr::Sequence(items) => items.iter().all(|e| e.is_nullable(nullable_rules)),
            GrammarExpr::Choice(items) => items.iter().any(|e| e.is_nullable(nullable_rules)),
            GrammarExpr::Repeat { expr, min, .. } => *min == 0 || expr.is_nullable(nullable_rules),
        }
    }
}

/// A named grammar rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule name as written in the grammar.
    pub name: String,
    /// Rule body.
    pub body: GrammarExpr,
}

/// A context-free grammar: a list of rules plus the designated root rule.
///
/// # Examples
///
/// ```
/// use xg_grammar::{Grammar, GrammarExpr};
///
/// let mut builder = Grammar::builder();
/// let digit = builder.add_rule("digit", GrammarExpr::Empty);
/// builder.set_body(digit, xg_grammar::char_class(&[('0', '9')]));
/// let number = builder.add_rule("number", GrammarExpr::plus(GrammarExpr::RuleRef(digit)));
/// let grammar = builder.build("number").unwrap();
/// assert_eq!(grammar.root(), number);
/// assert_eq!(grammar.rules().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Grammar {
    rules: Vec<Rule>,
    root: RuleId,
    by_name: HashMap<String, RuleId>,
    /// Lazily computed structural fingerprint (see
    /// [`structural_fingerprint`](Grammar::structural_fingerprint)). Excluded
    /// from `PartialEq`: two structurally equal grammars must compare equal
    /// whether or not either has computed its fingerprint yet.
    fingerprint: std::sync::OnceLock<u64>,
}

impl PartialEq for Grammar {
    fn eq(&self, other: &Self) -> bool {
        self.rules == other.rules && self.root == other.root && self.by_name == other.by_name
    }
}

impl Eq for Grammar {}

impl Grammar {
    /// Creates a new [`GrammarBuilder`].
    pub fn builder() -> GrammarBuilder {
        GrammarBuilder::new()
    }

    /// Returns the rules of the grammar, indexed by [`RuleId`].
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Returns the rule with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this grammar.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Returns the id of the root rule.
    pub fn root(&self) -> RuleId {
        self.root
    }

    /// Looks up a rule by name.
    pub fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.by_name.get(name).copied()
    }

    /// Returns the number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the grammar has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The hashcons-based structural fingerprint of this grammar.
    ///
    /// Computed once by interning every sub-expression in an
    /// [`ExprInterner`](crate::ExprInterner) and combining the per-rule
    /// hashcons hashes; subsequent calls return the cached value, making
    /// repeated cache-key computation O(1) instead of O(grammar size).
    /// Structurally identical grammars — even ones built independently —
    /// produce the same fingerprint.
    pub fn structural_fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| crate::intern::grammar_fingerprint(self))
    }

    /// Computes, for every rule, whether it can derive the empty string.
    pub fn nullable_rules(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.rules.len()];
        loop {
            let mut changed = false;
            for (i, rule) in self.rules.iter().enumerate() {
                if !nullable[i] && rule.body.is_nullable(&nullable) {
                    nullable[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return nullable;
            }
        }
    }

    /// Detects direct or indirect left recursion reachable from the root.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::LeftRecursion`] describing one offending cycle.
    pub fn check_left_recursion(&self) -> Result<()> {
        let nullable = self.nullable_rules();
        // leftmost_refs[r] = rules that can appear at the very start of r's body.
        let mut leftmost: Vec<Vec<RuleId>> = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            let mut refs = Vec::new();
            collect_leftmost_refs(&rule.body, &nullable, &mut refs);
            leftmost.push(refs);
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut marks = vec![Mark::White; self.rules.len()];
        let mut stack: Vec<RuleId> = Vec::new();
        fn dfs(
            g: &Grammar,
            leftmost: &[Vec<RuleId>],
            marks: &mut [Mark],
            stack: &mut Vec<RuleId>,
            node: RuleId,
        ) -> Result<()> {
            marks[node.index()] = Mark::Gray;
            stack.push(node);
            for &next in &leftmost[node.index()] {
                match marks[next.index()] {
                    Mark::Gray => {
                        let pos = stack
                            .iter()
                            .position(|&r| r == next)
                            .unwrap_or(stack.len() - 1);
                        let mut cycle: Vec<String> = stack[pos..]
                            .iter()
                            .map(|r| g.rule(*r).name.clone())
                            .collect();
                        cycle.push(g.rule(next).name.clone());
                        return Err(GrammarError::LeftRecursion {
                            rule: g.rule(next).name.clone(),
                            cycle,
                        });
                    }
                    Mark::White => dfs(g, leftmost, marks, stack, next)?,
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks[node.index()] = Mark::Black;
            Ok(())
        }
        dfs(self, &leftmost, &mut marks, &mut stack, self.root)
    }

    /// Validates the grammar: all references defined (guaranteed by builder),
    /// no empty character or byte classes, no left recursion reachable from
    /// the root.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        for rule in &self.rules {
            let mut empty_class = false;
            visit_classes(&rule.body, &mut |cc| {
                if cc.is_empty() {
                    empty_class = true;
                }
            });
            if empty_class {
                return Err(GrammarError::EmptyCharClass {
                    rule: rule.name.clone(),
                });
            }
        }
        self.check_left_recursion()
    }
}

/// A character or byte class, for validation visitors that treat both alike.
enum ClassRef<'a> {
    Char(&'a CharClass),
    Byte(&'a ByteClass),
}

impl ClassRef<'_> {
    fn is_empty(&self) -> bool {
        match self {
            ClassRef::Char(cc) => cc.is_empty(),
            ClassRef::Byte(bc) => bc.is_empty(),
        }
    }
}

fn visit_classes<'a>(expr: &'a GrammarExpr, f: &mut impl FnMut(ClassRef<'a>)) {
    match expr {
        GrammarExpr::CharClass(cc) => f(ClassRef::Char(cc)),
        GrammarExpr::ByteClass(bc) => f(ClassRef::Byte(bc)),
        GrammarExpr::Sequence(items) | GrammarExpr::Choice(items) => {
            for it in items {
                visit_classes(it, f);
            }
        }
        GrammarExpr::Repeat { expr, .. } => visit_classes(expr, f),
        _ => {}
    }
}

fn collect_leftmost_refs(expr: &GrammarExpr, nullable: &[bool], out: &mut Vec<RuleId>) {
    match expr {
        GrammarExpr::RuleRef(id) => out.push(*id),
        GrammarExpr::Sequence(items) => {
            for it in items {
                collect_leftmost_refs(it, nullable, out);
                if !it.is_nullable(nullable) {
                    break;
                }
            }
        }
        GrammarExpr::Choice(items) => {
            for it in items {
                collect_leftmost_refs(it, nullable, out);
            }
        }
        GrammarExpr::Repeat { expr, .. } => collect_leftmost_refs(expr, nullable, out),
        GrammarExpr::Empty
        | GrammarExpr::Literal(_)
        | GrammarExpr::CharClass(_)
        | GrammarExpr::ByteClass(_) => {}
    }
}

/// Incremental builder for [`Grammar`].
///
/// Rules can be declared before their bodies are known (useful for mutually
/// recursive rules) via [`GrammarBuilder::declare`] and filled in later with
/// [`GrammarBuilder::set_body`].
#[derive(Debug, Default, Clone)]
pub struct GrammarBuilder {
    rules: Vec<Rule>,
    by_name: HashMap<String, RuleId>,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a rule with an empty body, returning its id. If a rule with
    /// the same name was already declared, its existing id is returned.
    pub fn declare(&mut self, name: &str) -> RuleId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(Rule {
            name: name.to_string(),
            body: GrammarExpr::Empty,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a rule with the given body, returning its id.
    ///
    /// If the rule was previously declared (even with a body), the body is
    /// replaced.
    pub fn add_rule(&mut self, name: &str, body: GrammarExpr) -> RuleId {
        let id = self.declare(name);
        self.rules[id.index()].body = body;
        id
    }

    /// Replaces the body of a previously declared rule.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this builder.
    pub fn set_body(&mut self, id: RuleId, body: GrammarExpr) {
        self.rules[id.index()].body = body;
    }

    /// Looks up the id of a declared rule.
    pub fn rule_id(&self, name: &str) -> Option<RuleId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of a declared rule.
    pub fn rule_name(&self, id: RuleId) -> Option<&str> {
        self.rules.get(id.index()).map(|r| r.name.as_str())
    }

    /// Returns the number of declared rules so far.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if no rules were declared.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Finalizes the grammar with the named rule as root.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::MissingRoot`] if `root` was never declared,
    /// [`GrammarError::UndefinedRule`] if any body references an id outside
    /// the builder (impossible through the public API, kept as a guard),
    /// [`GrammarError::InvalidRepetition`] if any repetition has `min > max`,
    /// or [`GrammarError::EmptyChoice`] if any body contains a directly
    /// constructed choice with zero alternatives (note that
    /// [`GrammarExpr::choice`] collapses that case to [`GrammarExpr::Empty`],
    /// so it only arises from hand-built `Choice` values).
    pub fn build(self, root: &str) -> Result<Grammar> {
        let root_id = self
            .by_name
            .get(root)
            .copied()
            .ok_or_else(|| GrammarError::MissingRoot {
                name: root.to_string(),
            })?;
        // Guard against out-of-range ids (only possible via hand-crafted ids).
        for rule in &self.rules {
            let mut bad: Option<RuleId> = None;
            rule.body.for_each_rule_ref(&mut |id| {
                if id.index() >= self.rules.len() && bad.is_none() {
                    bad = Some(id);
                }
            });
            if let Some(id) = bad {
                return Err(GrammarError::UndefinedRule {
                    name: format!("{id}"),
                    referenced_from: rule.name.clone(),
                });
            }
            check_degenerate(&rule.body, &rule.name)?;
        }
        Ok(Grammar {
            rules: self.rules,
            root: root_id,
            by_name: self.by_name,
            fingerprint: std::sync::OnceLock::new(),
        })
    }
}

/// Rejects structurally degenerate expressions that could only ever match
/// nothing: repetitions with `min > max` and directly constructed choices
/// with zero alternatives. Run by [`GrammarBuilder::build`] so such shapes
/// never compile silently.
fn check_degenerate(expr: &GrammarExpr, rule: &str) -> Result<()> {
    match expr {
        GrammarExpr::Choice(items) if items.is_empty() => Err(GrammarError::EmptyChoice {
            rule: rule.to_string(),
        }),
        GrammarExpr::Sequence(items) | GrammarExpr::Choice(items) => {
            for it in items {
                check_degenerate(it, rule)?;
            }
            Ok(())
        }
        GrammarExpr::Repeat { expr, min, max } => {
            if let Some(max) = max {
                if min > max {
                    return Err(GrammarError::InvalidRepetition {
                        min: *min,
                        max: *max,
                    });
                }
            }
            check_degenerate(expr, rule)
        }
        _ => Ok(()),
    }
}

/// Shorthand for building a positive character class from `(start, end)`
/// pairs.
///
/// # Examples
///
/// ```
/// let expr = xg_grammar::char_class(&[('a', 'z'), ('0', '9')]);
/// ```
pub fn char_class(ranges: &[(char, char)]) -> GrammarExpr {
    GrammarExpr::CharClass(CharClass::new(
        ranges.iter().map(|&(s, e)| CharRange::new(s, e)).collect(),
    ))
}

/// Shorthand for building a negated character class from `(start, end)` pairs.
pub fn char_class_negated(ranges: &[(char, char)]) -> GrammarExpr {
    GrammarExpr::CharClass(CharClass::negated(
        ranges.iter().map(|&(s, e)| CharRange::new(s, e)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> GrammarExpr {
        GrammarExpr::literal(s)
    }

    #[test]
    fn builder_declares_and_builds() {
        let mut b = Grammar::builder();
        let value = b.declare("value");
        b.add_rule("root", GrammarExpr::RuleRef(value));
        b.set_body(value, lit("x"));
        let g = b.build("root").unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.rule(g.root()).name, "root");
        assert_eq!(g.rule_id("value"), Some(value));
    }

    #[test]
    fn missing_root_is_an_error() {
        let b = Grammar::builder();
        let err = b.build("root").unwrap_err();
        assert!(matches!(err, GrammarError::MissingRoot { .. }));
    }

    #[test]
    fn char_class_negation_and_contains() {
        let cc = CharClass::negated(vec![CharRange::single('"'), CharRange::single('\\')]);
        assert!(cc.contains('a'));
        assert!(!cc.contains('"'));
        assert!(!cc.contains('\\'));
    }

    #[test]
    fn normalized_ranges_merge_and_complement() {
        let cc = CharClass::new(vec![
            CharRange::new('a', 'f'),
            CharRange::new('d', 'k'),
            CharRange::new('m', 'm'),
        ]);
        let norm = cc.normalized_ranges();
        assert_eq!(norm.len(), 2);
        assert_eq!(norm[0], CharRange::new('a', 'k'));

        let neg = CharClass::negated(vec![CharRange::new('\0', char::MAX)]);
        assert!(neg.is_empty());
    }

    #[test]
    fn normalized_ranges_skip_surrogates() {
        let cc = CharClass::any();
        let norm = cc.normalized_ranges();
        for r in &norm {
            assert!(!(0xD800..=0xDFFF).contains(&(r.start as u32)));
            assert!(!(0xD800..=0xDFFF).contains(&(r.end as u32)));
        }
    }

    #[test]
    fn nullable_computation() {
        let mut b = Grammar::builder();
        let ws = b.add_rule("ws", GrammarExpr::star(char_class(&[(' ', ' ')])));
        let item = b.add_rule("item", lit("x"));
        b.add_rule(
            "root",
            GrammarExpr::seq(vec![GrammarExpr::RuleRef(ws), GrammarExpr::RuleRef(item)]),
        );
        let g = b.build("root").unwrap();
        let nullable = g.nullable_rules();
        assert!(nullable[ws.index()]);
        assert!(!nullable[item.index()]);
    }

    #[test]
    fn detects_direct_left_recursion() {
        let mut b = Grammar::builder();
        let expr = b.declare("expr");
        b.set_body(
            expr,
            GrammarExpr::choice(vec![
                GrammarExpr::seq(vec![GrammarExpr::RuleRef(expr), lit("+x")]),
                lit("x"),
            ]),
        );
        let g = b.build("expr").unwrap();
        assert!(matches!(
            g.check_left_recursion(),
            Err(GrammarError::LeftRecursion { .. })
        ));
    }

    #[test]
    fn detects_indirect_left_recursion_through_nullable() {
        let mut b = Grammar::builder();
        let a = b.declare("a");
        let ws = b.add_rule("ws", GrammarExpr::star(char_class(&[(' ', ' ')])));
        // a ::= ws b ; b ::= a "x" — the ws prefix is nullable so this is
        // still left recursion.
        let bb = b.declare("b");
        b.set_body(
            a,
            GrammarExpr::seq(vec![GrammarExpr::RuleRef(ws), GrammarExpr::RuleRef(bb)]),
        );
        b.set_body(
            bb,
            GrammarExpr::seq(vec![GrammarExpr::RuleRef(a), lit("x")]),
        );
        let g = b.build("a").unwrap();
        assert!(matches!(
            g.check_left_recursion(),
            Err(GrammarError::LeftRecursion { .. })
        ));
    }

    #[test]
    fn right_recursion_is_allowed() {
        let mut b = Grammar::builder();
        let list = b.declare("list");
        b.set_body(
            list,
            GrammarExpr::choice(vec![
                GrammarExpr::seq(vec![lit("x"), GrammarExpr::RuleRef(list)]),
                lit("x"),
            ]),
        );
        let g = b.build("list").unwrap();
        assert!(g.check_left_recursion().is_ok());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn seq_and_choice_flatten() {
        let e = GrammarExpr::seq(vec![
            GrammarExpr::Sequence(vec![lit("a"), lit("b")]),
            GrammarExpr::Empty,
            lit("c"),
        ]);
        match e {
            GrammarExpr::Sequence(items) => assert_eq!(items.len(), 3),
            other => panic!("expected sequence, got {other:?}"),
        }
        let c = GrammarExpr::choice(vec![
            GrammarExpr::Choice(vec![lit("a"), lit("b")]),
            lit("c"),
        ]);
        match c {
            GrammarExpr::Choice(items) => assert_eq!(items.len(), 3),
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_repetition_fails_build() {
        let mut b = Grammar::builder();
        b.add_rule(
            "root",
            GrammarExpr::Repeat {
                expr: Box::new(lit("a")),
                min: 5,
                max: Some(2),
            },
        );
        assert!(matches!(
            b.build("root"),
            Err(GrammarError::InvalidRepetition { min: 5, max: 2 })
        ));
    }

    #[test]
    fn direct_empty_choice_fails_build() {
        let mut b = Grammar::builder();
        b.add_rule("root", GrammarExpr::Choice(vec![]));
        assert!(matches!(
            b.build("root"),
            Err(GrammarError::EmptyChoice { .. })
        ));
        // The smart constructor collapses the same input to Empty, which is
        // fine.
        let mut b = Grammar::builder();
        b.add_rule("root", GrammarExpr::choice(vec![]));
        assert!(b.build("root").is_ok());
    }

    #[test]
    fn nested_degenerate_repetition_fails_build() {
        let mut b = Grammar::builder();
        b.add_rule(
            "root",
            GrammarExpr::seq(vec![
                lit("x"),
                GrammarExpr::choice(vec![
                    lit("y"),
                    GrammarExpr::Repeat {
                        expr: Box::new(lit("z")),
                        min: 3,
                        max: Some(1),
                    },
                ]),
            ]),
        );
        assert!(matches!(
            b.build("root"),
            Err(GrammarError::InvalidRepetition { .. })
        ));
    }

    #[test]
    fn empty_char_class_fails_validation() {
        let mut b = Grammar::builder();
        b.add_rule("root", GrammarExpr::CharClass(CharClass::new(vec![])));
        let g = b.build("root").unwrap();
        assert!(matches!(
            g.validate(),
            Err(GrammarError::EmptyCharClass { .. })
        ));
    }
}
