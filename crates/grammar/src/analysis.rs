//! Static analysis ("lint") of grammars, run before compilation.
//!
//! The whole point of grammar preprocessing is to pay constraint costs at
//! compile time instead of in the per-token decode loop — and that includes
//! *discovering that a constraint is broken*. A grammar whose root can never
//! derive a string, an unbounded repetition that can loop without consuming
//! input, or a character class that matches nothing are all cheap to detect
//! here and expensive to discover at serve time (as a lane that never
//! terminates or a mask that is all zeros).
//!
//! [`analyze`] computes three classic grammar properties as fixpoints —
//! per-rule **reachability** from the root, **productivity** (can the rule
//! derive at least one terminal string) and **nullability** (can it derive
//! the empty string) — and reports pathologies as structured
//! [`Diagnostic`]s. Each diagnostic carries a stable [`DiagnosticCode`] and a
//! [`Severity`]: errors describe grammars that are unsafe to serve
//! (unsatisfiable, or able to spin forever), warnings describe dead weight
//! (unreachable rules, choice arms that can never match).
//!
//! Two codes — [`DiagnosticCode::DeadState`] and
//! [`DiagnosticCode::DeadTrigger`] — are defined here but emitted by the
//! vocabulary-aware lint layer in `xg-core`, which has access to the compiled
//! automaton and the actual token vocabulary.
//!
//! # Examples
//!
//! ```
//! use xg_grammar::{analyze, parse_ebnf, DiagnosticCode, Severity};
//!
//! // `a` has no base case: it can never derive a terminal string, so the
//! // root (which requires it) matches nothing at all.
//! let grammar = parse_ebnf(
//!     r#"
//!     root ::= a
//!     a ::= "x" a
//!     "#,
//!     "root",
//! )
//! .unwrap();
//! let analysis = analyze(&grammar);
//! assert!(analysis.has_errors());
//! assert!(analysis
//!     .diagnostics
//!     .iter()
//!     .any(|d| d.code == DiagnosticCode::UnsatisfiableGrammar && d.severity == Severity::Error));
//! ```

use std::fmt;

use crate::ast::{Grammar, GrammarExpr, RuleId};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Dead weight: the grammar works, but part of it can never match.
    Warning,
    /// The grammar is unsafe to serve: it matches nothing, or a matcher
    /// driving it can get stuck without consuming input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of a class of lint findings.
///
/// The kebab-case rendering (via [`DiagnosticCode::as_str`]) is the public
/// name used in reports and tests; the enum variants are the programmatic
/// handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// A rule is never referenced (directly or transitively) from the root.
    UnreachableRule,
    /// A reachable rule cannot derive any terminal string (for example
    /// recursion with no base case); every reference to it is dead.
    UnproductiveRule,
    /// The root rule cannot derive any terminal string: the grammar matches
    /// nothing, and every mask it produces would be all zeros.
    UnsatisfiableGrammar,
    /// A character or byte class matches no character/byte at all.
    EmptyClass,
    /// An explicit choice with zero alternatives (matches nothing).
    EmptyChoice,
    /// A repetition whose minimum exceeds its maximum can never be satisfied.
    InvalidRepetition,
    /// An unbounded repetition over a nullable body: a derivation can loop
    /// forever without consuming input.
    NullableRepetition,
    /// A reachable automaton state admits zero tokens of the actual
    /// vocabulary: a decode lane stuck there can never advance. Emitted by
    /// the vocabulary-aware lint layer in `xg-core`.
    DeadState,
    /// A structural-tag trigger whose segment grammar is unproductive: the
    /// trigger can fire but the tagged segment can never complete. Emitted by
    /// the structural-tag lint layer in `xg-core`.
    DeadTrigger,
}

impl DiagnosticCode {
    /// The stable kebab-case name of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::UnreachableRule => "unreachable-rule",
            DiagnosticCode::UnproductiveRule => "unproductive-rule",
            DiagnosticCode::UnsatisfiableGrammar => "unsatisfiable-grammar",
            DiagnosticCode::EmptyClass => "empty-class",
            DiagnosticCode::EmptyChoice => "empty-choice",
            DiagnosticCode::InvalidRepetition => "invalid-repetition",
            DiagnosticCode::NullableRepetition => "nullable-repetition",
            DiagnosticCode::DeadState => "dead-state",
            DiagnosticCode::DeadTrigger => "dead-trigger",
        }
    }

    /// The severity this code is reported with.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::UnreachableRule
            | DiagnosticCode::UnproductiveRule
            | DiagnosticCode::EmptyClass
            | DiagnosticCode::EmptyChoice
            | DiagnosticCode::InvalidRepetition => Severity::Warning,
            DiagnosticCode::UnsatisfiableGrammar
            | DiagnosticCode::NullableRepetition
            | DiagnosticCode::DeadState
            | DiagnosticCode::DeadTrigger => Severity::Error,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding: a code, its severity, the rule it anchors to (if any)
/// and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule the finding is about, when it anchors to one. Vocabulary-
    /// aware findings ([`DiagnosticCode::DeadState`],
    /// [`DiagnosticCode::DeadTrigger`]) anchor to automaton structure
    /// instead and leave this empty.
    pub rule: Option<RuleId>,
    /// How serious the finding is.
    pub severity: Severity,
    /// The stable class of the finding.
    pub code: DiagnosticCode,
    /// Human-readable description (includes the rule name where relevant).
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: DiagnosticCode, rule: Option<RuleId>, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: code.severity(),
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Result of [`analyze`]: the three per-rule property tables plus the
/// diagnostics derived from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarAnalysis {
    /// `reachable[r]`: rule `r` is referenced (transitively) from the root.
    pub reachable: Vec<bool>,
    /// `productive[r]`: rule `r` can derive at least one terminal string.
    pub productive: Vec<bool>,
    /// `nullable[r]`: rule `r` can derive the empty string.
    pub nullable: Vec<bool>,
    /// Findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl GrammarAnalysis {
    /// Returns `true` if any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Iterates over the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// One-line summary of the errors (empty string when there are none),
    /// suitable for embedding in error messages.
    pub fn error_summary(&self) -> String {
        let msgs: Vec<&str> = self.errors().map(|d| d.message.as_str()).collect();
        msgs.join("; ")
    }
}

/// Returns `true` if `expr` can derive at least one terminal string, given
/// per-rule verdicts for referenced rules (rules not yet known productive
/// count as unproductive — the bottom of the fixpoint).
fn expr_productive(expr: &GrammarExpr, productive: &[bool]) -> bool {
    match expr {
        GrammarExpr::Empty => true,
        // The empty literal derives the empty string, which is a (trivial)
        // terminal string.
        GrammarExpr::Literal(_) => true,
        GrammarExpr::CharClass(cc) => !cc.is_empty(),
        GrammarExpr::ByteClass(bc) => !bc.is_empty(),
        GrammarExpr::RuleRef(id) => productive.get(id.index()).copied().unwrap_or(false),
        GrammarExpr::Sequence(items) => items.iter().all(|e| expr_productive(e, productive)),
        // `GrammarExpr::choice` collapses zero alternatives to `Empty`, so an
        // empty `Choice` only arises from direct construction — and it
        // matches nothing.
        GrammarExpr::Choice(items) => items.iter().any(|e| expr_productive(e, productive)),
        GrammarExpr::Repeat { expr, min, max } => {
            if let Some(max) = max {
                if min > max {
                    return false;
                }
            }
            *min == 0 || expr_productive(expr, productive)
        }
    }
}

/// Walks `expr` reporting structurally degenerate sub-expressions as
/// diagnostics anchored to `rule`.
fn lint_expr(
    expr: &GrammarExpr,
    rule: RuleId,
    rule_name: &str,
    nullable: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    match expr {
        GrammarExpr::CharClass(cc) if cc.is_empty() => {
            out.push(Diagnostic::new(
                DiagnosticCode::EmptyClass,
                Some(rule),
                format!("rule `{rule_name}` contains a character class that matches no character"),
            ));
        }
        GrammarExpr::ByteClass(bc) if bc.is_empty() => {
            out.push(Diagnostic::new(
                DiagnosticCode::EmptyClass,
                Some(rule),
                format!("rule `{rule_name}` contains a byte class that matches no byte"),
            ));
        }
        GrammarExpr::Choice(items) if items.is_empty() => {
            out.push(Diagnostic::new(
                DiagnosticCode::EmptyChoice,
                Some(rule),
                format!("rule `{rule_name}` contains a choice with zero alternatives"),
            ));
        }
        GrammarExpr::Sequence(items) | GrammarExpr::Choice(items) => {
            for it in items {
                lint_expr(it, rule, rule_name, nullable, out);
            }
        }
        GrammarExpr::Repeat { expr, min, max } => {
            if let Some(max) = max {
                if min > max {
                    out.push(Diagnostic::new(
                        DiagnosticCode::InvalidRepetition,
                        Some(rule),
                        format!(
                            "rule `{rule_name}` contains a repetition with min {min} > max {max}"
                        ),
                    ));
                }
            } else if expr.is_nullable(nullable) {
                out.push(Diagnostic::new(
                    DiagnosticCode::NullableRepetition,
                    Some(rule),
                    format!(
                        "rule `{rule_name}` contains an unbounded repetition over a nullable \
                         body; a derivation can loop forever without consuming input"
                    ),
                ));
            }
            lint_expr(expr, rule, rule_name, nullable, out);
        }
        _ => {}
    }
}

/// Runs the full static analysis over a grammar.
///
/// Computes reachability, productivity and nullability for every rule and
/// derives diagnostics:
///
/// | code | severity | meaning |
/// |------|----------|---------|
/// | `unreachable-rule` | warning | rule never referenced from the root |
/// | `unproductive-rule` | warning | reachable rule derives no terminal string |
/// | `unsatisfiable-grammar` | error | the *root* derives no terminal string |
/// | `empty-class` | warning | char/byte class matching nothing |
/// | `empty-choice` | warning | explicit choice with zero alternatives |
/// | `invalid-repetition` | warning | repetition with `min > max` |
/// | `nullable-repetition` | error | unbounded repetition over a nullable body |
///
/// Structural findings (`empty-class`, `empty-choice`, `invalid-repetition`,
/// `nullable-repetition`) are only reported for *reachable* rules: dead code
/// is already covered by `unreachable-rule`, and its internals cannot affect
/// decoding.
pub fn analyze(grammar: &Grammar) -> GrammarAnalysis {
    let n = grammar.rules().len();
    let nullable = grammar.nullable_rules();

    // Productivity: bottom-up fixpoint, starting from "nothing is productive".
    let mut productive = vec![false; n];
    loop {
        let mut changed = false;
        for (i, rule) in grammar.rules().iter().enumerate() {
            if !productive[i] && expr_productive(&rule.body, &productive) {
                productive[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reachability: BFS over rule references from the root.
    let mut reachable = vec![false; n];
    let root = grammar.root();
    if root.index() < n {
        reachable[root.index()] = true;
        let mut queue = vec![root];
        while let Some(id) = queue.pop() {
            grammar.rule(id).body.for_each_rule_ref(&mut |next| {
                if next.index() < n && !reachable[next.index()] {
                    reachable[next.index()] = true;
                    queue.push(next);
                }
            });
        }
    }

    let mut diagnostics = Vec::new();
    for (i, rule) in grammar.rules().iter().enumerate() {
        let id = RuleId(i as u32);
        if !reachable[i] {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::UnreachableRule,
                Some(id),
                format!("rule `{}` is never referenced from the root", rule.name),
            ));
            continue;
        }
        if !productive[i] {
            if id == root {
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::UnsatisfiableGrammar,
                    Some(id),
                    format!(
                        "root rule `{}` cannot derive any terminal string; the grammar \
                         matches nothing",
                        rule.name
                    ),
                ));
            } else {
                diagnostics.push(Diagnostic::new(
                    DiagnosticCode::UnproductiveRule,
                    Some(id),
                    format!("rule `{}` cannot derive any terminal string", rule.name),
                ));
            }
        }
        lint_expr(&rule.body, id, &rule.name, &nullable, &mut diagnostics);
    }

    GrammarAnalysis {
        reachable,
        productive,
        nullable,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CharClass, GrammarBuilder};
    use crate::parse_ebnf;

    fn codes(analysis: &GrammarAnalysis) -> Vec<DiagnosticCode> {
        analysis.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_grammar_has_no_diagnostics() {
        let g = parse_ebnf(r#"root ::= "[" [0-9]+ ("," [0-9]+)* "]""#, "root").unwrap();
        let a = analyze(&g);
        assert!(a.diagnostics.is_empty(), "diagnostics: {:?}", a.diagnostics);
        assert!(a.productive.iter().all(|&p| p));
        assert!(a.reachable.iter().all(|&r| r));
        assert!(!a.has_errors());
    }

    #[test]
    fn unreachable_rule_is_a_warning() {
        let g = parse_ebnf(
            r#"
            root ::= "a"
            orphan ::= "b"
            "#,
            "root",
        )
        .unwrap();
        let a = analyze(&g);
        assert_eq!(codes(&a), vec![DiagnosticCode::UnreachableRule]);
        assert!(!a.has_errors());
        let orphan = g.rule_id("orphan").unwrap();
        assert!(!a.reachable[orphan.index()]);
    }

    #[test]
    fn unproductive_non_root_rule_is_a_warning() {
        // `loop_` recurses without a base case; root still matches "ok".
        let g = parse_ebnf(
            r#"
            root ::= "ok" | loop_
            loop_ ::= "x" loop_
            "#,
            "root",
        )
        .unwrap();
        let a = analyze(&g);
        assert_eq!(codes(&a), vec![DiagnosticCode::UnproductiveRule]);
        assert!(!a.has_errors());
        assert!(a.productive[g.root().index()]);
        assert!(!a.productive[g.rule_id("loop_").unwrap().index()]);
    }

    #[test]
    fn unsatisfiable_root_is_an_error() {
        let g = parse_ebnf(
            r#"
            root ::= a
            a ::= "x" a
            "#,
            "root",
        )
        .unwrap();
        let a = analyze(&g);
        assert!(a.has_errors());
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableGrammar));
        assert!(codes(&a).contains(&DiagnosticCode::UnproductiveRule));
        assert!(!a.error_summary().is_empty());
    }

    #[test]
    fn empty_class_in_a_live_choice_is_a_warning() {
        let mut b = GrammarBuilder::new();
        b.add_rule(
            "root",
            GrammarExpr::Choice(vec![
                GrammarExpr::literal("a"),
                GrammarExpr::CharClass(CharClass::new(vec![])),
            ]),
        );
        let g = b.build("root").unwrap();
        let a = analyze(&g);
        assert_eq!(codes(&a), vec![DiagnosticCode::EmptyClass]);
        assert!(!a.has_errors(), "the `a` arm keeps the root satisfiable");
    }

    #[test]
    fn load_bearing_empty_class_is_unsatisfiable() {
        let mut b = GrammarBuilder::new();
        b.add_rule("root", GrammarExpr::CharClass(CharClass::new(vec![])));
        let g = b.build("root").unwrap();
        let a = analyze(&g);
        assert!(a.has_errors());
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableGrammar));
        assert!(codes(&a).contains(&DiagnosticCode::EmptyClass));
    }

    #[test]
    fn nullable_unbounded_repetition_is_an_error() {
        // ("a"?)* can loop forever matching the empty body.
        let mut b = GrammarBuilder::new();
        b.add_rule(
            "root",
            GrammarExpr::star(GrammarExpr::optional(GrammarExpr::literal("a"))),
        );
        let g = b.build("root").unwrap();
        let a = analyze(&g);
        assert_eq!(codes(&a), vec![DiagnosticCode::NullableRepetition]);
        assert!(a.has_errors());
    }

    #[test]
    fn bounded_repetition_over_nullable_body_is_fine() {
        let mut b = GrammarBuilder::new();
        b.add_rule(
            "root",
            GrammarExpr::Repeat {
                expr: Box::new(GrammarExpr::optional(GrammarExpr::literal("a"))),
                min: 0,
                max: Some(8),
            },
        );
        let g = b.build("root").unwrap();
        assert!(analyze(&g).diagnostics.is_empty());
    }

    #[test]
    fn unreachable_rule_internals_are_not_linted() {
        // The orphan contains an empty class, but only unreachable-rule is
        // reported for it.
        let mut b = GrammarBuilder::new();
        b.add_rule("root", GrammarExpr::literal("a"));
        b.add_rule("orphan", GrammarExpr::CharClass(CharClass::new(vec![])));
        let g = b.build("root").unwrap();
        let a = analyze(&g);
        assert_eq!(codes(&a), vec![DiagnosticCode::UnreachableRule]);
    }

    #[test]
    fn builtin_json_grammar_lints_clean() {
        let a = analyze(&crate::builtin::json_grammar());
        assert!(a.diagnostics.is_empty(), "diagnostics: {:?}", a.diagnostics);
    }

    #[test]
    fn star_of_plus_is_not_flagged() {
        // A `+` body is not nullable, so `(x+)*` is fine.
        let g = parse_ebnf(r#"root ::= ([a-z]+)*"#, "root").unwrap();
        let a = analyze(&g);
        assert!(a.diagnostics.is_empty(), "diagnostics: {:?}", a.diagnostics);
    }

    #[test]
    fn diagnostic_display_is_stable() {
        let d = Diagnostic::new(
            DiagnosticCode::UnsatisfiableGrammar,
            Some(RuleId(0)),
            "root rule `root` cannot derive any terminal string",
        );
        assert_eq!(
            d.to_string(),
            "error[unsatisfiable-grammar]: root rule `root` cannot derive any terminal string"
        );
        assert_eq!(DiagnosticCode::DeadState.as_str(), "dead-state");
        assert_eq!(DiagnosticCode::DeadState.severity(), Severity::Error);
        assert_eq!(DiagnosticCode::DeadTrigger.severity(), Severity::Error);
    }

    #[test]
    fn nullability_table_matches_grammar_method() {
        let g = parse_ebnf(
            r#"
            root ::= ws "x" ws
            ws ::= [ ]*
            "#,
            "root",
        )
        .unwrap();
        let a = analyze(&g);
        assert_eq!(a.nullable, g.nullable_rules());
    }
}
