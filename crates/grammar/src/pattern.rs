//! Regex `pattern` → [`GrammarExpr`] compilation for JSON Schema strings.
//!
//! JSON Schema's `pattern` keyword (and the built-in `format` grammars, which
//! are defined as regexes over the same dialect) describe the *content* of a
//! JSON string. This module compiles a practical regex subset into a grammar
//! expression that generates the content **as it appears inside the quoted
//! JSON serialization**:
//!
//! * characters that must be escaped in JSON (`"`, `\`) are emitted as their
//!   two-character escape sequences,
//! * control characters required by a *literal* are emitted as their JSON
//!   escapes (`\n`, `\t`, `\u00XX`),
//! * control characters inside *character classes* are dropped from the class
//!   (the grammar narrows rather than widens — constrained decoding must
//!   never emit invalid JSON).
//!
//! Supported syntax: literals, `.`, character classes (`[a-z0-9_]`,
//! `[^...]`, ranges, class escapes), escapes (`\d \D \w \W \s \S`, `\n \r \t
//! \f \v \0`, `\xHH`, `\uHHHH`, escaped metacharacters), groups `(...)` /
//! `(?:...)` / `(?<name>...)` / `(?P<name>...)`, alternation `|`, and the
//! quantifiers `* + ? {m} {m,} {m,n}` (lazy variants accepted — laziness does
//! not change the matched language). Patterns are **anchored**: a leading `^`
//! and trailing `$` are accepted and implied, matching llguidance's treatment
//! of JSON Schema patterns.
//!
//! Unsupported constructs — backreferences, lookaround, word boundaries,
//! mid-pattern anchors — produce [`GrammarError::Schema`] so that a schema
//! never silently widens.

use crate::ast::{CharClass, CharRange, GrammarExpr};
use crate::error::{GrammarError, Result};

/// Compiles an (anchored) regex pattern into a grammar expression over the
/// characters of a JSON string body (between the quotes).
///
/// `path` is the JSON-pointer-like location used in error messages.
///
/// # Errors
///
/// Returns [`GrammarError::Schema`] for syntax errors and unsupported
/// constructs (backreferences, lookaround, word boundaries).
///
/// # Examples
///
/// ```
/// let expr = xg_grammar::regex_pattern_to_expr("^[A-Z]{2}-[0-9]{4}$", "#").unwrap();
/// assert!(!matches!(expr, xg_grammar::GrammarExpr::Empty));
/// ```
pub fn regex_pattern_to_expr(pattern: &str, path: &str) -> Result<GrammarExpr> {
    let mut trimmed = pattern;
    if let Some(rest) = trimmed.strip_prefix('^') {
        trimmed = rest;
    }
    if trimmed.ends_with('$') && !ends_with_escaped_dollar(trimmed) {
        trimmed = &trimmed[..trimmed.len() - 1];
    }
    let chars: Vec<char> = trimmed.chars().collect();
    let mut parser = PatternParser {
        chars: &chars,
        pos: 0,
        path,
    };
    let expr = parser.parse_alternation()?;
    if parser.pos != parser.chars.len() {
        return Err(parser.err(format!(
            "unexpected `{}` at offset {}",
            parser.chars[parser.pos], parser.pos
        )));
    }
    Ok(expr)
}

/// `true` if the trailing `$` is escaped (`\$`), i.e. a literal dollar sign.
fn ends_with_escaped_dollar(s: &str) -> bool {
    let mut backslashes = 0;
    for c in s[..s.len() - 1].chars().rev() {
        if c == '\\' {
            backslashes += 1;
        } else {
            break;
        }
    }
    backslashes % 2 == 1
}

struct PatternParser<'a> {
    chars: &'a [char],
    pos: usize,
    path: &'a str,
}

impl PatternParser<'_> {
    fn err(&self, message: impl Into<String>) -> GrammarError {
        GrammarError::Schema {
            path: self.path.to_string(),
            message: format!("pattern: {}", message.into()),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> Result<GrammarExpr> {
        let mut alts = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_concat()?);
        }
        if alts.len() == 1 {
            return Ok(alts.pop().expect("len checked"));
        }
        Ok(GrammarExpr::Choice(alts))
    }

    fn parse_concat(&mut self) -> Result<GrammarExpr> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(GrammarExpr::seq(items))
    }

    fn parse_repeat(&mut self) -> Result<GrammarExpr> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => self.parse_counted_repeat()?,
            _ => return Ok(atom),
        };
        // A trailing `?` marks a lazy quantifier; the matched language is the
        // same, so it is accepted and ignored.
        if self.peek() == Some('?') {
            self.bump();
        }
        if min == 1 && max == Some(1) {
            return Ok(atom);
        }
        Ok(GrammarExpr::Repeat {
            expr: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_counted_repeat(&mut self) -> Result<(u32, Option<u32>)> {
        self.bump(); // '{'
        let min = self.parse_number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((min, None));
                }
                let max = self.parse_number()?;
                if self.bump() != Some('}') {
                    return Err(self.err("unterminated `{m,n}` quantifier"));
                }
                if max < min {
                    return Err(GrammarError::InvalidRepetition { min, max });
                }
                Ok((min, Some(max)))
            }
            _ => Err(self.err("unterminated `{m}` quantifier")),
        }
    }

    fn parse_number(&mut self) -> Result<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number in quantifier"));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits
            .parse::<u32>()
            .map_err(|_| self.err(format!("quantifier bound `{digits}` is too large")))
    }

    fn parse_atom(&mut self) -> Result<GrammarExpr> {
        match self.bump() {
            Some('(') => self.parse_group(),
            Some('[') => self.parse_class(),
            Some('.') => {
                // `.` matches any character except newline.
                class_to_json_expr(
                    &CharClass::negated(vec![CharRange::single('\n')]),
                    self.path,
                )
            }
            Some('\\') => self.parse_escape(),
            Some('^') | Some('$') => {
                Err(self.err("anchors are only supported at the pattern boundaries"))
            }
            Some('*') | Some('+') | Some('?') | Some('{') => {
                Err(self.err("quantifier with nothing to repeat"))
            }
            Some(c) => Ok(json_char_literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn parse_group(&mut self) -> Result<GrammarExpr> {
        if self.peek() == Some('?') {
            self.bump();
            match self.peek() {
                Some(':') => {
                    self.bump();
                }
                Some('=') | Some('!') => {
                    return Err(self.err("lookahead assertions are not supported"));
                }
                Some('<') => {
                    // `(?<name>` is a named group; `(?<=` / `(?<!` lookbehind.
                    match self.chars.get(self.pos + 1) {
                        Some('=') | Some('!') => {
                            return Err(self.err("lookbehind assertions are not supported"));
                        }
                        _ => self.skip_group_name('<')?,
                    }
                }
                Some('P') => self.skip_group_name('P')?,
                _ => return Err(self.err("unsupported group modifier")),
            }
        }
        let inner = self.parse_alternation()?;
        if self.bump() != Some(')') {
            return Err(self.err("unterminated group"));
        }
        Ok(inner)
    }

    /// Skips `(?<name>` / `(?P<name>` up to and including the closing `>`.
    fn skip_group_name(&mut self, lead: char) -> Result<()> {
        self.bump(); // consume '<' or 'P'
        if lead == 'P' && self.bump() != Some('<') {
            return Err(self.err("unsupported group modifier"));
        }
        while let Some(c) = self.bump() {
            if c == '>' {
                return Ok(());
            }
        }
        Err(self.err("unterminated group name"))
    }

    fn parse_class(&mut self) -> Result<GrammarExpr> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<CharRange> = Vec::new();
        let mut first = true;
        loop {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unterminated character class"))?;
            if c == ']' && !first {
                break;
            }
            first = false;
            let item = match c {
                '\\' => self.parse_class_escape()?,
                c => ClassItem::Char(c),
            };
            match item {
                ClassItem::Ranges(rs) => ranges.extend(rs),
                ClassItem::Char(start) => {
                    // A `-` forms a range unless it is the last class char or
                    // the next escape is a multi-char class like `\d`.
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump(); // '-'
                        let end_c = self
                            .bump()
                            .ok_or_else(|| self.err("unterminated character class"))?;
                        let end = match end_c {
                            '\\' => match self.parse_class_escape()? {
                                ClassItem::Char(e) => e,
                                ClassItem::Ranges(_) => {
                                    return Err(self.err("class escape cannot be a range endpoint"));
                                }
                            },
                            e => e,
                        };
                        if end < start {
                            return Err(self.err(format!("invalid range `{start}-{end}`")));
                        }
                        ranges.push(CharRange::new(start, end));
                    } else {
                        ranges.push(CharRange::single(start));
                    }
                }
            }
        }
        let class = if negated {
            CharClass::negated(ranges)
        } else {
            CharClass::new(ranges)
        };
        class_to_json_expr(&class, self.path)
    }

    fn parse_class_escape(&mut self) -> Result<ClassItem> {
        let c = self
            .bump()
            .ok_or_else(|| self.err("dangling escape in character class"))?;
        if let Some(ranges) = perl_class_ranges(c) {
            return Ok(ClassItem::Ranges(ranges));
        }
        Ok(ClassItem::Char(self.escape_char(c)?))
    }

    fn parse_escape(&mut self) -> Result<GrammarExpr> {
        let c = self
            .bump()
            .ok_or_else(|| self.err("dangling escape at end of pattern"))?;
        if let Some(ranges) = perl_class_ranges(c) {
            let class = if c.is_ascii_uppercase() {
                CharClass::negated(ranges)
            } else {
                CharClass::new(ranges)
            };
            return class_to_json_expr(&class, self.path);
        }
        match c {
            'b' | 'B' => Err(self.err("word-boundary assertions are not supported")),
            '1'..='9' => Err(self.err("backreferences are not supported")),
            _ => Ok(json_char_literal(self.escape_char(c)?)),
        }
    }

    /// Resolves a single-character escape (`\n`, `\xHH`, `\uHHHH`, escaped
    /// metacharacters) to the character it denotes.
    fn escape_char(&mut self, c: char) -> Result<char> {
        Ok(match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            'f' => '\u{c}',
            'v' => '\u{b}',
            '0' => '\0',
            'x' => self.hex_escape(2)?,
            'u' => self.hex_escape(4)?,
            // Escaped metacharacters and punctuation stand for themselves.
            c if !c.is_alphanumeric() => c,
            other => return Err(self.err(format!("unsupported escape `\\{other}`"))),
        })
    }

    fn hex_escape(&mut self, len: usize) -> Result<char> {
        let mut value = 0u32;
        for _ in 0..len {
            let d = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| self.err("invalid hex escape"))?;
            value = value * 16 + d;
        }
        char::from_u32(value).ok_or_else(|| self.err("hex escape is not a scalar value"))
    }
}

enum ClassItem {
    Char(char),
    Ranges(Vec<CharRange>),
}

/// Positive ranges for `\d \w \s` (the negated `\D \W \S` variants reuse them
/// with class-level negation).
fn perl_class_ranges(c: char) -> Option<Vec<CharRange>> {
    match c.to_ascii_lowercase() {
        'd' if c.is_ascii_alphabetic() => Some(vec![CharRange::new('0', '9')]),
        'w' if c.is_ascii_alphabetic() => Some(vec![
            CharRange::new('0', '9'),
            CharRange::new('A', 'Z'),
            CharRange::single('_'),
            CharRange::new('a', 'z'),
        ]),
        's' if c.is_ascii_alphabetic() => Some(vec![
            CharRange::single('\t'),
            CharRange::new('\n', '\r'), // \n \v \f \r
            CharRange::single(' '),
        ]),
        _ => None,
    }
}

/// Emits a single pattern character as the bytes it occupies inside a JSON
/// string (escaping `"`, `\` and control characters).
fn json_char_literal(c: char) -> GrammarExpr {
    GrammarExpr::Literal(json_escape_char(c).into_bytes())
}

fn json_escape_char(c: char) -> String {
    match c {
        '"' => "\\\"".to_string(),
        '\\' => "\\\\".to_string(),
        '\n' => "\\n".to_string(),
        '\r' => "\\r".to_string(),
        '\t' => "\\t".to_string(),
        '\u{8}' => "\\b".to_string(),
        '\u{c}' => "\\f".to_string(),
        c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32),
        c => c.to_string(),
    }
}

/// Lowers a character class into an expression valid inside a JSON string:
/// control characters are dropped, and `"` / `\` become alternatives matching
/// their two-character escape sequences.
fn class_to_json_expr(class: &CharClass, path: &str) -> Result<GrammarExpr> {
    // Characters a JSON string cannot contain unescaped: controls, `"`, `\`.
    const FORBIDDEN: &[(u32, u32)] = &[(0x00, 0x1F), (0x22, 0x22), (0x5C, 0x5C)];
    let mut has_quote = false;
    let mut has_backslash = false;
    let mut clean: Vec<CharRange> = Vec::new();
    for range in class.normalized_ranges() {
        has_quote |= range.contains('"');
        has_backslash |= range.contains('\\');
        let mut segments = vec![(range.start as u32, range.end as u32)];
        for &(flo, fhi) in FORBIDDEN {
            let mut next = Vec::new();
            for (lo, hi) in segments {
                if hi < flo || lo > fhi {
                    next.push((lo, hi));
                    continue;
                }
                if lo < flo {
                    next.push((lo, flo - 1));
                }
                if hi > fhi {
                    next.push((fhi + 1, hi));
                }
            }
            segments = next;
        }
        for (lo, hi) in segments {
            push_range(&mut clean, lo, hi);
        }
    }
    let mut alts = Vec::new();
    if !clean.is_empty() {
        alts.push(GrammarExpr::CharClass(CharClass::new(clean)));
    }
    if has_quote {
        alts.push(GrammarExpr::literal("\\\""));
    }
    if has_backslash {
        alts.push(GrammarExpr::literal("\\\\"));
    }
    if alts.is_empty() {
        return Err(GrammarError::Schema {
            path: path.to_string(),
            message: "pattern: character class matches no JSON string character".to_string(),
        });
    }
    Ok(GrammarExpr::choice(alts))
}

fn push_range(out: &mut Vec<CharRange>, lo: u32, hi: u32) {
    if let (Some(start), Some(end)) = (char::from_u32(lo), char::from_u32(hi)) {
        if start <= end {
            out.push(CharRange::new(start, end));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(p: &str) -> GrammarExpr {
        regex_pattern_to_expr(p, "#").unwrap()
    }

    #[test]
    fn literal_pattern_is_a_literal_sequence() {
        let expr = compile("abc");
        match expr {
            GrammarExpr::Sequence(items) => assert_eq!(items.len(), 3),
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn anchors_are_stripped() {
        assert_eq!(compile("^abc$"), compile("abc"));
    }

    #[test]
    fn quantifiers_build_repeats() {
        match compile("a{2,5}") {
            GrammarExpr::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, Some(5));
            }
            other => panic!("expected repeat, got {other:?}"),
        }
        match compile("[0-9]+") {
            GrammarExpr::Repeat { min, max, .. } => {
                assert_eq!(min, 1);
                assert_eq!(max, None);
            }
            other => panic!("expected repeat, got {other:?}"),
        }
    }

    #[test]
    fn lazy_quantifiers_are_accepted() {
        assert_eq!(compile("a*?"), compile("a*"));
        assert_eq!(compile("a+?b"), compile("a+b"));
    }

    #[test]
    fn alternation_and_groups() {
        match compile("(ab|cd)e") {
            GrammarExpr::Sequence(items) => {
                assert!(matches!(items[0], GrammarExpr::Choice(_)));
            }
            other => panic!("expected sequence, got {other:?}"),
        }
        assert_eq!(compile("(?:ab)"), compile("ab"));
        assert_eq!(compile("(?<tag>ab)"), compile("ab"));
        assert_eq!(compile("(?P<tag>ab)"), compile("ab"));
    }

    #[test]
    fn classes_handle_ranges_and_negation() {
        match compile("[a-z0-9_]") {
            GrammarExpr::CharClass(cc) => {
                assert!(cc.contains('q'));
                assert!(cc.contains('_'));
                assert!(!cc.contains('A'));
            }
            other => panic!("expected class, got {other:?}"),
        }
        match compile("[^a-z]") {
            GrammarExpr::CharClass(cc) => {
                assert!(cc.contains('A'));
                assert!(!cc.contains('q'));
                // JSON-unsafe characters are excluded even though the regex
                // class would admit them.
                assert!(!cc.contains('\n'));
            }
            // `[^a-z]` admits `"` and `\`, so the class widens into a choice
            // with their escape sequences.
            GrammarExpr::Choice(_) => {}
            other => panic!("expected class or choice, got {other:?}"),
        }
    }

    #[test]
    fn quote_and_backslash_become_escape_sequences() {
        assert_eq!(
            compile("\""),
            GrammarExpr::Literal(b"\\\"".to_vec()),
            "a literal quote must serialize as its JSON escape"
        );
        match compile("[\"x]") {
            GrammarExpr::Choice(alts) => {
                assert!(alts.contains(&GrammarExpr::literal("\\\"")));
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn perl_classes_expand() {
        match compile("\\d") {
            GrammarExpr::CharClass(cc) => assert!(cc.contains('7') && !cc.contains('a')),
            other => panic!("expected class, got {other:?}"),
        }
        match compile("\\w") {
            GrammarExpr::CharClass(cc) => assert!(cc.contains('_') && !cc.contains('-')),
            other => panic!("expected class, got {other:?}"),
        }
        // `\S` includes `"` and `\`, so its JSON-string form is a choice of
        // a narrowed class plus the two escape-sequence literals.
        match compile("\\S") {
            GrammarExpr::Choice(alts) => {
                let class = alts.iter().find_map(|a| match a {
                    GrammarExpr::CharClass(cc) => Some(cc),
                    _ => None,
                });
                let cc = class.expect("narrowed class present");
                assert!(cc.contains('x') && !cc.contains(' ') && !cc.contains('"'));
                assert!(alts.contains(&GrammarExpr::literal("\\\"")));
                assert!(alts.contains(&GrammarExpr::literal("\\\\")));
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_constructs_error() {
        for p in [
            "(?=x)y",
            "(?!x)y",
            "(?<=x)y",
            "(?<!x)y",
            "\\bword\\b",
            "(a)\\1",
            "a^b",
            "a$b",
            "a{3,1}",
            "[z-a]",
            "(unclosed",
            "[unclosed",
        ] {
            assert!(
                regex_pattern_to_expr(p, "#").is_err(),
                "pattern `{p}` should be rejected"
            );
        }
    }

    #[test]
    fn empty_pattern_matches_the_empty_string() {
        assert_eq!(compile(""), GrammarExpr::Empty);
    }
}
