//! Structural tags: interleaving free text with tagged, grammar-constrained
//! segments.
//!
//! Agentic tool-calling workloads do not constrain the whole output: the
//! model writes *free prose* until it opens a tag such as
//! `<function=get_weather>`, at which point the argument payload must follow
//! a JSON Schema until the closing `</function>`. A [`StructuralTag`]
//! describes that shape declaratively:
//!
//! * a list of [`TagSpec`]s — begin string, inner content grammar
//!   ([`TagContent`]: EBNF text, a JSON Schema, or a prebuilt [`Grammar`]),
//!   and end string,
//! * a list of *triggers* — short strings scanned for in the free text. When
//!   the generated text ends with a trigger, decoding dispatches into the
//!   constrained grammar covering every tag whose begin string starts with
//!   that trigger (the remainder of the begin string, the content, then the
//!   end string). When no triggers are given, the full begin strings are
//!   used.
//!
//! The description is compiled by `xg-core` into a dispatching matcher; this
//! module owns validation and the per-trigger combined [`Grammar`]
//! construction ([`StructuralTag::build_trigger_grammars`]).
//!
//! # Examples
//!
//! ```
//! use xg_grammar::{StructuralTag, TagContent, TagSpec};
//!
//! let tag = StructuralTag::new(vec![TagSpec {
//!     begin: "<tool_call>".into(),
//!     content: TagContent::JsonSchema(serde_json::json!({
//!         "type": "object",
//!         "properties": {"city": {"type": "string"}},
//!         "required": ["city"]
//!     })),
//!     end: "</tool_call>".into(),
//! }]);
//! let grammars = tag.build_trigger_grammars()?;
//! assert_eq!(grammars.len(), 1); // one trigger: "<tool_call>" itself
//! # Ok::<(), xg_grammar::GrammarError>(())
//! ```

use crate::ast::{Grammar, GrammarExpr, RuleId};
use crate::error::{GrammarError, Result};

/// The inner grammar of one tagged segment.
#[derive(Debug, Clone, PartialEq)]
pub enum TagContent {
    /// A GBNF-style EBNF grammar text with its root rule name.
    Ebnf {
        /// The grammar source text.
        text: String,
        /// Name of the root rule inside `text`.
        root: String,
    },
    /// A JSON Schema, converted via [`crate::json_schema_to_grammar`].
    JsonSchema(serde_json::Value),
    /// An already-built grammar.
    Grammar(Grammar),
}

impl TagContent {
    /// Resolves the content into a [`Grammar`].
    ///
    /// # Errors
    ///
    /// Propagates the EBNF parse error or JSON-Schema conversion error.
    pub fn to_grammar(&self) -> Result<Grammar> {
        match self {
            TagContent::Ebnf { text, root } => crate::ebnf::parse_ebnf(text, root),
            TagContent::JsonSchema(schema) => crate::json_schema::json_schema_to_grammar(schema),
            TagContent::Grammar(grammar) => Ok(grammar.clone()),
        }
    }
}

/// One tagged segment: `begin` opens it, `content` constrains the inside,
/// `end` closes it and returns decoding to free text.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSpec {
    /// The literal string that opens the tag (e.g. `<function=get_weather>`).
    pub begin: String,
    /// The grammar constraining the segment between `begin` and `end`.
    pub content: TagContent,
    /// The literal string that closes the tag (e.g. `</function>`). May be
    /// empty, in which case the segment ends as soon as the content grammar
    /// can terminate.
    pub end: String,
}

/// When a tagged segment hands decoding back to free text.
///
/// The distinction only matters for tags whose combined grammar has more
/// than one point where it could end — e.g. an empty end string over
/// repeating content (`[0-9]+`), or an end tag that is itself a valid
/// continuation of the content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentExitPolicy {
    /// Close the segment at the *first* byte where the combined grammar can
    /// terminate (shortest match). The historical behavior.
    #[default]
    Eager,
    /// Keep the segment open while its grammar can still consume the next
    /// byte, closing at the *last* reachable termination point instead
    /// (longest match, possessive): the segment exits only when a byte
    /// contradicts the grammar, falling back to the most recent point where
    /// it could have ended.
    Greedy,
}

/// A structural-tag description: free text interleaved with tagged,
/// grammar-constrained segments, dispatched on trigger strings.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralTag {
    /// The tagged segment kinds.
    pub tags: Vec<TagSpec>,
    /// Trigger strings scanned for in the free text. Empty means "use the
    /// begin strings of `tags`" (deduplicated).
    pub triggers: Vec<String>,
    /// How tagged segments hand decoding back to free text.
    pub exit: SegmentExitPolicy,
}

impl StructuralTag {
    /// Creates a structural tag whose triggers default to the begin strings.
    pub fn new(tags: Vec<TagSpec>) -> Self {
        StructuralTag {
            tags,
            triggers: Vec::new(),
            exit: SegmentExitPolicy::default(),
        }
    }

    /// Creates a structural tag with explicit triggers (each a prefix of the
    /// begin strings it dispatches for, e.g. one `"<function="` trigger
    /// covering many `<function=NAME>` tags).
    pub fn with_triggers(tags: Vec<TagSpec>, triggers: Vec<String>) -> Self {
        StructuralTag {
            tags,
            triggers,
            exit: SegmentExitPolicy::default(),
        }
    }

    /// Sets how tagged segments hand decoding back to free text.
    #[must_use]
    pub fn with_segment_exit(mut self, exit: SegmentExitPolicy) -> Self {
        self.exit = exit;
        self
    }

    /// The effective trigger list: the explicit triggers, or the deduplicated
    /// begin strings when none were given.
    pub fn effective_triggers(&self) -> Vec<String> {
        if !self.triggers.is_empty() {
            return self.triggers.clone();
        }
        let mut out: Vec<String> = Vec::new();
        for tag in &self.tags {
            if !out.iter().any(|t| t == &tag.begin) {
                out.push(tag.begin.clone());
            }
        }
        out
    }

    /// Validates the description and assigns tags to triggers: result `[i]`
    /// lists the indices into `self.tags` dispatched by trigger `i` of
    /// [`effective_triggers`](Self::effective_triggers).
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::StructuralTag`] when the tag list is empty, a
    /// begin string is empty, triggers are duplicated or occur inside one
    /// another (which would make first-completed-wins scanning ambiguous), a
    /// trigger dispatches no tag, or a tag's begin string is covered by no
    /// trigger.
    pub fn trigger_assignments(&self) -> Result<Vec<Vec<usize>>> {
        fn err(message: impl Into<String>) -> GrammarError {
            GrammarError::StructuralTag {
                message: message.into(),
            }
        }
        if self.tags.is_empty() {
            return Err(err("at least one tag is required"));
        }
        for tag in &self.tags {
            if tag.begin.is_empty() {
                return Err(err("tag begin strings must not be empty"));
            }
        }
        let triggers = self.effective_triggers();
        for (i, a) in triggers.iter().enumerate() {
            if a.is_empty() {
                return Err(err("triggers must not be empty"));
            }
            // No trigger may occur *inside* another (prefix, suffix, or
            // infix): the free-text scan fires the first completed trigger,
            // and a trigger hidden inside another's partial match could
            // otherwise complete without ever firing.
            for b in triggers.iter().skip(i + 1) {
                if a.contains(b.as_str()) || b.contains(a.as_str()) {
                    return Err(err(format!(
                        "trigger {a:?} and trigger {b:?} overlap (one occurs inside \
                         the other), making trigger scanning ambiguous"
                    )));
                }
            }
        }
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); triggers.len()];
        for (tag_idx, tag) in self.tags.iter().enumerate() {
            // Prefix-free triggers guarantee at most one match per begin.
            match triggers.iter().position(|t| tag.begin.starts_with(t)) {
                Some(trigger_idx) => assignments[trigger_idx].push(tag_idx),
                None => return Err(err(format!("tag {:?} is covered by no trigger", tag.begin))),
            }
        }
        for (trigger_idx, tags) in assignments.iter().enumerate() {
            if tags.is_empty() {
                return Err(err(format!(
                    "trigger {:?} dispatches no tag",
                    triggers[trigger_idx]
                )));
            }
        }
        Ok(assignments)
    }

    /// Validates the description (see
    /// [`trigger_assignments`](Self::trigger_assignments) for the checks).
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::StructuralTag`] describing the first violated
    /// constraint, or the content grammars' own resolution errors.
    pub fn validate(&self) -> Result<()> {
        self.trigger_assignments()?;
        for tag in &self.tags {
            tag.content.to_grammar()?.validate()?;
        }
        Ok(())
    }

    /// Builds, for every trigger, the combined grammar that constrains
    /// decoding once that trigger has fired in the free text: a choice over
    /// the dispatched tags of *(begin-string remainder, content, end
    /// string)*. The returned pairs are `(trigger, grammar)` in
    /// [`effective_triggers`](Self::effective_triggers) order.
    ///
    /// # Errors
    ///
    /// Returns the validation errors of
    /// [`trigger_assignments`](Self::trigger_assignments) or of the content
    /// grammars.
    pub fn build_trigger_grammars(&self) -> Result<Vec<(String, Grammar)>> {
        let triggers = self.effective_triggers();
        let assignments = self.trigger_assignments()?;
        let mut out = Vec::with_capacity(triggers.len());
        for (trigger, tag_indices) in triggers.into_iter().zip(assignments) {
            let grammar = self.build_grammar_for_trigger(&trigger, &tag_indices)?;
            out.push((trigger, grammar));
        }
        Ok(out)
    }

    /// Builds the combined grammar of one trigger over the given tag indices
    /// (see [`build_trigger_grammars`](Self::build_trigger_grammars) for the
    /// shape). `tag_indices` index into [`tags`](Self::tags), normally one
    /// entry of [`trigger_assignments`](Self::trigger_assignments).
    ///
    /// The result depends only on the trigger string and the *ordered list of
    /// dispatched [`TagSpec`]s* — imported content rules are namespaced by
    /// their local position among the dispatched tags, not by their global
    /// registry index. Two different registries sharing a tool therefore
    /// build structurally identical (fingerprint-equal) segment grammars for
    /// that tool's trigger, so their compilations share one grammar-cache
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns the content grammars' resolution/validation errors.
    pub fn build_grammar_for_trigger(
        &self,
        trigger: &str,
        tag_indices: &[usize],
    ) -> Result<Grammar> {
        let mut builder = Grammar::builder();
        let root = builder.declare("tag_dispatch");
        let mut arms = Vec::with_capacity(tag_indices.len());
        for (arm_idx, &tag_idx) in tag_indices.iter().enumerate() {
            let tag = &self.tags[tag_idx];
            let content = tag.content.to_grammar()?;
            content.validate()?;
            let content_root = import_rules(&mut builder, &content, &format!("tag{arm_idx}_"));
            let begin_rest = &tag.begin[trigger.len()..];
            arms.push(GrammarExpr::seq(vec![
                literal_or_empty(begin_rest),
                GrammarExpr::RuleRef(content_root),
                literal_or_empty(&tag.end),
            ]));
        }
        builder.set_body(root, GrammarExpr::choice(arms));
        builder.build("tag_dispatch")
    }

    /// Applies a [`DispatchDelta`], returning the mutated registry. The
    /// receiver is unchanged; triggers, exit policy and untouched tags carry
    /// over.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::StructuralTag`] when the delta does not apply
    /// (adding an exact duplicate of a registered tag, removing a begin
    /// string no tag carries) or when the mutated registry fails
    /// [`trigger_assignments`](Self::trigger_assignments) validation — e.g.
    /// removing the only tag, or adding a tag no explicit trigger covers.
    pub fn apply_delta(&self, delta: &DispatchDelta) -> Result<StructuralTag> {
        fn err(message: impl Into<String>) -> GrammarError {
            GrammarError::StructuralTag {
                message: message.into(),
            }
        }
        let mut next = self.clone();
        match delta {
            DispatchDelta::AddTag(spec) => {
                if next.tags.contains(spec) {
                    return Err(err(format!(
                        "tag {:?} is already registered (exact duplicate)",
                        spec.begin
                    )));
                }
                next.tags.push(spec.clone());
            }
            DispatchDelta::RemoveTag { begin } => {
                let before = next.tags.len();
                next.tags.retain(|t| &t.begin != begin);
                if next.tags.len() == before {
                    return Err(err(format!("no registered tag has begin string {begin:?}")));
                }
            }
        }
        next.trigger_assignments()?;
        Ok(next)
    }
}

/// One mutation of a [`StructuralTag`] tool registry, applied with
/// [`StructuralTag::apply_delta`] (or incrementally compiled by
/// `xg-core`'s `GrammarCompiler::update_tag_dispatch`): agentic sessions
/// register and retire tools mid-session, and a delta names exactly the
/// changed tag so the compiler can leave every other trigger's compiled
/// segment grammar untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchDelta {
    /// Register a new tag. With default (begin-string) triggers this also
    /// adds the tag's trigger; with explicit triggers, an existing trigger
    /// must cover the new begin string.
    AddTag(TagSpec),
    /// Remove every registered tag whose begin string equals `begin` (and,
    /// with default triggers, the corresponding trigger).
    RemoveTag {
        /// The begin string of the tag(s) to remove.
        begin: String,
    },
}

/// Wraps `grammar` as *grammar · any-byte\** — the combined segment grammar
/// followed by an unconstrained free-text continuation.
///
/// The tag-dispatch runtime closes a tagged segment *eagerly*, at the first
/// byte where the combined grammar can terminate, and processes any remaining
/// bytes of the same token as free text. Its token mask therefore must not be
/// the combined grammar's mask alone: a single token that finishes the end
/// tag *and* continues with prose is acceptable, and masking it away costs
/// one token of throughput at every segment boundary. Compiling the segment
/// grammar with this tail makes the mask the union of "continues the
/// segment" and "closes the segment, then anything" — while acceptance
/// semantics are untouched, because the eager close fires before the tail is
/// ever entered across a token boundary.
///
/// The tail is *byte level* ([`crate::ByteClass`]): free text after the close
/// is untokenized prose, and a boundary-spanning token may carry post-close
/// bytes that are not valid UTF-8 on their own (e.g. the lead bytes of a
/// multi-byte character whose continuation arrives in the next token). A
/// character-level tail conservatively rejected those tokens at every segment
/// boundary; the byte-level tail admits exactly what the free-text mode
/// itself accepts — any byte.
pub fn append_free_text_tail(grammar: &Grammar) -> Grammar {
    let mut builder = Grammar::builder();
    let root = builder.declare("segment_with_free_tail");
    let inner_root = import_rules(&mut builder, grammar, "seg_");
    builder.set_body(
        root,
        GrammarExpr::seq(vec![
            GrammarExpr::RuleRef(inner_root),
            GrammarExpr::star(GrammarExpr::ByteClass(crate::ast::ByteClass::any())),
        ]),
    );
    builder
        .build("segment_with_free_tail")
        .expect("the root rule is declared above")
}

fn literal_or_empty(s: &str) -> GrammarExpr {
    if s.is_empty() {
        GrammarExpr::Empty
    } else {
        GrammarExpr::literal(s)
    }
}

/// Imports every rule of `source` into `builder` under `prefix`-namespaced
/// names, remapping rule references, and returns the new id of the source's
/// root rule.
fn import_rules(
    builder: &mut crate::ast::GrammarBuilder,
    source: &Grammar,
    prefix: &str,
) -> RuleId {
    let mapping: Vec<RuleId> = source
        .rules()
        .iter()
        .map(|rule| builder.declare(&format!("{prefix}{}", rule.name)))
        .collect();
    for (old_idx, rule) in source.rules().iter().enumerate() {
        let body = remap_refs(&rule.body, &mapping);
        builder.set_body(mapping[old_idx], body);
    }
    mapping[source.root().index()]
}

/// Rewrites every [`GrammarExpr::RuleRef`] through `mapping` (indexed by the
/// source grammar's rule ids).
fn remap_refs(expr: &GrammarExpr, mapping: &[RuleId]) -> GrammarExpr {
    match expr {
        GrammarExpr::RuleRef(id) => GrammarExpr::RuleRef(mapping[id.index()]),
        GrammarExpr::Sequence(items) => {
            GrammarExpr::Sequence(items.iter().map(|e| remap_refs(e, mapping)).collect())
        }
        GrammarExpr::Choice(items) => {
            GrammarExpr::Choice(items.iter().map(|e| remap_refs(e, mapping)).collect())
        }
        GrammarExpr::Repeat { expr, min, max } => GrammarExpr::Repeat {
            expr: Box::new(remap_refs(expr, mapping)),
            min: *min,
            max: *max,
        },
        GrammarExpr::Empty
        | GrammarExpr::Literal(_)
        | GrammarExpr::CharClass(_)
        | GrammarExpr::ByteClass(_) => expr.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_city_schema() -> serde_json::Value {
        serde_json::json!({
            "type": "object",
            "properties": {"city": {"type": "string"}},
            "required": ["city"],
            "additionalProperties": false
        })
    }

    fn simple_tag() -> TagSpec {
        TagSpec {
            begin: "<tool_call>".into(),
            content: TagContent::JsonSchema(json_city_schema()),
            end: "</tool_call>".into(),
        }
    }

    #[test]
    fn default_triggers_are_the_begin_strings() {
        let tag = StructuralTag::new(vec![simple_tag(), simple_tag()]);
        assert_eq!(tag.effective_triggers(), vec!["<tool_call>".to_string()]);
        assert_eq!(tag.trigger_assignments().unwrap(), vec![vec![0, 1]]);
    }

    #[test]
    fn shared_trigger_dispatches_multiple_tags() {
        let mk = |name: &str| TagSpec {
            begin: format!("<function={name}>"),
            content: TagContent::Ebnf {
                text: r#"root ::= [0-9]+"#.into(),
                root: "root".into(),
            },
            end: "</function>".into(),
        };
        let tag =
            StructuralTag::with_triggers(vec![mk("alpha"), mk("beta")], vec!["<function=".into()]);
        let assignments = tag.trigger_assignments().unwrap();
        assert_eq!(assignments, vec![vec![0, 1]]);
        let grammars = tag.build_trigger_grammars().unwrap();
        assert_eq!(grammars.len(), 1);
        let (trigger, grammar) = &grammars[0];
        assert_eq!(trigger, "<function=");
        grammar.validate().unwrap();
        // The combined grammar carries both content copies plus the root.
        assert!(grammar.rule_id("tag0_root").is_some());
        assert!(grammar.rule_id("tag1_root").is_some());
    }

    #[test]
    fn validation_rejects_malformed_descriptions() {
        // No tags at all.
        assert!(StructuralTag::new(vec![]).validate().is_err());
        // Empty begin string.
        let mut empty_begin = simple_tag();
        empty_begin.begin.clear();
        assert!(StructuralTag::new(vec![empty_begin]).validate().is_err());
        // Triggers that are prefixes of each other.
        let nested = StructuralTag::with_triggers(
            vec![simple_tag()],
            vec!["<tool".into(), "<tool_call>".into()],
        );
        assert!(matches!(
            nested.validate(),
            Err(GrammarError::StructuralTag { .. })
        ));
        // Triggers occurring *inside* another (infix) are just as ambiguous:
        // the infix could complete inside the longer trigger's partial match.
        let infix = StructuralTag::with_triggers(
            vec![simple_tag()],
            vec!["<tool_call>".into(), "oo".into()],
        );
        assert!(matches!(
            infix.validate(),
            Err(GrammarError::StructuralTag { .. })
        ));
        // A trigger covering no tag.
        let dangling = StructuralTag::with_triggers(
            vec![simple_tag()],
            vec!["<tool_call>".into(), "<x".into()],
        );
        assert!(dangling.validate().is_err());
        // A tag covered by no trigger.
        let uncovered = StructuralTag::with_triggers(vec![simple_tag()], vec![]);
        // with_triggers([]) falls back to begins, which always cover; build an
        // explicit mismatch instead.
        assert!(uncovered.validate().is_ok());
        let mismatch = StructuralTag::with_triggers(vec![simple_tag()], vec!["<other>".into()]);
        assert!(mismatch.validate().is_err());
    }

    #[test]
    fn ebnf_and_schema_content_resolve() {
        let ebnf = TagContent::Ebnf {
            text: r#"root ::= "[" [0-9]+ "]""#.into(),
            root: "root".into(),
        };
        assert!(ebnf.to_grammar().is_ok());
        let schema = TagContent::JsonSchema(json_city_schema());
        assert!(schema.to_grammar().is_ok());
        let bad = TagContent::Ebnf {
            text: "root ::= undefined_rule".into(),
            root: "root".into(),
        };
        assert!(bad.to_grammar().is_err());
    }

    #[test]
    fn free_text_tail_wraps_and_validates() {
        let tag = StructuralTag::new(vec![simple_tag()]);
        let grammars = tag.build_trigger_grammars().unwrap();
        let (_, grammar) = &grammars[0];
        let tailed = append_free_text_tail(grammar);
        tailed.validate().unwrap();
        // Every imported rule is present under the segment prefix, and the
        // new root sequences the segment before the any-character tail.
        assert!(tailed.rule_id("seg_tag_dispatch").is_some());
        assert_eq!(tailed.rule(tailed.root()).name, "segment_with_free_tail");
        // The tail makes the wrapped grammar nullable-extendable: the
        // original root stays non-nullable, the tail adds nothing mandatory.
        let nullable = tailed.nullable_rules();
        assert!(!nullable[tailed.root().index()]);
    }

    #[test]
    fn registry_position_does_not_change_trigger_grammar_fingerprints() {
        // The same tool in two different registries (different global tag
        // indices) must build fingerprint-identical segment grammars, so the
        // registries share one compiled artifact per overlapping tool.
        let mk = |name: &str| TagSpec {
            begin: format!("<tool:{name}>"),
            content: TagContent::JsonSchema(json_city_schema()),
            end: "</tool>".into(),
        };
        let a = StructuralTag::new(vec![mk("alpha"), mk("shared")]);
        let b = StructuralTag::new(vec![mk("beta"), mk("gamma"), mk("shared")]);
        let shared_a = a
            .build_trigger_grammars()
            .unwrap()
            .into_iter()
            .find(|(t, _)| t == "<tool:shared>")
            .unwrap()
            .1;
        let shared_b = b
            .build_trigger_grammars()
            .unwrap()
            .into_iter()
            .find(|(t, _)| t == "<tool:shared>")
            .unwrap()
            .1;
        assert_eq!(
            shared_a.structural_fingerprint(),
            shared_b.structural_fingerprint()
        );
    }

    #[test]
    fn apply_delta_adds_and_removes_tags() {
        let mk = |name: &str| TagSpec {
            begin: format!("<tool:{name}>"),
            content: TagContent::JsonSchema(json_city_schema()),
            end: "</tool>".into(),
        };
        let base = StructuralTag::new(vec![mk("alpha"), mk("beta")]);

        let grown = base
            .apply_delta(&DispatchDelta::AddTag(mk("gamma")))
            .unwrap();
        assert_eq!(grown.tags.len(), 3);
        assert_eq!(grown.effective_triggers().len(), 3);
        // Untouched fields carry over.
        assert_eq!(grown.exit, base.exit);
        assert_eq!(grown.tags[0], base.tags[0]);

        let shrunk = grown
            .apply_delta(&DispatchDelta::RemoveTag {
                begin: "<tool:beta>".into(),
            })
            .unwrap();
        assert_eq!(shrunk.tags.len(), 2);
        assert!(shrunk.tags.iter().all(|t| t.begin != "<tool:beta>"));

        // Duplicates and missing begins are rejected.
        assert!(base
            .apply_delta(&DispatchDelta::AddTag(mk("alpha")))
            .is_err());
        assert!(base
            .apply_delta(&DispatchDelta::RemoveTag {
                begin: "<tool:nope>".into()
            })
            .is_err());
        // Removing the last tag leaves an invalid registry.
        let single = StructuralTag::new(vec![mk("only")]);
        assert!(single
            .apply_delta(&DispatchDelta::RemoveTag {
                begin: "<tool:only>".into()
            })
            .is_err());
    }

    #[test]
    fn apply_delta_respects_explicit_triggers() {
        let mk = |name: &str| TagSpec {
            begin: format!("<function={name}>"),
            content: TagContent::JsonSchema(json_city_schema()),
            end: "</function>".into(),
        };
        let base = StructuralTag::with_triggers(vec![mk("alpha")], vec!["<function=".into()]);
        // Covered by the shared trigger: fine.
        let grown = base
            .apply_delta(&DispatchDelta::AddTag(mk("beta")))
            .unwrap();
        assert_eq!(grown.trigger_assignments().unwrap(), vec![vec![0, 1]]);
        // A begin string no explicit trigger covers is rejected.
        let uncovered = TagSpec {
            begin: "<other>".into(),
            content: TagContent::JsonSchema(json_city_schema()),
            end: "</other>".into(),
        };
        assert!(base.apply_delta(&DispatchDelta::AddTag(uncovered)).is_err());
    }

    #[test]
    fn trigger_grammar_accepts_full_tagged_segment_after_trigger() {
        // Trigger = the whole begin string, so the combined grammar matches
        // `{content}</tool_call>`-shaped remainders.
        let tag = StructuralTag::new(vec![simple_tag()]);
        let grammars = tag.build_trigger_grammars().unwrap();
        let (_, grammar) = &grammars[0];
        grammar.validate().unwrap();
        // The begin remainder is empty, so the root's arm starts directly
        // with the imported content root followed by the end literal.
        assert!(grammar.rule_id("tag0_root").is_some());
    }
}
