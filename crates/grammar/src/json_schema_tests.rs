//! Unit tests for the JSON Schema converter (see `json_schema.rs`).

use super::*;
use serde_json::json;

fn lenient() -> JsonSchemaOptions {
    JsonSchemaOptions {
        lenient: true,
        ..Default::default()
    }
}

#[test]
fn simple_object_schema_converts() {
    let schema = json!({
        "type": "object",
        "properties": {
            "name": {"type": "string"},
            "age": {"type": "integer"},
            "active": {"type": "boolean"}
        },
        "required": ["name", "age"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
    assert!(g.rules().len() > 8);
}

#[test]
fn enum_and_const_convert_to_literals() {
    let schema = json!({
        "type": "object",
        "properties": {
            "unit": {"enum": ["celsius", "fahrenheit"]},
            "version": {"const": 2}
        },
        "required": ["unit", "version"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn nested_objects_and_arrays() {
    let schema = json!({
        "type": "object",
        "properties": {
            "tags": {"type": "array", "items": {"type": "string"}, "minItems": 1},
            "address": {
                "type": "object",
                "properties": {
                    "street": {"type": "string"},
                    "zip": {"type": "string"}
                },
                "required": ["street"]
            }
        },
        "required": ["tags"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn ref_into_defs_resolves() {
    let schema = json!({
        "type": "object",
        "properties": {"child": {"$ref": "#/$defs/leaf"}},
        "required": ["child"],
        "$defs": {"leaf": {"type": "string"}}
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn missing_ref_is_an_error() {
    let schema = json!({"$ref": "#/$defs/nope"});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
}

#[test]
fn any_of_becomes_choice() {
    let schema = json!({
        "anyOf": [{"type": "string"}, {"type": "integer"}, {"type": "null"}]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn untyped_schema_matches_any_json() {
    let schema = json!(true);
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.rule_id("json_any").is_some());
}

#[test]
fn false_schema_is_rejected() {
    let schema = json!(false);
    assert!(json_schema_to_grammar(&schema).is_err());
}

#[test]
fn bounded_arrays_and_strings() {
    let schema = json!({
        "type": "object",
        "properties": {
            "code": {"type": "string", "minLength": 2, "maxLength": 4},
            "points": {"type": "array", "items": {"type": "number"}, "minItems": 2, "maxItems": 3}
        },
        "required": ["code", "points"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn type_list_becomes_choice() {
    let schema = json!({"type": ["string", "null"]});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn additional_properties_schema() {
    let schema = json!({
        "type": "object",
        "properties": {"id": {"type": "integer"}},
        "required": ["id"],
        "additionalProperties": {"type": "string"}
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn prefix_items_tuple() {
    let schema = json!({
        "type": "array",
        "prefixItems": [{"type": "string"}, {"type": "integer"}]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn compact_mode_has_no_ws_rule() {
    let schema =
        json!({"type": "object", "properties": {"a": {"type": "integer"}}, "required": ["a"]});
    let opts = JsonSchemaOptions {
        whitespace: WhitespaceConfig::Compact,
        ..Default::default()
    };
    let g = json_schema_to_grammar_with_options(&schema, &opts).unwrap();
    assert!(g.rule_id("json_ws").is_none());
}

// ---- pattern ----

#[test]
fn pattern_compiles_through_regex_machinery() {
    let schema = json!({"type": "string", "pattern": "^[a-z]{2,5}-[0-9]+$"});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
    // The pattern replaces the generic string rule at the use site.
    assert!(g.to_string().contains("[a-z]"));
}

#[test]
fn pattern_with_length_bounds_is_strict_error() {
    let schema = json!({"type": "string", "pattern": "^a+$", "minLength": 2});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
    // Lenient mode keeps the pattern and drops the length bound.
    assert!(json_schema_to_grammar_with_options(&schema, &lenient()).is_ok());
}

#[test]
fn pattern_combined_with_format_is_strict_error() {
    let schema = json!({"type": "string", "pattern": "^a$", "format": "uuid"});
    assert!(json_schema_to_grammar(&schema).is_err());
}

#[test]
fn unsupported_pattern_falls_back_when_lenient() {
    let schema = json!({"type": "string", "pattern": "^(?=a)b$"});
    assert!(json_schema_to_grammar(&schema).is_err());
    let g = json_schema_to_grammar_with_options(&schema, &lenient()).unwrap();
    assert!(g.rule_id("json_string").is_some());
}

// ---- format ----

#[test]
fn known_formats_become_named_rules() {
    let schema = json!({
        "type": "object",
        "properties": {
            "when": {"type": "string", "format": "date-time"},
            "id": {"type": "string", "format": "uuid"}
        },
        "required": ["when", "id"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.rule_id("format_date_time").is_some());
    assert!(g.rule_id("format_uuid").is_some());
}

#[test]
fn format_rules_are_cached_per_name() {
    let schema = json!({
        "type": "object",
        "properties": {
            "a": {"type": "string", "format": "ipv4"},
            "b": {"type": "string", "format": "ipv4"}
        },
        "required": ["a", "b"]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    let text = g.to_string();
    assert_eq!(text.matches("format_ipv4 ::=").count(), 1);
}

#[test]
fn unknown_format_errors_in_strict_mode() {
    let schema = json!({"type": "string", "format": "duration"});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
    let g = json_schema_to_grammar_with_options(&schema, &lenient()).unwrap();
    assert!(g.rule_id("json_string").is_some());
}

// ---- numeric bounds ----

#[test]
fn integer_bounds_produce_digit_grammar() {
    let schema = json!({"type": "integer", "minimum": 3, "maximum": 121});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
    // The unconstrained integer rule must not be the root's value.
    assert!(!g.to_string().contains("root ::= json_ws json_integer"));
}

#[test]
fn exclusive_integer_bounds_tighten_the_range() {
    let schema = json!({"type": "integer", "exclusiveMinimum": 0, "exclusiveMaximum": 10});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn empty_integer_range_is_an_error() {
    let schema = json!({"type": "integer", "minimum": 5, "maximum": 4});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
}

#[test]
fn number_bounds_produce_digit_grammar() {
    let schema = json!({"type": "number", "minimum": 0, "exclusiveMaximum": 100});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn fractional_number_bound_is_strict_error() {
    let schema = json!({"type": "number", "minimum": 0.5});
    assert!(json_schema_to_grammar(&schema).is_err());
    // Lenient mode drops the fractional bound entirely.
    let g = json_schema_to_grammar_with_options(&schema, &lenient()).unwrap();
    assert!(g.rule_id("json_number").is_some());
}

#[test]
fn draft4_boolean_exclusive_minimum_is_accepted() {
    // Draft-4 spells exclusivity as a boolean modifying the sibling
    // `minimum`; it must behave exactly like the draft-6 numeric form.
    let draft4 = json!({"type": "integer", "minimum": 1, "exclusiveMinimum": true});
    let draft6 = json!({"type": "integer", "exclusiveMinimum": 1});
    let a = json_schema_to_grammar(&draft4).unwrap();
    let b = json_schema_to_grammar(&draft6).unwrap();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn draft4_boolean_exclusive_maximum_is_accepted() {
    let draft4 = json!({"type": "integer", "minimum": 0, "maximum": 10, "exclusiveMaximum": true});
    let draft6 = json!({"type": "integer", "minimum": 0, "exclusiveMaximum": 10});
    let a = json_schema_to_grammar(&draft4).unwrap();
    let b = json_schema_to_grammar(&draft6).unwrap();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn draft4_boolean_false_is_a_no_op() {
    // `exclusiveMinimum: false` leaves the inclusive `minimum` as-is.
    let draft4 = json!({"type": "integer", "minimum": 1, "maximum": 9, "exclusiveMinimum": false});
    let plain = json!({"type": "integer", "minimum": 1, "maximum": 9});
    let a = json_schema_to_grammar(&draft4).unwrap();
    let b = json_schema_to_grammar(&plain).unwrap();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn draft4_boolean_exclusive_on_number_type() {
    let draft4 = json!({"type": "number", "minimum": 0, "maximum": 100, "exclusiveMaximum": true});
    let draft6 = json!({"type": "number", "minimum": 0, "exclusiveMaximum": 100});
    let a = json_schema_to_grammar(&draft4).unwrap();
    let b = json_schema_to_grammar(&draft6).unwrap();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn draft4_boolean_without_sibling_bound_is_rejected() {
    // A bare boolean `exclusiveMinimum` has nothing to make exclusive.
    let schema = json!({"type": "integer", "exclusiveMinimum": true});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
    // Lenient mode drops the dangling modifier.
    let g = json_schema_to_grammar_with_options(&schema, &lenient()).unwrap();
    assert!(g.rule_id("json_integer").is_some());
}

// ---- multipleOf ----

#[test]
fn multiple_of_builds_residue_dfa() {
    let schema = json!({"type": "integer", "multipleOf": 7});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
    let text = g.to_string();
    // One rule per residue class mod 7.
    for s in 0..7 {
        assert!(text.contains(&format!("_m{s} ::=")), "missing state {s}");
    }
}

#[test]
fn multiple_of_one_is_plain_integer() {
    let schema = json!({"type": "integer", "multipleOf": 1});
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(!g.to_string().contains("multiple_of"));
}

#[test]
fn multiple_of_with_bounds_is_strict_error() {
    let schema = json!({"type": "integer", "multipleOf": 3, "minimum": 0});
    assert!(json_schema_to_grammar(&schema).is_err());
    // Lenient: the bounds win, divisibility is dropped.
    assert!(json_schema_to_grammar_with_options(&schema, &lenient()).is_ok());
}

#[test]
fn invalid_multiple_of_values_error_in_strict_mode() {
    for bad in [json!(0), json!(-3), json!(2.5), json!(100_000)] {
        let schema = json!({"type": "integer", "multipleOf": bad.clone()});
        assert!(
            json_schema_to_grammar(&schema).is_err(),
            "multipleOf {bad} should be rejected"
        );
        assert!(json_schema_to_grammar_with_options(&schema, &lenient()).is_ok());
    }
}

#[test]
fn multiple_of_on_number_is_strict_error() {
    let schema = json!({"type": "number", "multipleOf": 2});
    assert!(json_schema_to_grammar(&schema).is_err());
    assert!(json_schema_to_grammar_with_options(&schema, &lenient()).is_ok());
}

// ---- allOf ----

#[test]
fn all_of_merges_properties_and_required() {
    let schema = json!({
        "allOf": [
            {"type": "object", "properties": {"a": {"type": "string"}}, "required": ["a"]},
            {"type": "object", "properties": {"b": {"type": "integer"}}, "required": ["b"]}
        ]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
    let text = g.to_string();
    assert!(text.contains("\\\"a\\\"") || text.contains("\"a\""));
}

#[test]
fn all_of_intersects_numeric_bounds() {
    let schema = json!({
        "type": "integer",
        "allOf": [{"minimum": 0}, {"minimum": 5, "maximum": 20}, {"maximum": 30}]
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn all_of_empty_type_intersection_is_error() {
    let schema = json!({"allOf": [{"type": "string"}, {"type": "integer"}]});
    assert!(matches!(
        json_schema_to_grammar(&schema),
        Err(GrammarError::Schema { .. })
    ));
}

#[test]
fn all_of_conflicting_const_is_error() {
    let schema = json!({"allOf": [{"const": 1}, {"const": 2}]});
    assert!(json_schema_to_grammar(&schema).is_err());
}

#[test]
fn all_of_with_ref_member_is_inlined() {
    let schema = json!({
        "allOf": [
            {"$ref": "#/$defs/base"},
            {"type": "object", "properties": {"extra": {"type": "boolean"}}, "required": ["extra"]}
        ],
        "$defs": {
            "base": {"type": "object", "properties": {"id": {"type": "integer"}}, "required": ["id"]}
        }
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn all_of_enum_intersection() {
    let schema = json!({"allOf": [{"enum": ["a", "b", "c"]}, {"enum": ["b", "c", "d"]}]});
    let g = json_schema_to_grammar(&schema).unwrap();
    let text = g.to_string();
    assert!(text.contains("b") && text.contains("c"));
    let empty = json!({"allOf": [{"enum": ["a"]}, {"enum": ["b"]}]});
    assert!(json_schema_to_grammar(&empty).is_err());
}

// ---- $ref ----

#[test]
fn recursive_ref_becomes_recursive_rule() {
    let schema = json!({
        "$ref": "#/$defs/node",
        "$defs": {
            "node": {
                "type": "object",
                "properties": {
                    "value": {"type": "integer"},
                    "children": {"type": "array", "items": {"$ref": "#/$defs/node"}}
                },
                "required": ["value"]
            }
        }
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn degenerate_self_ref_is_rejected() {
    // `{"$ref": "#"}` expands to itself with no terminals: left recursion.
    let schema = json!({"$ref": "#"});
    assert!(json_schema_to_grammar(&schema).is_err());
}

#[test]
fn json_pointer_escapes_resolve() {
    let schema = json!({
        "$ref": "#/$defs/a~1b",
        "$defs": {"a/b": {"type": "boolean"}}
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn ref_with_sibling_keys_merges_like_all_of() {
    let schema = json!({
        "$ref": "#/$defs/base",
        "required": ["name"],
        "$defs": {
            "base": {"type": "object", "properties": {"name": {"type": "string"}}}
        }
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn shared_ref_targets_compile_once() {
    let schema = json!({
        "type": "object",
        "properties": {
            "a": {"$ref": "#/$defs/leaf"},
            "b": {"$ref": "#/$defs/leaf"}
        },
        "required": ["a", "b"],
        "$defs": {"leaf": {"type": "string", "format": "uuid"}}
    });
    let g = json_schema_to_grammar(&schema).unwrap();
    let text = g.to_string();
    let definitions = text
        .lines()
        .filter(|l| l.starts_with("ref_leaf") && l.contains("::="))
        .count();
    assert_eq!(
        definitions, 1,
        "shared $ref target must compile once:\n{text}"
    );
    assert!(
        text.matches("ref_leaf").count() >= 3,
        "both uses reference it"
    );
}

// ---- strict vs lenient keyword handling ----

#[test]
fn unknown_keyword_errors_in_strict_mode() {
    let schema = json!({"type": "string", "patternProperties": {}});
    let err = json_schema_to_grammar(&schema).unwrap_err();
    assert!(err.to_string().contains("patternProperties"), "{err}");
    assert!(json_schema_to_grammar_with_options(&schema, &lenient()).is_ok());
}

#[test]
fn annotation_keywords_are_always_ignored() {
    let schema = json!({
        "type": "string",
        "title": "Name",
        "description": "a name",
        "examples": ["x"],
        "default": "y",
        "$comment": "note"
    });
    assert!(json_schema_to_grammar(&schema).is_ok());
}

#[test]
fn every_supported_keyword_is_consumed_in_strict_mode() {
    // Regression guard: one minimal schema per supported keyword, each of
    // which must compile strictly. If a keyword is added to
    // SUPPORTED_KEYWORDS without converter support (or vice versa) this
    // test fails.
    let cases: Vec<(&str, Value)> = vec![
        (
            "$ref",
            json!({"$ref": "#/$defs/a", "$defs": {"a": {"type": "string"}}}),
        ),
        (
            "additionalProperties",
            json!({"type": "object", "additionalProperties": {"type": "integer"}}),
        ),
        (
            "allOf",
            json!({"allOf": [{"type": "object"}, {"required": []}]}),
        ),
        (
            "anyOf",
            json!({"anyOf": [{"type": "string"}, {"type": "null"}]}),
        ),
        ("const", json!({"const": 42})),
        ("enum", json!({"enum": [1, 2]})),
        (
            "exclusiveMaximum",
            json!({"type": "integer", "exclusiveMaximum": 10}),
        ),
        (
            "exclusiveMinimum",
            json!({"type": "integer", "exclusiveMinimum": 0}),
        ),
        ("format", json!({"type": "string", "format": "date"})),
        (
            "items",
            json!({"type": "array", "items": {"type": "boolean"}}),
        ),
        ("maxItems", json!({"type": "array", "maxItems": 3})),
        ("maxLength", json!({"type": "string", "maxLength": 5})),
        ("maximum", json!({"type": "integer", "maximum": 99})),
        ("minItems", json!({"type": "array", "minItems": 1})),
        ("minLength", json!({"type": "string", "minLength": 1})),
        ("minimum", json!({"type": "integer", "minimum": -4})),
        ("multipleOf", json!({"type": "integer", "multipleOf": 4})),
        (
            "oneOf",
            json!({"oneOf": [{"type": "integer"}, {"type": "boolean"}]}),
        ),
        ("pattern", json!({"type": "string", "pattern": "^[ab]+$"})),
        (
            "prefixItems",
            json!({"type": "array", "prefixItems": [{"type": "string"}]}),
        ),
        (
            "properties",
            json!({"type": "object", "properties": {"x": {"type": "null"}}}),
        ),
        (
            "required",
            json!({"type": "object", "properties": {"x": {"type": "null"}}, "required": ["x"]}),
        ),
        ("type", json!({"type": "boolean"})),
    ];
    let covered: Vec<&str> = cases.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        covered, SUPPORTED_KEYWORDS,
        "cases must cover SUPPORTED_KEYWORDS in order"
    );
    for (kw, schema) in cases {
        json_schema_to_grammar(&schema)
            .unwrap_or_else(|e| panic!("keyword `{kw}` failed strict conversion: {e}"));
    }
}

#[test]
fn keyword_allowlists_are_disjoint_and_sorted() {
    for list in [SUPPORTED_KEYWORDS, ANNOTATION_KEYWORDS] {
        let mut sorted = list.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, list, "allowlist must stay sorted");
    }
    for kw in SUPPORTED_KEYWORDS {
        assert!(!ANNOTATION_KEYWORDS.contains(kw), "`{kw}` in both lists");
    }
}

// ---- WhitespaceConfig ----

#[test]
fn separator_config_threads_through_object_grammar() {
    let schema = json!({
        "type": "object",
        "properties": {"a": {"type": "integer"}, "b": {"type": "integer"}},
        "required": ["a", "b"]
    });
    let opts = JsonSchemaOptions {
        whitespace: WhitespaceConfig::Separators {
            item_separator: ", ".to_string(),
            key_separator: ": ".to_string(),
        },
        ..Default::default()
    };
    let g = json_schema_to_grammar_with_options(&schema, &opts).unwrap();
    let text = g.to_string();
    assert!(g.rule_id("json_ws").is_none());
    assert!(text.contains("\", \"") || text.contains(", "), "{text}");
}

#[test]
fn invalid_separator_strings_are_rejected() {
    for (item, key) in [("; ", ": "), (", ", " "), (",,", ": "), (",x", ": ")] {
        let opts = JsonSchemaOptions {
            whitespace: WhitespaceConfig::Separators {
                item_separator: item.to_string(),
                key_separator: key.to_string(),
            },
            ..Default::default()
        };
        assert!(
            json_schema_to_grammar_with_options(&json!({"type": "object"}), &opts).is_err(),
            "separators ({item:?}, {key:?}) should be rejected"
        );
    }
}
