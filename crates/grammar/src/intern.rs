//! Hashcons interning of grammar expressions.
//!
//! Structured-generation workloads reuse sub-grammars heavily: two tool
//! catalogs often share 90% of their tool schemas, and a single JSON-Schema
//! grammar repeats the same string/number/whitespace fragments hundreds of
//! times. The [`ExprInterner`] deduplicates structurally identical
//! [`GrammarExpr`] trees behind small integer ids ([`ExprId`]) so shared
//! shapes are stored — and hashed — exactly once.
//!
//! Every interned node carries a *hashcons hash*: a bottom-up (Merkle-style)
//! hash in which children are represented by their own hashcons hashes. Two
//! sub-expressions get the same hash id iff they are structurally identical,
//! which makes the grammar-level [`grammar_fingerprint`] an O(distinct nodes)
//! computation and repeated cache-key hashing
//! ([`Grammar::structural_fingerprint`]) O(1).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::ast::{ByteClass, CharClass, Grammar, GrammarExpr};

/// Id of an interned expression node, valid within one [`ExprInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

impl ExprId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A grammar expression with children replaced by interned [`ExprId`]s —
/// the flat, shared representation stored in an [`ExprInterner`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InternedExpr {
    /// Matches the empty string.
    Empty,
    /// A literal byte string.
    Literal(Vec<u8>),
    /// A character class over Unicode scalar ranges.
    CharClass(CharClass),
    /// A raw byte class.
    ByteClass(ByteClass),
    /// Reference to a rule by index.
    RuleRef(u32),
    /// Concatenation of interned children.
    Sequence(Vec<ExprId>),
    /// Alternation of interned children.
    Choice(Vec<ExprId>),
    /// Bounded repetition of an interned child.
    Repeat {
        /// The repeated expression.
        expr: ExprId,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
    },
}

/// Hit/miss counters of an [`ExprInterner`].
///
/// A *hit* is an intern request for a node that was already present (the
/// shared artifact is reused); a *miss* allocates a new id. `hits /
/// (hits + misses)` is the structural-sharing rate of the interned grammars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Intern requests served by an existing node.
    pub hits: u64,
    /// Intern requests that allocated a new node.
    pub misses: u64,
}

impl InternStats {
    /// Fraction of intern requests served by an existing node.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A hashcons table for grammar expressions.
///
/// # Examples
///
/// ```
/// use xg_grammar::{ExprInterner, GrammarExpr};
///
/// let mut interner = ExprInterner::new();
/// let a = interner.intern_expr(&GrammarExpr::literal("ab"));
/// let b = interner.intern_expr(&GrammarExpr::literal("ab"));
/// assert_eq!(a, b); // structurally identical → same id
/// assert_eq!(interner.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct ExprInterner {
    nodes: Vec<InternedExpr>,
    /// Hashcons hash of each node, parallel to `nodes`.
    hashes: Vec<u64>,
    ids: HashMap<InternedExpr, ExprId>,
    stats: InternStats,
}

impl ExprInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one already-flattened node, returning its id.
    pub fn intern(&mut self, node: InternedExpr) -> ExprId {
        if let Some(&id) = self.ids.get(&node) {
            self.stats.hits += 1;
            return id;
        }
        self.stats.misses += 1;
        let id = ExprId(self.nodes.len() as u32);
        self.hashes.push(self.hashcons_hash(&node));
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        id
    }

    /// Recursively interns a grammar expression tree (children first),
    /// returning the id of its root node.
    pub fn intern_expr(&mut self, expr: &GrammarExpr) -> ExprId {
        let node = match expr {
            GrammarExpr::Empty => InternedExpr::Empty,
            GrammarExpr::Literal(bytes) => InternedExpr::Literal(bytes.clone()),
            GrammarExpr::CharClass(c) => InternedExpr::CharClass(c.clone()),
            GrammarExpr::ByteClass(b) => InternedExpr::ByteClass(b.clone()),
            GrammarExpr::RuleRef(r) => InternedExpr::RuleRef(r.0),
            GrammarExpr::Sequence(items) => {
                let ids = items.iter().map(|e| self.intern_expr(e)).collect();
                InternedExpr::Sequence(ids)
            }
            GrammarExpr::Choice(items) => {
                let ids = items.iter().map(|e| self.intern_expr(e)).collect();
                InternedExpr::Choice(ids)
            }
            GrammarExpr::Repeat { expr, min, max } => InternedExpr::Repeat {
                expr: self.intern_expr(expr),
                min: *min,
                max: *max,
            },
        };
        self.intern(node)
    }

    /// Interns every rule body of a grammar, returning the per-rule root ids.
    pub fn intern_grammar(&mut self, grammar: &Grammar) -> Vec<ExprId> {
        grammar
            .rules()
            .iter()
            .map(|rule| self.intern_expr(&rule.body))
            .collect()
    }

    /// The interned node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: ExprId) -> &InternedExpr {
        &self.nodes[id.index()]
    }

    /// The hashcons hash of an interned node: a bottom-up structural hash in
    /// which children contribute their own hashcons hashes. Equal across
    /// interners for structurally identical sub-expressions.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    pub fn hash_of(&self, id: ExprId) -> u64 {
        self.hashes[id.index()]
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> InternStats {
        self.stats
    }

    /// Computes the hashcons hash of a node from its children's stored
    /// hashes. Children are identified by content hash, not table id, so the
    /// result is independent of interning order.
    fn hashcons_hash(&self, node: &InternedExpr) -> u64 {
        let mut h = DefaultHasher::new();
        match node {
            InternedExpr::Empty => 0u8.hash(&mut h),
            InternedExpr::Literal(bytes) => {
                1u8.hash(&mut h);
                bytes.hash(&mut h);
            }
            InternedExpr::CharClass(c) => {
                2u8.hash(&mut h);
                c.hash(&mut h);
            }
            InternedExpr::ByteClass(b) => {
                3u8.hash(&mut h);
                b.hash(&mut h);
            }
            InternedExpr::RuleRef(r) => {
                4u8.hash(&mut h);
                r.hash(&mut h);
            }
            InternedExpr::Sequence(items) => {
                5u8.hash(&mut h);
                items.len().hash(&mut h);
                for &id in items {
                    self.hashes[id.index()].hash(&mut h);
                }
            }
            InternedExpr::Choice(items) => {
                6u8.hash(&mut h);
                items.len().hash(&mut h);
                for &id in items {
                    self.hashes[id.index()].hash(&mut h);
                }
            }
            InternedExpr::Repeat { expr, min, max } => {
                7u8.hash(&mut h);
                self.hashes[expr.index()].hash(&mut h);
                min.hash(&mut h);
                max.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// Computes the structural fingerprint of a grammar by interning every rule
/// body and combining the hashcons hashes with the rule names and root id.
///
/// Prefer [`Grammar::structural_fingerprint`], which caches the result on the
/// grammar.
pub fn grammar_fingerprint(grammar: &Grammar) -> u64 {
    let mut interner = ExprInterner::new();
    let mut h = DefaultHasher::new();
    grammar.rules().len().hash(&mut h);
    grammar.root().index().hash(&mut h);
    for rule in grammar.rules() {
        rule.name.hash(&mut h);
        let id = interner.intern_expr(&rule.body);
        interner.hash_of(id).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_ebnf;

    #[test]
    fn identical_subtrees_share_one_id() {
        let mut interner = ExprInterner::new();
        let expr = GrammarExpr::seq(vec![GrammarExpr::literal("ab"), GrammarExpr::literal("ab")]);
        interner.intern_expr(&expr);
        // "ab" interned once (hit on the second occurrence) + the sequence.
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.stats().hits, 1);
        assert_eq!(interner.stats().misses, 2);
    }

    #[test]
    fn structurally_shared_rules_hit_the_interner() {
        let g = parse_ebnf(
            r#"
            root ::= a b
            a ::= "x" [0-9]+
            b ::= "x" [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let mut interner = ExprInterner::new();
        let roots = interner.intern_grammar(&g);
        // Rules `a` and `b` are structurally identical: same interned id and
        // same hashcons hash.
        let ia = roots[g.rule_id("a").unwrap().index()];
        let ib = roots[g.rule_id("b").unwrap().index()];
        assert_eq!(ia, ib);
        assert_eq!(interner.hash_of(ia), interner.hash_of(ib));
        assert!(interner.stats().hits > 0);
    }

    #[test]
    fn hashcons_hash_is_interner_independent() {
        let expr = GrammarExpr::choice(vec![
            GrammarExpr::literal("true"),
            GrammarExpr::literal("false"),
        ]);
        let mut a = ExprInterner::new();
        // Warm `b` with unrelated nodes first so table ids differ.
        let mut b = ExprInterner::new();
        b.intern_expr(&GrammarExpr::literal("unrelated"));
        let ia = a.intern_expr(&expr);
        let ib = b.intern_expr(&expr);
        assert_ne!(ia, ib); // different table ids...
        assert_eq!(a.hash_of(ia), b.hash_of(ib)); // ...same structural hash
    }

    #[test]
    fn fingerprint_matches_for_independently_built_grammars() {
        let text = r#"
            root ::= "[" item ("," item)* "]"
            item ::= [0-9]+
        "#;
        let a = parse_ebnf(text, "root").unwrap();
        let b = parse_ebnf(text, "root").unwrap();
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
        // Cached: second call returns the same value.
        assert_eq!(a.structural_fingerprint(), a.structural_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_different_grammars() {
        let a = parse_ebnf(r#"root ::= "a""#, "root").unwrap();
        let b = parse_ebnf(r#"root ::= "b""#, "root").unwrap();
        assert_ne!(a.structural_fingerprint(), b.structural_fingerprint());
        // Renaming a rule is a structural change (names participate in
        // Display round-trips and cache keys).
        let c = parse_ebnf(r#"other ::= "a""#, "other").unwrap();
        assert_ne!(a.structural_fingerprint(), c.structural_fingerprint());
    }

    #[test]
    fn clone_preserves_equality_and_cached_fingerprint() {
        let a = parse_ebnf(r#"root ::= [a-z]+"#, "root").unwrap();
        let fp = a.structural_fingerprint();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.structural_fingerprint(), fp);
        // Equality ignores the fingerprint cache: a fresh parse that has not
        // computed its fingerprint still compares equal.
        let fresh = parse_ebnf(r#"root ::= [a-z]+"#, "root").unwrap();
        assert_eq!(a, fresh);
    }
}
