//! Error types for grammar construction, parsing and conversion.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while parsing an EBNF grammar text, building a grammar
/// programmatically, or converting a JSON Schema into a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// The EBNF text could not be tokenized or parsed.
    ///
    /// Contains the 1-based line and column of the offending character and a
    /// human-readable message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A rule body references a rule name that is never defined.
    UndefinedRule {
        /// Name of the missing rule.
        name: String,
        /// Name of the rule whose body contains the dangling reference.
        referenced_from: String,
    },
    /// The same rule name is defined more than once.
    DuplicateRule {
        /// Name of the duplicated rule.
        name: String,
    },
    /// The grammar has no root rule (it is empty, or the requested root name
    /// does not exist).
    MissingRoot {
        /// The root rule name that was looked up.
        name: String,
    },
    /// The grammar contains (possibly indirect) left recursion, which the
    /// pushdown-automaton executor cannot run without diverging.
    LeftRecursion {
        /// A rule participating in the left-recursive cycle.
        rule: String,
        /// The cycle of rule names, starting and ending at `rule`.
        cycle: Vec<String>,
    },
    /// A character class is empty (matches no character), e.g. `[]` or an
    /// inverted class covering all of Unicode.
    EmptyCharClass {
        /// Name of the rule containing the class.
        rule: String,
    },
    /// A repetition has `min > max`, e.g. `{5,2}`.
    InvalidRepetition {
        /// Lower bound.
        min: u32,
        /// Upper bound.
        max: u32,
    },
    /// A choice with zero alternatives was constructed directly (it matches
    /// nothing; `GrammarExpr::choice` collapses this case to `Empty`).
    EmptyChoice {
        /// Name of the rule containing the empty choice.
        rule: String,
    },
    /// The grammar failed the static-analysis lint pass in strict mode.
    ///
    /// Carries the error-severity [`Diagnostic`](crate::Diagnostic)s that
    /// caused the rejection.
    Lint {
        /// The error-severity diagnostics, in rule order.
        diagnostics: Vec<crate::Diagnostic>,
    },
    /// The JSON Schema document could not be converted.
    Schema {
        /// JSON-pointer-like path to the offending schema fragment.
        path: String,
        /// Description of the unsupported or malformed construct.
        message: String,
    },
    /// A structural-tag description is malformed (empty tag list, empty begin
    /// string, triggers that are prefixes of each other, or a tag whose begin
    /// string no trigger covers).
    StructuralTag {
        /// Description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            GrammarError::UndefinedRule {
                name,
                referenced_from,
            } => write!(
                f,
                "rule `{referenced_from}` references undefined rule `{name}`"
            ),
            GrammarError::DuplicateRule { name } => {
                write!(f, "rule `{name}` is defined more than once")
            }
            GrammarError::MissingRoot { name } => {
                write!(f, "grammar has no root rule named `{name}`")
            }
            GrammarError::LeftRecursion { rule, cycle } => write!(
                f,
                "rule `{rule}` is left-recursive (cycle: {})",
                cycle.join(" -> ")
            ),
            GrammarError::EmptyCharClass { rule } => {
                write!(
                    f,
                    "rule `{rule}` contains a character class that matches nothing"
                )
            }
            GrammarError::InvalidRepetition { min, max } => {
                write!(f, "repetition lower bound {min} exceeds upper bound {max}")
            }
            GrammarError::EmptyChoice { rule } => {
                write!(f, "rule `{rule}` contains a choice with zero alternatives")
            }
            GrammarError::Lint { diagnostics } => {
                let msgs: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
                write!(
                    f,
                    "grammar failed lint with {} error(s): {}",
                    diagnostics.len(),
                    msgs.join("; ")
                )
            }
            GrammarError::Schema { path, message } => {
                write!(f, "unsupported JSON Schema at `{path}`: {message}")
            }
            GrammarError::StructuralTag { message } => {
                write!(f, "invalid structural tag: {message}")
            }
        }
    }
}

impl StdError for GrammarError {}

/// Convenient result alias used across the grammar crate.
pub type Result<T> = std::result::Result<T, GrammarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = GrammarError::UndefinedRule {
            name: "value".into(),
            referenced_from: "root".into(),
        };
        let s = err.to_string();
        assert!(s.contains("value"));
        assert!(s.contains("root"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GrammarError>();
    }

    #[test]
    fn parse_error_reports_position() {
        let err = GrammarError::Parse {
            line: 3,
            column: 14,
            message: "unexpected token".into(),
        };
        assert!(err.to_string().contains("3:14"));
    }
}
