//! Digit-wise grammars for bounded JSON numbers.
//!
//! `minimum` / `maximum` / `exclusiveMinimum` / `exclusiveMaximum` cannot be
//! expressed by intersecting with the generic `json_integer` rule — the bound
//! has to be *compiled into the digits*, llguidance-style: a grammar for the
//! integers in `[15, 230]` enumerates, digit position by digit position, which
//! leading digits keep the value inside the range. The constructions here are
//! exact for integers; for `type: "number"` the bounds must be integer-valued
//! and the generated grammar covers every decimal string (optional fraction,
//! no exponent) whose value lies in the range.
//!
//! All expressions produced here are rule-free (literals, digit classes,
//! sequences, choices, repeats only), so they inline cheaply and display
//! deterministically — which is what makes two schemas differing only in a
//! bound hash to different [`grammar cache keys`](https://example.invalid)
//! (the cache hashes the displayed grammar).

use crate::ast::{CharClass, CharRange, GrammarExpr};
use crate::error::{GrammarError, Result};

fn digit_class(lo: u8, hi: u8) -> GrammarExpr {
    GrammarExpr::CharClass(CharClass::new(vec![CharRange::new(lo as char, hi as char)]))
}

/// Exactly `n` arbitrary digits.
fn any_digits(n: usize) -> GrammarExpr {
    match n {
        0 => GrammarExpr::Empty,
        1 => digit_class(b'0', b'9'),
        n => GrammarExpr::Repeat {
            expr: Box::new(digit_class(b'0', b'9')),
            min: n as u32,
            max: Some(n as u32),
        },
    }
}

fn lit(bytes: &[u8]) -> GrammarExpr {
    GrammarExpr::Literal(bytes.to_vec())
}

fn digits_of(n: u64) -> Vec<u8> {
    n.to_string().into_bytes()
}

/// Digit strings of the same length as `s` that are numerically `>= s`.
/// (First-digit alternatives never introduce a leading zero because `s`
/// itself has none.)
fn ge_digits(s: &[u8]) -> GrammarExpr {
    let Some((&d, rest)) = s.split_first() else {
        return GrammarExpr::Empty;
    };
    let mut alts = vec![GrammarExpr::seq(vec![lit(&[d]), ge_digits(rest)])];
    if d < b'9' {
        alts.push(GrammarExpr::seq(vec![
            digit_class(d + 1, b'9'),
            any_digits(rest.len()),
        ]));
    }
    GrammarExpr::choice(alts)
}

/// Digit strings of the same length as `s` that are numerically `<= s`.
fn le_digits(s: &[u8]) -> GrammarExpr {
    let Some((&d, rest)) = s.split_first() else {
        return GrammarExpr::Empty;
    };
    let mut alts = Vec::new();
    if d > b'0' {
        alts.push(GrammarExpr::seq(vec![
            digit_class(b'0', d - 1),
            any_digits(rest.len()),
        ]));
    }
    alts.push(GrammarExpr::seq(vec![lit(&[d]), le_digits(rest)]));
    GrammarExpr::choice(alts)
}

/// Digit strings of length `len(a)` with `a <= value <= b` (`a`, `b` equal
/// length, `a <= b`).
fn same_len_range(a: &[u8], b: &[u8]) -> GrammarExpr {
    if a == b {
        return lit(a);
    }
    let (a0, b0) = (a[0], b[0]);
    if a0 == b0 {
        return GrammarExpr::seq(vec![lit(&[a0]), same_len_range(&a[1..], &b[1..])]);
    }
    let tail = a.len() - 1;
    let mut alts = vec![GrammarExpr::seq(vec![lit(&[a0]), ge_digits(&a[1..])])];
    if b0 - a0 >= 2 {
        alts.push(GrammarExpr::seq(vec![
            digit_class(a0 + 1, b0 - 1),
            any_digits(tail),
        ]));
    }
    alts.push(GrammarExpr::seq(vec![lit(&[b0]), le_digits(&b[1..])]));
    GrammarExpr::choice(alts)
}

/// Canonical decimal strings (no leading zeros) for `lo..=hi`.
pub(crate) fn uint_range(lo: u64, hi: u64) -> GrammarExpr {
    debug_assert!(lo <= hi);
    let lo_d = digits_of(lo);
    let hi_d = digits_of(hi);
    let mut alts = Vec::new();
    for len in lo_d.len()..=hi_d.len() {
        let a: Vec<u8> = if len == lo_d.len() {
            lo_d.clone()
        } else {
            // Smallest `len`-digit number: 1 followed by zeros.
            let mut v = vec![b'1'];
            v.resize(len, b'0');
            v
        };
        let b: Vec<u8> = if len == hi_d.len() {
            hi_d.clone()
        } else {
            vec![b'9'; len]
        };
        alts.push(same_len_range(&a, &b));
    }
    GrammarExpr::choice(alts)
}

/// Canonical decimal strings for every unsigned integer `>= lo`.
pub(crate) fn uint_ge(lo: u64) -> GrammarExpr {
    let lo_d = digits_of(lo);
    GrammarExpr::choice(vec![
        ge_digits(&lo_d),
        // Strictly more digits than `lo`: can only be larger.
        GrammarExpr::seq(vec![
            digit_class(b'1', b'9'),
            GrammarExpr::Repeat {
                expr: Box::new(digit_class(b'0', b'9')),
                min: lo_d.len() as u32,
                max: None,
            },
        ]),
    ])
}

fn schema_err(path: &str, message: impl Into<String>) -> GrammarError {
    GrammarError::Schema {
        path: path.to_string(),
        message: message.into(),
    }
}

/// Grammar for the canonical decimal integers in `[lo, hi]` (either bound may
/// be absent; exclusive bounds are normalized to inclusive by the caller).
/// `-0` and leading zeros are never generated.
pub(crate) fn integer_range_expr(
    lo: Option<i64>,
    hi: Option<i64>,
    path: &str,
) -> Result<GrammarExpr> {
    if let (Some(l), Some(h)) = (lo, hi) {
        if l > h {
            return Err(schema_err(path, format!("empty integer range [{l}, {h}]")));
        }
    }
    let mut alts = Vec::new();
    // Negative side: magnitudes from `max(1, |hi|)` (when hi < 0) up to |lo|.
    if lo.is_none_or(|l| l < 0) {
        let mag_lo = match hi {
            Some(h) if h < 0 => h.unsigned_abs(),
            _ => 1,
        };
        let neg = match lo {
            None => Some(uint_ge(mag_lo)),
            Some(l) => {
                let mag_hi = l.unsigned_abs();
                (mag_lo <= mag_hi).then(|| uint_range(mag_lo, mag_hi))
            }
        };
        if let Some(expr) = neg {
            alts.push(GrammarExpr::seq(vec![lit(b"-"), expr]));
        }
    }
    // Non-negative side.
    if hi.is_none_or(|h| h >= 0) {
        let a = lo.map_or(0, |l| l.max(0)) as u64;
        let expr = match hi {
            None => uint_ge(a),
            Some(h) => uint_range(a, h as u64),
        };
        alts.push(expr);
    }
    if alts.is_empty() {
        return Err(schema_err(path, "empty integer range"));
    }
    Ok(GrammarExpr::choice(alts))
}

/// `.` followed by one or more digits.
fn any_fraction() -> GrammarExpr {
    GrammarExpr::seq(vec![lit(b"."), GrammarExpr::plus(digit_class(b'0', b'9'))])
}

/// `.` followed by zeros only (value unchanged).
fn zero_fraction() -> GrammarExpr {
    GrammarExpr::seq(vec![lit(b"."), GrammarExpr::plus(digit_class(b'0', b'0'))])
}

/// `.` followed by a fraction with at least one nonzero digit.
fn nonzero_fraction() -> GrammarExpr {
    GrammarExpr::seq(vec![
        lit(b"."),
        GrammarExpr::star(digit_class(b'0', b'0')),
        digit_class(b'1', b'9'),
        GrammarExpr::star(digit_class(b'0', b'9')),
    ])
}

/// Grammar for decimal numbers (optional fraction, no exponent) whose value
/// lies between the integer-valued bounds. Exclusive bounds are exact: the
/// boundary value itself is carved out digit-wise, fractions on either side
/// stay admissible.
pub(crate) fn number_range_expr(
    lo: Option<i64>,
    hi: Option<i64>,
    lo_exclusive: bool,
    hi_exclusive: bool,
    path: &str,
) -> Result<GrammarExpr> {
    if let (Some(l), Some(h)) = (lo, hi) {
        if l > h || (l == h && (lo_exclusive || hi_exclusive)) {
            return Err(schema_err(path, format!("empty number range [{l}, {h}]")));
        }
    }
    let opt_frac = GrammarExpr::optional(any_fraction());
    let mut alts = Vec::new();

    // Non-negative integer parts. A string with integer part `p >= 0` has a
    // value in `[p, p+1)`.
    if hi.is_none_or(|h| h > 0 || (h == 0 && !hi_exclusive)) {
        let a = lo.map_or(0, |l| l.max(0)) as u64;
        // Integer parts strictly below `hi` admit any fraction; the part
        // equal to the lower bound needs a nonzero fraction when exclusive.
        let mut free_lo = a;
        if lo_exclusive && lo.is_some_and(|l| l >= 0) {
            alts.push(GrammarExpr::seq(vec![
                lit(&digits_of(a)),
                nonzero_fraction(),
            ]));
            free_lo = a + 1;
        }
        match hi {
            None => alts.push(GrammarExpr::seq(vec![uint_ge(free_lo), opt_frac.clone()])),
            Some(h) => {
                let h = h as u64;
                if h > 0 && free_lo < h {
                    alts.push(GrammarExpr::seq(vec![
                        uint_range(free_lo, h - 1),
                        opt_frac.clone(),
                    ]));
                }
                // The boundary part itself: exactly `hi` (only with an
                // all-zero fraction), unless the bound is exclusive.
                if !hi_exclusive && h >= a {
                    alts.push(GrammarExpr::seq(vec![
                        lit(&digits_of(h)),
                        GrammarExpr::optional(zero_fraction()),
                    ]));
                }
            }
        }
    }

    // Negative integer parts. A string `-m.f` has a value in `(-(m+1), -m]`.
    if lo.is_none_or(|l| l < 0) {
        let mag_lo = match hi {
            Some(h) if h < 0 => h.unsigned_abs(),
            _ => 0,
        };
        let mut free_mag_lo = mag_lo;
        if hi_exclusive && hi.is_some_and(|h| h <= 0) {
            // `-H.f` with `f > 0` is strictly below `-H` (for `H = 0` this
            // also rules out `-0` / `-0.0`, which spell the excluded bound).
            alts.push(GrammarExpr::seq(vec![
                lit(b"-"),
                lit(&digits_of(mag_lo)),
                nonzero_fraction(),
            ]));
            free_mag_lo = mag_lo + 1;
        }
        match lo {
            None => alts.push(GrammarExpr::seq(vec![
                lit(b"-"),
                uint_ge(free_mag_lo),
                opt_frac.clone(),
            ])),
            Some(l) => {
                let mag_hi = l.unsigned_abs();
                if mag_hi > 0 && free_mag_lo < mag_hi {
                    alts.push(GrammarExpr::seq(vec![
                        lit(b"-"),
                        uint_range(free_mag_lo, mag_hi - 1),
                        opt_frac.clone(),
                    ]));
                }
                if !lo_exclusive && l < 0 && mag_hi >= mag_lo {
                    alts.push(GrammarExpr::seq(vec![
                        lit(b"-"),
                        lit(&digits_of(mag_hi)),
                        GrammarExpr::optional(zero_fraction()),
                    ]));
                }
            }
        }
    }

    if alts.is_empty() {
        return Err(schema_err(path, "empty number range"));
    }
    Ok(GrammarExpr::choice(alts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny backtracking evaluator for the rule-free expressions this module
    /// produces: returns every end position reachable by matching `e` at
    /// `pos`.
    fn ends(e: &GrammarExpr, s: &str, pos: usize) -> Vec<usize> {
        match e {
            GrammarExpr::Empty => vec![pos],
            GrammarExpr::Literal(b) => {
                if s.as_bytes()[pos..].starts_with(b) {
                    vec![pos + b.len()]
                } else {
                    vec![]
                }
            }
            GrammarExpr::CharClass(cc) => match s[pos..].chars().next() {
                Some(c) if cc.contains(c) => vec![pos + c.len_utf8()],
                _ => vec![],
            },
            GrammarExpr::Sequence(items) => {
                let mut positions = vec![pos];
                for it in items {
                    let mut next: Vec<usize> =
                        positions.iter().flat_map(|&p| ends(it, s, p)).collect();
                    next.sort_unstable();
                    next.dedup();
                    positions = next;
                    if positions.is_empty() {
                        break;
                    }
                }
                positions
            }
            GrammarExpr::Choice(items) => {
                let mut out: Vec<usize> = items.iter().flat_map(|it| ends(it, s, pos)).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            GrammarExpr::Repeat { expr, min, max } => {
                let mut out = Vec::new();
                let mut frontier = vec![pos];
                if *min == 0 {
                    out.push(pos);
                }
                let cap = max.map_or(s.len() + 1, |m| m as usize);
                for count in 1..=cap {
                    let mut next: Vec<usize> =
                        frontier.iter().flat_map(|&p| ends(expr, s, p)).collect();
                    next.sort_unstable();
                    next.dedup();
                    if next.is_empty() {
                        break;
                    }
                    if count >= *min as usize {
                        out.extend(&next);
                    }
                    frontier = next;
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            other => panic!("bounded-number exprs are rule-free, got {other:?}"),
        }
    }

    fn accepts(e: &GrammarExpr, s: &str) -> bool {
        ends(e, s, 0).contains(&s.len())
    }

    #[test]
    fn uint_range_sweep() {
        for (lo, hi) in [(0u64, 9), (5, 5), (15, 230), (99, 100), (1000, 1023)] {
            let e = uint_range(lo, hi);
            for v in lo.saturating_sub(30)..=hi + 30 {
                assert_eq!(
                    accepts(&e, &v.to_string()),
                    lo <= v && v <= hi,
                    "range [{lo},{hi}], value {v}"
                );
            }
            assert!(!accepts(&e, &format!("0{lo}")), "no leading zeros");
        }
    }

    #[test]
    fn uint_ge_sweep() {
        for lo in [0u64, 1, 7, 10, 42, 100, 999] {
            let e = uint_ge(lo);
            for v in lo.saturating_sub(20)..lo + 50 {
                assert_eq!(accepts(&e, &v.to_string()), v >= lo, "ge {lo}, value {v}");
            }
            assert!(accepts(&e, "123456789"), "large values stay accepted");
            assert!(!accepts(&e, "007"), "no leading zeros");
        }
    }

    #[test]
    fn signed_integer_range_sweep() {
        for (lo, hi) in [
            (Some(-37i64), Some(1205i64)),
            (Some(0), Some(100)),
            (Some(-250), Some(-3)),
            (Some(-5), Some(5)),
            (None, Some(17)),
            (Some(-12), None),
        ] {
            let e = integer_range_expr(lo, hi, "#").unwrap();
            for v in -400i64..1500 {
                let inside = lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h);
                assert_eq!(
                    accepts(&e, &v.to_string()),
                    inside,
                    "range [{lo:?},{hi:?}], value {v}"
                );
            }
            assert!(!accepts(&e, "-0"), "-0 is never generated");
            assert!(!accepts(&e, "05"), "no leading zeros");
        }
    }

    #[test]
    fn empty_integer_range_errors() {
        assert!(integer_range_expr(Some(3), Some(2), "#").is_err());
    }

    #[test]
    fn number_range_inclusive() {
        let e = number_range_expr(Some(0), Some(10), false, false, "#").unwrap();
        for (s, ok) in [
            ("0", true),
            ("0.0", true),
            ("0.5", true),
            ("9.99", true),
            ("10", true),
            ("10.0", true),
            ("10.00", true),
            ("10.5", false),
            ("10.01", false),
            ("-0.1", false),
            ("-1", false),
            ("11", false),
            ("5.25", true),
        ] {
            assert_eq!(accepts(&e, s), ok, "value {s}");
        }
    }

    #[test]
    fn number_range_negative() {
        let e = number_range_expr(Some(-5), Some(-2), false, false, "#").unwrap();
        for (s, ok) in [
            ("-2", true),
            ("-2.0", true),
            ("-2.5", true),
            ("-4.99", true),
            ("-5", true),
            ("-5.0", true),
            ("-5.1", false),
            ("-1.9", false),
            ("-6", false),
            ("0", false),
            ("2", false),
        ] {
            assert_eq!(accepts(&e, s), ok, "value {s}");
        }
    }

    #[test]
    fn number_range_exclusive_bounds_are_exact() {
        let e = number_range_expr(Some(0), Some(5), true, true, "#").unwrap();
        for (s, ok) in [
            ("0", false),
            ("0.0", false),
            ("0.001", true),
            ("0.1", true),
            ("4.999", true),
            ("5", false),
            ("5.0", false),
            ("4", true),
            ("2.5", true),
        ] {
            assert_eq!(accepts(&e, s), ok, "value {s}");
        }
        // An exclusive upper bound of exactly zero also excludes the signed
        // spellings of zero (`-0`, `-0.0`).
        let e = number_range_expr(Some(-3), Some(0), false, true, "#").unwrap();
        for (s, ok) in [
            ("0", false),
            ("-0", false),
            ("-0.0", false),
            ("-0.5", true),
            ("-3", true),
            ("-3.0", true),
            ("-3.5", false),
        ] {
            assert_eq!(accepts(&e, s), ok, "value {s}");
        }
    }

    #[test]
    fn open_ended_number_ranges() {
        let ge = number_range_expr(Some(3), None, false, false, "#").unwrap();
        assert!(accepts(&ge, "3"));
        assert!(accepts(&ge, "3.0"));
        assert!(accepts(&ge, "1000.25"));
        assert!(!accepts(&ge, "2.99"));
        assert!(!accepts(&ge, "-3"));

        let le = number_range_expr(None, Some(-1), false, false, "#").unwrap();
        assert!(accepts(&le, "-1"));
        assert!(accepts(&le, "-1.5"));
        assert!(accepts(&le, "-999.9"));
        assert!(!accepts(&le, "0"));
        assert!(!accepts(&le, "-0.5"));
    }
}
