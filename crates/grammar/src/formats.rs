//! Grammars for JSON Schema `format` values.
//!
//! Each supported format is defined as an anchored regex over the string
//! content and compiled through the same machinery as the `pattern` keyword
//! ([`crate::regex_pattern_to_expr`]), mirroring llguidance's lookup table of
//! format regexes. Unknown formats are **not** listed here; the converter
//! decides (strict vs lenient) what to do with them.

use crate::ast::GrammarExpr;
use crate::error::Result;
use crate::pattern::regex_pattern_to_expr;

/// The `format` values the converter supports, in the order they appear in
/// the README keyword matrix.
pub const SUPPORTED_FORMATS: &[&str] = &[
    "date-time",
    "date",
    "time",
    "uuid",
    "email",
    "ipv4",
    "ipv6",
    "hostname",
];

const DATE: &str = "[0-9]{4}-(0[1-9]|1[0-2])-(0[1-9]|[12][0-9]|3[01])";
const TIME: &str =
    "([01][0-9]|2[0-3]):[0-5][0-9]:[0-5][0-9](\\.[0-9]+)?([Zz]|[+-]([01][0-9]|2[0-3]):[0-5][0-9])";
const UUID: &str = "[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}";
const EMAIL: &str = "[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\\.[a-zA-Z]{2,}";
const HOSTNAME: &str =
    "[a-zA-Z0-9]([a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?(\\.[a-zA-Z0-9]([a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?)*";
const IPV4_OCTET: &str = "(25[0-5]|2[0-4][0-9]|[01]?[0-9][0-9]?)";
const IPV6: &str = "(([0-9a-fA-F]{1,4}:){7}[0-9a-fA-F]{1,4}\
|([0-9a-fA-F]{1,4}:){1,7}:\
|([0-9a-fA-F]{1,4}:){1,6}:[0-9a-fA-F]{1,4}\
|([0-9a-fA-F]{1,4}:){1,5}(:[0-9a-fA-F]{1,4}){1,2}\
|([0-9a-fA-F]{1,4}:){1,4}(:[0-9a-fA-F]{1,4}){1,3}\
|([0-9a-fA-F]{1,4}:){1,3}(:[0-9a-fA-F]{1,4}){1,4}\
|([0-9a-fA-F]{1,4}:){1,2}(:[0-9a-fA-F]{1,4}){1,5}\
|[0-9a-fA-F]{1,4}:(:[0-9a-fA-F]{1,4}){1,6}\
|:((:[0-9a-fA-F]{1,4}){1,7}|:))";

/// Returns the anchored content regex for a supported format name, or `None`
/// for unknown formats.
pub(crate) fn format_regex(name: &str) -> Option<String> {
    match name {
        "date" => Some(DATE.to_string()),
        "time" => Some(TIME.to_string()),
        "date-time" => Some(format!("{DATE}[Tt]{TIME}")),
        "uuid" => Some(UUID.to_string()),
        "email" => Some(EMAIL.to_string()),
        "ipv4" => Some(format!("{IPV4_OCTET}(\\.{IPV4_OCTET}){{3}}")),
        "ipv6" => Some(IPV6.to_string()),
        "hostname" => Some(HOSTNAME.to_string()),
        _ => None,
    }
}

/// Compiles the content grammar for a supported format name.
pub(crate) fn format_expr(name: &str) -> Option<Result<GrammarExpr>> {
    format_regex(name).map(|rx| regex_pattern_to_expr(&rx, &format!("format `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_supported_format_compiles() {
        for name in SUPPORTED_FORMATS {
            let expr = format_expr(name)
                .unwrap_or_else(|| panic!("format `{name}` missing"))
                .unwrap_or_else(|e| panic!("format `{name}` failed to compile: {e}"));
            assert!(!matches!(expr, GrammarExpr::Empty));
        }
    }

    #[test]
    fn unknown_formats_are_none() {
        assert!(format_expr("duration").is_none());
        assert!(format_expr("uri").is_none());
    }
}
