//! Criterion bench for Table 3: the cumulative ablation of node merging, the
//! adaptive token mask cache, rule inlining and context expansion, measured
//! as per-token mask-generation latency on the CFG (unconstrained JSON)
//! workload.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_bench::{ablation_config, bench_vocabulary, Workload};
use xg_core::TokenBitmask;
use xg_engine::{LlmBehavior, SimulatedLlm};

fn bench_ablation(c: &mut Criterion) {
    let vocab = bench_vocabulary(16_000);
    let (grammar, refs) = Workload::CfgJson.grammar_and_references(2);
    let llm = SimulatedLlm::new(
        Arc::clone(&vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );

    let mut group = c.benchmark_group("table3_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for step in 0..5 {
        let (name, config) = ablation_config(step);
        let backend = XGrammarBackend::with_config(Arc::clone(&vocab), config);
        let compiled = backend.compile(&grammar).expect("always supported");
        group.bench_with_input(BenchmarkId::new("cfg_json", name), &refs, |b, refs| {
            b.iter(|| {
                let mut session = compiled.new_session();
                let mut state = llm.start_request(&refs[0], 0);
                let mut mask = TokenBitmask::new_all_rejected(vocab.len());
                for _ in 0..10 {
                    session.fill_mask(&mut mask);
                    let Some(token) = state.propose_constrained(&mask) else {
                        break;
                    };
                    if Some(token) == vocab.eos() || !session.accept_token(token) {
                        break;
                    }
                    state.advance(token);
                }
                mask.count_allowed()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
