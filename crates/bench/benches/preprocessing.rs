//! Criterion bench for the preprocessing phase (grammar compilation +
//! adaptive token mask cache construction), the quantity the paper overlaps
//! with prefill (§3.5) and the main cost Syncode-style approaches pay
//! offline.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xg_bench::bench_vocabulary;
use xg_core::{CompilerConfig, GrammarCompiler};

fn bench_preprocessing(c: &mut Criterion) {
    let vocab = bench_vocabulary(16_000);
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    let grammars = [
        ("json", xg_grammar::builtin::json_grammar()),
        ("xml", xg_grammar::builtin::xml_grammar()),
        ("python_dsl", xg_grammar::builtin::python_dsl_grammar()),
    ];
    for (name, grammar) in &grammars {
        group.bench_with_input(
            BenchmarkId::new("compile_with_mask_cache", name),
            grammar,
            |b, grammar| {
                b.iter(|| {
                    // A fresh compiler each iteration so the grammar cache
                    // does not short-circuit the work being measured.
                    let compiler =
                        GrammarCompiler::with_config(Arc::clone(&vocab), CompilerConfig::default());
                    compiler.compile_grammar(grammar).stats().memory_bytes
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
