//! Criterion bench for Figure 9: per-token mask-generation latency of
//! XGrammar and the baselines on the four workloads.
//!
//! Run with `cargo bench -p xg-bench --bench fig9_mask_gen`. Mask generation
//! is measured at production vocabulary sizes — 32k (GPT-2/Mistral class)
//! and 128k (Llama-3.1 class) — with per-backend tokens/sec reported via the
//! group throughput. The 256k frontier point is covered by the
//! `mask_throughput` experiment in `run_experiments`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xg_bench::{bench_vocabulary, BackendKind, Workload};
use xg_core::TokenBitmask;
use xg_engine::{LlmBehavior, SimulatedLlm};

/// Tokens decoded per iteration of the per-token mask benchmarks (each token
/// costs one mask fill + one acceptance), so `thrpt` reads as tokens/sec.
const TOKENS_PER_ITER: usize = 20;

fn bench_mask_generation(c: &mut Criterion) {
    for vocab_size in [32_000, 128_000] {
        let vocab = bench_vocabulary(vocab_size);
        let mut group = c.benchmark_group(format!("fig9_mask_gen_{}k", vocab_size / 1000));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_secs(1));
        group.throughput(Throughput::Elements(TOKENS_PER_ITER as u64));

        for workload in Workload::all() {
            let (grammar, refs) = workload.grammar_and_references(2);
            for kind in [
                BackendKind::XGrammar,
                BackendKind::Outlines,
                BackendKind::LlamaCppGrammar,
                BackendKind::FormatEnforcer,
            ] {
                // The per-token full-vocabulary scanners take seconds per
                // *fill* at 128k; one point at 32k already shows the gap, so
                // the large size keeps only the precomputing backends.
                if vocab_size > 32_000
                    && matches!(
                        kind,
                        BackendKind::LlamaCppGrammar | BackendKind::FormatEnforcer
                    )
                {
                    continue;
                }
                let backend = kind.build(Arc::clone(&vocab));
                let Ok(compiled) = backend.compile(&grammar) else {
                    continue; // regex-only backends skip recursive CFGs
                };
                let llm = SimulatedLlm::new(
                    Arc::clone(&vocab),
                    LlmBehavior {
                        prose_probability: 0.0,
                        type_error_probability: 0.0,
                        seed: 0,
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(kind.name(), workload.name()),
                    &refs,
                    |b, refs| {
                        b.iter(|| {
                            // One full constrained generation of the first
                            // reference: mask + accept per token.
                            let mut session = compiled.new_session();
                            let mut state = llm.start_request(&refs[0], 0);
                            let mut mask = TokenBitmask::new_all_rejected(vocab.len());
                            for _ in 0..TOKENS_PER_ITER {
                                session.fill_mask(&mut mask);
                                let Some(token) = state.propose_constrained(&mask) else {
                                    break;
                                };
                                if Some(token) == vocab.eos() || !session.accept_token(token) {
                                    break;
                                }
                                state.advance(token);
                            }
                            mask.count_allowed()
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

/// Batched mask generation: fill one mask per lane of a serving batch,
/// serially on one thread vs spread over scoped worker threads (the parallel
/// serving path of `ServingEngine::run_batch`).
fn bench_batched_mask_generation(c: &mut Criterion) {
    const BATCH: usize = 16;
    let vocab = bench_vocabulary(32_000);
    let mut group = c.benchmark_group("fig9_batched_mask_gen");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    // One iteration fills one mask per lane.
    group.throughput(Throughput::Elements(BATCH as u64));

    for workload in [Workload::JsonSchema, Workload::CfgJson] {
        let (grammar, refs) = workload.grammar_and_references(4);
        let backend = BackendKind::XGrammar.build(Arc::clone(&vocab));
        let compiled = backend
            .compile(&grammar)
            .expect("xgrammar compiles all workloads");
        let llm = SimulatedLlm::new(
            Arc::clone(&vocab),
            LlmBehavior {
                prose_probability: 0.0,
                type_error_probability: 0.0,
                seed: 0,
            },
        );
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(BATCH);
        for (label, parallel) in [("serial", false), ("parallel", true)] {
            group.bench_with_input(
                BenchmarkId::new(label, workload.name()),
                &parallel,
                |b, &parallel| {
                    // Heterogeneous lanes, as in a real batch: lane i sits
                    // mid-generation, i-dependent tokens into reference i.
                    let mut masks: Vec<TokenBitmask> = (0..BATCH)
                        .map(|_| TokenBitmask::new_all_rejected(vocab.len()))
                        .collect();
                    let mut sessions: Vec<_> = (0..BATCH)
                        .map(|i| {
                            let mut session = compiled.new_session();
                            let mut state = llm.start_request(&refs[i % refs.len()], i as u64);
                            for _ in 0..(2 + i % 12) {
                                session.fill_mask(&mut masks[i]);
                                let Some(token) = state.propose_constrained(&masks[i]) else {
                                    break;
                                };
                                if Some(token) == vocab.eos() || !session.accept_token(token) {
                                    break;
                                }
                                state.advance(token);
                            }
                            session
                        })
                        .collect();
                    b.iter(|| {
                        if parallel {
                            let mut lanes: Vec<_> =
                                sessions.iter_mut().zip(masks.iter_mut()).collect();
                            let chunk = lanes.len().div_ceil(threads);
                            std::thread::scope(|scope| {
                                for chunk in lanes.chunks_mut(chunk) {
                                    scope.spawn(move || {
                                        for (session, mask) in chunk {
                                            session.fill_mask(mask);
                                        }
                                    });
                                }
                            });
                        } else {
                            for (session, mask) in sessions.iter_mut().zip(masks.iter_mut()) {
                                session.fill_mask(mask);
                            }
                        }
                        masks[0].count_allowed()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Trigger scanning over a 120-entry tool catalog: the naive multi-pattern
/// prefix scan (one comparison per pattern per byte) vs the Aho–Corasick
/// automaton (one table lookup per byte) the tag-dispatch matcher uses.
fn bench_trigger_scan(c: &mut Criterion) {
    use xg_automata::{AhoCorasick, NaiveMultiPattern};

    let (catalog, transcript) = xg_bench::trigger_scan_fixture(120, 1 << 16);
    let naive = NaiveMultiPattern::new(&catalog);
    let ac = AhoCorasick::new(&catalog);
    assert_eq!(naive.find_all(&transcript), ac.find_all(&transcript));

    let mut group = c.benchmark_group("trigger_scan_120");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("naive", |b| b.iter(|| naive.find_all(&transcript).len()));
    group.bench_function("aho_corasick", |b| {
        b.iter(|| ac.find_all(&transcript).len())
    });
    group.finish();
}

/// Tool-call transcript decoding with and without jump-forward inside the
/// tagged segments: forced bytes (begin-tag remainders, schema punctuation,
/// end tags) skip both the mask fill and the sampled token.
fn bench_tagged_jump_forward(c: &mut Criterion) {
    use xg_core::{GrammarCompiler, StructuralTagMatcher, TokenBitmask};

    let vocab = bench_vocabulary(16_000);
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let tasks = xg_datasets::tool_call_tasks(2, 0xBE7);
    let compiled: Vec<_> = tasks
        .iter()
        .map(|t| compiler.compile_tag_dispatch(&t.structural_tag()).unwrap())
        .collect();
    let llm = SimulatedLlm::new(
        Arc::clone(&vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );

    let mut group = c.benchmark_group("tagged_jump_forward");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for (label, jump) in [("without", false), ("with", true)] {
        group.bench_with_input(BenchmarkId::new(label, "tool_calls"), &jump, |b, &jump| {
            let mut mask = TokenBitmask::new_all_rejected(vocab.len());
            b.iter(|| {
                let mut sampled = 0u64;
                let mut jumped = 0u64;
                for (i, task) in tasks.iter().enumerate() {
                    let mut matcher = StructuralTagMatcher::new(Arc::clone(&compiled[i]));
                    let mut state = llm.start_request(&task.reference, i as u64);
                    for _ in 0..400 {
                        if jump {
                            let forced = matcher.find_jump_forward_string();
                            if !forced.is_empty() && matcher.accept_bytes(&forced).is_ok() {
                                state.advance_bytes(&forced);
                                jumped += forced.len() as u64;
                            }
                        }
                        matcher.fill_next_token_bitmask(&mut mask);
                        let Some(token) = state.propose_constrained(&mask) else {
                            break;
                        };
                        if Some(token) == vocab.eos() || matcher.accept_token(token).is_err() {
                            break;
                        }
                        state.advance(token);
                        sampled += 1;
                    }
                }
                (sampled, jumped)
            })
        });
    }
    group.finish();
}

/// Engine-level jump-forward: the full serving loop (`run_batch`) over a
/// schema-heavy batch with forced-token injection off vs on. The GPU profile
/// is scaled way down so the measured difference is dominated by the grammar
/// work the policies actually change: mask fills for sampled tokens vs
/// forced-text retokenization and injection.
fn bench_engine_jump_forward(c: &mut Criterion) {
    use std::sync::Arc;
    use xg_baselines::XGrammarBackend;
    use xg_engine::{
        EngineRequest, ExecutionMode, JumpForwardPolicy, LaneConstraint, ModelProfile,
        ServingEngine,
    };

    let vocab = bench_vocabulary(16_000);
    let backend: Arc<dyn xg_baselines::ConstrainedBackend> =
        Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    let requests: Vec<EngineRequest> = xg_datasets::json_mode_eval_like(4, 0x11F)
        .into_iter()
        .enumerate()
        .map(|(i, t)| EngineRequest {
            constraint: LaneConstraint::Grammar(
                xg_grammar::json_schema_to_grammar(&t.schema).expect("schema converts"),
            ),
            prompt_tokens: 16,
            reference: t.reference,
            max_tokens: 96,
            seed: i as u64,
        })
        .collect();
    let profile = ModelProfile::llama31_8b_h100().scaled(0.001);
    // Compile once outside the timing loop (the cache makes reruns cheap).
    ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial)
        .run_batch(&requests)
        .expect("warmup batch runs");

    let mut group = c.benchmark_group("engine_jump_forward");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    for (label, policy) in [
        ("off", JumpForwardPolicy::Off),
        ("matcher", JumpForwardPolicy::Matcher),
        ("engine", JumpForwardPolicy::Engine),
    ] {
        let engine =
            ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial)
                .with_mask_parallelism(1)
                .with_jump_forward(policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (results, metrics) = engine.run_batch(&requests).expect("batch runs");
                (results.len(), metrics.total_tokens)
            })
        });
    }
    group.finish();
}

/// Per-token mask generation on a keyword-heavy JSON Schema: string
/// `pattern` regexes, `format` rules (uuid/ipv4/email), a `multipleOf` DFA,
/// digit-wise integer bounds and a bounded `number` range all active in one
/// grammar — the converter features that go beyond plain typed objects.
fn bench_schema_keyword_mask_generation(c: &mut Criterion) {
    use xg_core::{GrammarCompiler, GrammarMatcher};

    let vocab = bench_vocabulary(32_000);
    let compiler = GrammarCompiler::new(Arc::clone(&vocab));
    let schema: serde_json::Value = serde_json::from_str(
        r#"{
            "type": "object",
            "properties": {
                "id": {"type": "string", "pattern": "^[A-Z]{2}-[0-9]{4}$"},
                "uuid": {"type": "string", "format": "uuid"},
                "ip": {"type": "string", "format": "ipv4"},
                "email": {"type": "string", "format": "email"},
                "count": {"type": "integer", "multipleOf": 12},
                "score": {"type": "integer", "minimum": -40, "maximum": 400},
                "ratio": {"type": "number", "minimum": 0, "maximum": 10}
            },
            "required": ["id", "uuid", "ip", "email", "count", "score", "ratio"]
        }"#,
    )
    .expect("bench schema is valid JSON");
    let compiled = compiler
        .compile_json_schema(&schema)
        .expect("bench schema compiles");
    let reference = br#"{"id": "AB-1234", "uuid": "123e4567-e89b-12d3-a456-426614174000", "ip": "192.168.0.1", "email": "user@example.com", "count": 144, "score": 37, "ratio": 2.5}"#;
    let llm = SimulatedLlm::new(
        Arc::clone(&vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );

    let mut group = c.benchmark_group("fig9_schema_keywords");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("pattern_format_heavy", |b| {
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        b.iter(|| {
            // One full constrained generation of the reference instance:
            // mask + accept per token.
            let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
            let mut state = llm.start_request(reference, 0);
            let mut filled = 0u32;
            for _ in 0..120 {
                matcher.fill_next_token_bitmask(&mut mask);
                filled += 1;
                let Some(token) = state.propose_constrained(&mask) else {
                    break;
                };
                if Some(token) == vocab.eos() || matcher.accept_token(token).is_err() {
                    break;
                }
                state.advance(token);
            }
            filled
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mask_generation,
    bench_batched_mask_generation,
    bench_trigger_scan,
    bench_tagged_jump_forward,
    bench_engine_jump_forward,
    bench_schema_keyword_mask_generation
);
criterion_main!(benches);
