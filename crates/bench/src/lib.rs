//! Shared harness code for the benchmark suite: workload definitions,
//! backend construction and measurement helpers used both by the Criterion
//! benches and by the `run_experiments` binary that regenerates every table
//! and figure of the paper.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use xg_baselines::{
    BackendSession, ConstrainedBackend, FormatEnforcerBackend, FsmIndexBackend, NaivePdaBackend,
    XGrammarBackend,
};
use xg_core::{CompilerConfig, TokenBitmask};
use xg_engine::{LlmBehavior, SimulatedLlm};
use xg_grammar::Grammar;
use xg_tokenizer::{synthetic_vocabulary, SyntheticVocabConfig, Vocabulary};

/// The four mask-generation workloads of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// JSON constrained by a function-calling JSON Schema.
    JsonSchema,
    /// Unconstrained JSON (ECMA-404), a recursive CFG.
    CfgJson,
    /// The XML-subset CFG.
    CfgXml,
    /// The Python-DSL CFG.
    CfgPythonDsl,
}

impl Workload {
    /// All workloads in the paper's order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::JsonSchema,
            Workload::CfgJson,
            Workload::CfgXml,
            Workload::CfgPythonDsl,
        ]
    }

    /// Display name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::JsonSchema => "JSON Schema",
            Workload::CfgJson => "CFG (Unconstrained JSON)",
            Workload::CfgXml => "CFG (XML)",
            Workload::CfgPythonDsl => "CFG (Python DSL)",
        }
    }

    /// The grammar and a set of reference outputs for this workload.
    pub fn grammar_and_references(&self, count: usize) -> (Grammar, Vec<Vec<u8>>) {
        match self {
            Workload::JsonSchema => {
                let tasks = xg_datasets::json_mode_eval_like(count, 0xF19);
                // One representative schema; references come from tasks that
                // share it (the first task's family).
                let grammar = xg_grammar::json_schema_to_grammar(&tasks[0].schema)
                    .expect("dataset schemas convert");
                let refs = tasks
                    .iter()
                    .step_by(5)
                    .map(|t| t.reference.clone())
                    .collect();
                (grammar, refs)
            }
            Workload::CfgJson => {
                let docs = xg_datasets::json_documents(count, 0xF19);
                (
                    xg_grammar::builtin::json_grammar(),
                    docs.into_iter().map(|d| d.reference).collect(),
                )
            }
            Workload::CfgXml => {
                let docs = xg_datasets::xml_tasks(count, 0xF19);
                (
                    xg_grammar::builtin::xml_grammar(),
                    docs.into_iter().map(|d| d.reference).collect(),
                )
            }
            Workload::CfgPythonDsl => {
                let docs = xg_datasets::python_dsl_tasks(count, 0xF19);
                (
                    xg_grammar::builtin::python_dsl_grammar(),
                    docs.into_iter().map(|d| d.reference).collect(),
                )
            }
        }
    }
}

/// Backend families compared in Figure 9 / Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// This paper's engine.
    XGrammar,
    /// Outlines-style FSM index.
    Outlines,
    /// llama.cpp-style naive PDA scan.
    LlamaCppGrammar,
    /// lm-format-enforcer-style char-trie walker (regex only).
    FormatEnforcer,
}

impl BackendKind {
    /// All comparators in the paper's order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::XGrammar,
            BackendKind::Outlines,
            BackendKind::LlamaCppGrammar,
            BackendKind::FormatEnforcer,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::XGrammar => "XGrammar",
            BackendKind::Outlines => "Outlines",
            BackendKind::LlamaCppGrammar => "llama.cpp-Grammar",
            BackendKind::FormatEnforcer => "lm-format-enforcer",
        }
    }

    /// Instantiates the backend for a vocabulary.
    pub fn build(&self, vocab: Arc<Vocabulary>) -> Arc<dyn ConstrainedBackend> {
        match self {
            BackendKind::XGrammar => Arc::new(XGrammarBackend::new(vocab)),
            BackendKind::Outlines => Arc::new(FsmIndexBackend::with_limits(vocab, 6, 400_000)),
            BackendKind::LlamaCppGrammar => Arc::new(NaivePdaBackend::new(vocab)),
            BackendKind::FormatEnforcer => Arc::new(FormatEnforcerBackend::new(vocab)),
        }
    }
}

/// The trigger-scan fixture shared by the `fig9_mask_gen` bench and the
/// `structural_tag` experiment: a catalog of `num_triggers` distinct
/// `<fn_NNN>` trigger strings and a transcript of at least `target_len`
/// bytes interleaving prose, near-miss trigger prefixes, and one real
/// trigger occurrence per filler block.
pub fn trigger_scan_fixture(num_triggers: usize, target_len: usize) -> (Vec<Vec<u8>>, Vec<u8>) {
    let catalog: Vec<Vec<u8>> = (0..num_triggers)
        .map(|i| format!("<fn_{i:03}>").into_bytes())
        .collect();
    let filler: &[u8] = b"calling tools <fn_ <f <fn_1 plain prose about nothing and then ";
    let mut transcript: Vec<u8> = Vec::with_capacity(target_len + filler.len() + 8);
    let mut next_trigger = 0usize;
    while transcript.len() < target_len {
        transcript.extend_from_slice(filler);
        transcript.extend_from_slice(&catalog[next_trigger % catalog.len()]);
        next_trigger += 1;
    }
    (catalog, transcript)
}

/// The shared benchmark vocabulary ("Llama-3.1-like", scaled by `size`).
pub fn bench_vocabulary(size: usize) -> Arc<Vocabulary> {
    Arc::new(synthetic_vocabulary(&SyntheticVocabConfig {
        size,
        seed: 0x11a3a31,
    }))
}

/// Result of measuring per-token mask generation for one backend on one
/// workload.
#[derive(Debug, Clone, Copy)]
pub struct MaskGenMeasurement {
    /// Mean time to produce one token mask.
    pub per_token: Duration,
    /// Number of masks measured.
    pub masks: usize,
    /// Preprocessing (grammar compilation) time.
    pub preprocessing: Duration,
}

/// Measures per-token mask-generation latency (the Figure 9 metric) for a
/// backend on a workload: reference outputs are tokenized greedily and the
/// backend produces a mask before every token.
///
/// Returns `None` when the backend cannot handle the workload's grammar
/// (e.g. lm-format-enforcer on a recursive CFG), mirroring the missing bars
/// in the paper's figure.
pub fn measure_mask_generation(
    backend: &Arc<dyn ConstrainedBackend>,
    workload: Workload,
    references: usize,
    max_tokens_per_reference: usize,
) -> Option<MaskGenMeasurement> {
    let vocab = Arc::clone(backend.vocabulary());
    let (grammar, refs) = workload.grammar_and_references(references);
    let preprocessing_start = Instant::now();
    let compiled = backend.compile(&grammar).ok()?;
    let preprocessing = preprocessing_start.elapsed();

    let llm = SimulatedLlm::new(
        Arc::clone(&vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut total = Duration::ZERO;
    let mut masks = 0usize;
    for (i, reference) in refs.iter().enumerate() {
        let mut session = compiled.new_session();
        let mut state = llm.start_request(reference, i as u64);
        for _ in 0..max_tokens_per_reference {
            let start = Instant::now();
            session.fill_mask(&mut mask);
            total += start.elapsed();
            masks += 1;
            let Some(token) = state.propose_constrained(&mask) else {
                break;
            };
            if Some(token) == vocab.eos() {
                break;
            }
            if !session.accept_token(token) {
                break;
            }
            state.advance(token);
        }
    }
    if masks == 0 {
        return None;
    }
    Some(MaskGenMeasurement {
        per_token: total / masks as u32,
        masks,
        preprocessing,
    })
}

/// Builds an `XGrammarBackend` for one ablation configuration (Table 3).
pub fn ablation_backend(
    vocab: Arc<Vocabulary>,
    step: usize,
) -> (String, Arc<dyn ConstrainedBackend>) {
    let (name, config) = ablation_config(step);
    (name, Arc::new(XGrammarBackend::with_config(vocab, config)))
}

/// The cumulative ablation configurations of Table 3.
pub fn ablation_config(step: usize) -> (String, CompilerConfig) {
    match step {
        0 => ("PDA Baseline".into(), CompilerConfig::baseline()),
        1 => (
            "+ Node merging".into(),
            CompilerConfig {
                enable_node_merging: true,
                ..CompilerConfig::baseline()
            },
        ),
        2 => (
            "+ Adaptive token mask cache".into(),
            CompilerConfig {
                enable_node_merging: true,
                enable_mask_cache: true,
                ..CompilerConfig::baseline()
            },
        ),
        3 => (
            "+ Rule inlining".into(),
            CompilerConfig {
                enable_node_merging: true,
                enable_mask_cache: true,
                enable_rule_inlining: true,
                ..CompilerConfig::baseline()
            },
        ),
        _ => ("+ Context expansion".into(), CompilerConfig::default()),
    }
}

/// Per-session helper: drives one session over a reference output and returns
/// the number of accepted tokens (used by correctness smoke tests in the
/// harness).
pub fn drive_reference(
    backend: &Arc<dyn ConstrainedBackend>,
    session: &mut dyn BackendSession,
    reference: &[u8],
    max_tokens: usize,
) -> usize {
    let vocab = Arc::clone(backend.vocabulary());
    let llm = SimulatedLlm::new(
        Arc::clone(&vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );
    let mut state = llm.start_request(reference, 0);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut accepted = 0;
    for _ in 0..max_tokens {
        session.fill_mask(&mut mask);
        let Some(token) = state.propose_constrained(&mask) else {
            break;
        };
        if Some(token) == vocab.eos() {
            break;
        }
        if !session.accept_token(token) {
            break;
        }
        state.advance(token);
        accepted += 1;
    }
    accepted
}
